//! Scanner-backend equivalence properties ([`hyperion_core::scan_kernel`]).
//!
//! The scalar and SIMD scan backends must be observationally identical: the
//! SIMD backend changes the container *layout* (key-lane blocks) and the
//! search *kernel* (vectorised lower bounds), never an answer.  These tests
//! drive both backends through interleaved `put`/`put_many`/`delete` under
//! tiny split/eject thresholds — so lanes are stripped, re-emitted, split
//! and ejected constantly — and assert every read surface (point gets,
//! `get_many`, ordered iteration in both directions, seeks, predecessor
//! queries) agrees with a `BTreeMap` oracle and between backends, with
//! `validate_structure` checking the lane-sidecar invariant after every
//! mutation phase.

use hyperion::workloads::Mt19937_64;
use hyperion::{HyperionConfig, HyperionMap, ScanBackend};
use std::collections::BTreeMap;

/// Tiny container thresholds: every few hundred bytes of writes ejects or
/// splits a container, exercising lane maintenance on every structural path.
fn tiny_config(backend: ScanBackend) -> HyperionConfig {
    HyperionConfig {
        eject_threshold: 512,
        split_base: 1024,
        split_increment: 512,
        split_min_part: 64,
        scan_backend: backend,
        ..HyperionConfig::default()
    }
}

/// Keys over a narrow alphabet so prefixes collide heavily, containers fill
/// fast and delta-encoded runs are long (the lane's worst case to mirror).
fn clustered_key(rng: &mut Mt19937_64, max_len: usize) -> Vec<u8> {
    let len = 1 + (rng.next_u64() as usize) % max_len;
    (0..len).map(|_| (rng.next_u64() % 23) as u8).collect()
}

#[test]
fn backends_agree_with_oracle_under_interleaved_mutation() {
    for case in 0..24u64 {
        let mut rng = Mt19937_64::new(0x5ca7 + case);
        let mut scalar = HyperionMap::with_config(tiny_config(ScanBackend::Scalar));
        let mut simd = HyperionMap::with_config(tiny_config(ScanBackend::Simd));
        let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for phase in 0..6 {
            match rng.next_u64() % 3 {
                // A batched bulk load through the write engine's splice path.
                0 => {
                    let n = 50 + (rng.next_u64() as usize) % 400;
                    let batch: Vec<(Vec<u8>, u64)> = (0..n)
                        .map(|_| (clustered_key(&mut rng, 10), rng.next_u64()))
                        .collect();
                    scalar.put_many(batch.iter().map(|(k, v)| (k.as_slice(), *v)));
                    simd.put_many(batch.iter().map(|(k, v)| (k.as_slice(), *v)));
                    oracle.extend(batch);
                }
                // Point puts through the single-pass write descent.
                1 => {
                    for _ in 0..100 {
                        let (k, v) = (clustered_key(&mut rng, 10), rng.next_u64());
                        scalar.put(&k, v);
                        simd.put(&k, v);
                        oracle.insert(k, v);
                    }
                }
                // Deletes, probing present and absent keys alike.
                _ => {
                    for _ in 0..80 {
                        let k = clustered_key(&mut rng, 10);
                        let expected = oracle.remove(&k).is_some();
                        assert_eq!(scalar.delete(&k), expected, "case {case}: scalar delete");
                        assert_eq!(simd.delete(&k), expected, "case {case}: simd delete");
                    }
                }
            }
            scalar
                .validate_structure()
                .unwrap_or_else(|e| panic!("case {case} phase {phase}: scalar: {e}"));
            simd.validate_structure()
                .unwrap_or_else(|e| panic!("case {case} phase {phase}: simd: {e}"));
        }
        assert_eq!(scalar.len(), oracle.len(), "case {case}: scalar len");
        assert_eq!(simd.len(), oracle.len(), "case {case}: simd len");

        // Point gets: every stored key plus perturbed misses.
        for (k, v) in &oracle {
            assert_eq!(scalar.get(k), Some(*v), "case {case}: scalar get {k:x?}");
            assert_eq!(simd.get(k), Some(*v), "case {case}: simd get {k:x?}");
        }
        let mut probes: Vec<Vec<u8>> = oracle.keys().cloned().collect();
        for _ in 0..200 {
            probes.push(clustered_key(&mut rng, 12));
        }
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let scalar_many = scalar.get_many(&refs);
        let simd_many = simd.get_many(&refs);
        for ((probe, a), b) in probes.iter().zip(&scalar_many).zip(&simd_many) {
            let expected = oracle.get(probe).copied();
            assert_eq!(*a, expected, "case {case}: scalar get_many {probe:x?}");
            assert_eq!(*b, expected, "case {case}: simd get_many {probe:x?}");
        }

        // Ordered iteration, both directions.
        let expected: Vec<(Vec<u8>, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(
            scalar.iter().collect::<Vec<_>>(),
            expected,
            "case {case}: scalar forward iteration"
        );
        assert_eq!(
            simd.iter().collect::<Vec<_>>(),
            expected,
            "case {case}: simd forward iteration"
        );
        let mut reversed = expected.clone();
        reversed.reverse();
        assert_eq!(
            scalar.iter().rev().collect::<Vec<_>>(),
            reversed,
            "case {case}: scalar reverse iteration"
        );
        assert_eq!(
            simd.iter().rev().collect::<Vec<_>>(),
            reversed,
            "case {case}: simd reverse iteration"
        );

        // Seeks and predecessor queries at random split points.
        for _ in 0..50 {
            let probe = clustered_key(&mut rng, 10);
            let want_seek = oracle
                .range(probe.clone()..)
                .next()
                .map(|(k, v)| (k.clone(), *v));
            let mut sc = scalar.cursor();
            sc.seek(&probe);
            let mut vc = simd.cursor();
            vc.seek(&probe);
            assert_eq!(sc.next(), want_seek, "case {case}: scalar seek {probe:x?}");
            assert_eq!(vc.next(), want_seek, "case {case}: simd seek {probe:x?}");
            let want_pred = oracle
                .range(..probe.clone())
                .next_back()
                .map(|(k, v)| (k.clone(), *v));
            assert_eq!(
                scalar.pred(&probe),
                want_pred,
                "case {case}: scalar pred {probe:x?}"
            );
            assert_eq!(
                simd.pred(&probe),
                want_pred,
                "case {case}: simd pred {probe:x?}"
            );
        }
    }
}

/// Wide-fanout containers (many T records, many S children) make the lane
/// the primary search structure; random u64 keys at volume force splits and
/// chain-slot lanes.  Gets, batched gets and seeks must agree with the
/// oracle on a 60 k-key map built with the SIMD backend.
#[test]
fn simd_backend_serves_wide_integer_maps() {
    let mut rng = Mt19937_64::new(0x51d3);
    let mut map = HyperionMap::with_config(HyperionConfig {
        scan_backend: ScanBackend::Simd,
        ..HyperionConfig::for_integers()
    });
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let batch: Vec<(Vec<u8>, u64)> = (0..60_000u64)
        .map(|i| (rng.next_u64().to_be_bytes().to_vec(), i))
        .collect();
    map.put_many(batch.iter().map(|(k, v)| (k.as_slice(), *v)));
    oracle.extend(batch);
    map.validate_structure()
        .expect("lane invariant after bulk load");
    // Interleave deletes and point puts, then re-validate.
    let doomed: Vec<Vec<u8>> = oracle.keys().step_by(7).cloned().collect();
    for k in &doomed {
        assert!(map.delete(k));
        oracle.remove(k);
    }
    for i in 0..5_000u64 {
        let k = rng.next_u64().to_be_bytes().to_vec();
        map.put(&k, i);
        oracle.insert(k, i);
    }
    map.validate_structure()
        .expect("lane invariant after churn");
    assert_eq!(map.len(), oracle.len());
    let probes: Vec<&[u8]> = oracle.keys().step_by(3).map(|k| k.as_slice()).collect();
    let got = map.get_many(&probes);
    for (probe, got) in probes.iter().zip(&got) {
        assert_eq!(*got, oracle.get(*probe).copied(), "get_many {probe:x?}");
    }
    for (k, v) in oracle.iter().step_by(11) {
        assert_eq!(map.get(k), Some(*v), "get {k:x?}");
    }
    // Seeks across the whole key space.
    for _ in 0..200 {
        let probe = rng.next_u64().to_be_bytes();
        let want = oracle
            .range(probe.to_vec()..)
            .next()
            .map(|(k, v)| (k.clone(), *v));
        let mut cur = map.cursor();
        cur.seek(&probe);
        assert_eq!(cur.next(), want, "seek {probe:x?}");
    }
}

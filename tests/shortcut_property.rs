//! Property tests for the hashed shortcut layer: interleaved
//! `put`/`put_many`/`delete` workloads under a deliberately small container
//! configuration that forces splits and ejections (the structural events
//! that invalidate shortcut entries), checked against a `BTreeMap` oracle
//! with the full container invariant check after every mutation.
//!
//! Like `property_based.rs`, these use a deterministic fuzz harness driven
//! by the workspace MT19937-64 (no crates.io access), so every failure
//! message carries the case seed and reproduces exactly.

use hyperion::workloads::{Mt19937_64, NgramCorpus, NgramCorpusConfig};
use hyperion::{HyperionConfig, HyperionMap};
use std::collections::BTreeMap;

/// Tiny container thresholds so even small workloads force embedded-child
/// ejections and vertical container splits, plus an active shortcut table.
fn stress_config() -> HyperionConfig {
    HyperionConfig {
        eject_threshold: 512,
        split_base: 1024,
        split_increment: 512,
        split_min_part: 64,
        shortcut_capacity: 1 << 10,
        ..HyperionConfig::default()
    }
}

/// Keys over a narrow alphabet so prefixes collide heavily and real
/// containers appear at the shortcut depths (2/4/6 transformed bytes).
fn clustered_key(rng: &mut Mt19937_64, max_len: usize) -> Vec<u8> {
    let len = (rng.next_u64() as usize) % max_len;
    (0..len)
        .map(|_| b'a' + (rng.next_u64() % 4) as u8)
        .collect()
}

/// Interleaved `put_many` batches, point puts and deletes under the stress
/// configuration: the structure invariant holds after *every* mutation, and
/// shortcut-assisted gets never diverge from the oracle — including the
/// second get of each key, which is served from the (possibly just
/// invalidated and repopulated) shortcut table.
#[test]
fn interleaved_mutations_with_forced_splits_match_oracle() {
    for case in 0..12u64 {
        let mut rng = Mt19937_64::new(0x5c07 + case);
        let mut map = HyperionMap::with_config(stress_config());
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for round in 0..6 {
            // One batched put per round keeps the bulk-load path (stream
            // builder, splice, shortcut publication) in the mix...
            let n = 50 + (rng.next_u64() as usize) % 300;
            let pairs: Vec<(Vec<u8>, u64)> = (0..n)
                .map(|_| (clustered_key(&mut rng, 14), rng.next_u64()))
                .collect();
            map.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
            for (k, v) in &pairs {
                reference.insert(k.clone(), *v);
            }
            map.validate_structure()
                .unwrap_or_else(|e| panic!("case {case} round {round}: put_many: {e}"));
            // ...then interleaved point puts and deletes, validating after
            // every mutation so a failing op is pinpointed exactly.
            for step in 0..40 {
                let key = clustered_key(&mut rng, 14);
                if rng.next_u64() % 3 == 0 {
                    assert_eq!(
                        map.delete(&key),
                        reference.remove(&key).is_some(),
                        "case {case} round {round} step {step}: delete {key:x?}"
                    );
                } else {
                    let value = rng.next_u64();
                    assert_eq!(
                        map.put(&key, value),
                        !reference.contains_key(&key),
                        "case {case} round {round} step {step}: put {key:x?}"
                    );
                    reference.insert(key.clone(), value);
                }
                map.validate_structure().unwrap_or_else(|e| {
                    panic!("case {case} round {round} step {step}: after {key:x?}: {e}")
                });
            }
            assert_eq!(map.len(), reference.len(), "case {case} round {round}: len");
            // Shortcut-assisted gets never diverge: every live key twice
            // (cold probe, then a probe that can be shortcut-served) plus
            // random probes mixing present, deleted and absent keys.
            for (k, v) in &reference {
                for pass in 0..2 {
                    assert_eq!(
                        map.get(k),
                        Some(*v),
                        "case {case} round {round} pass {pass}: get {k:x?}"
                    );
                }
            }
            for _ in 0..64 {
                let probe = clustered_key(&mut rng, 14);
                assert_eq!(
                    map.get(&probe),
                    reference.get(&probe).copied(),
                    "case {case} round {round}: probe {probe:x?}"
                );
            }
        }
        // The stress thresholds must actually exercise the shortcut path:
        // probes flowed through the table and deep containers were cached.
        let stats = map.shortcut_stats();
        assert!(
            stats.hits + stats.misses > 0,
            "case {case}: shortcut never probed"
        );
        assert!(stats.hits > 0, "case {case}: shortcut never hit");
    }
}

/// Shortcut-seeded cursor seeks (`seek` + the continuation re-seek that
/// covers the key space past the cached prefix, and `seek_for_pred` on the
/// backward side) agree with `BTreeMap` range semantics on maps whose
/// containers were split and ejected under the stress configuration.
#[test]
fn shortcut_seeded_seeks_match_oracle() {
    for case in 0..8u64 {
        let mut rng = Mt19937_64::new(0xceed + case);
        let mut map = HyperionMap::with_config(stress_config());
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let n = 400 + (rng.next_u64() as usize) % 1200;
        let pairs: Vec<(Vec<u8>, u64)> = (0..n)
            .map(|_| (clustered_key(&mut rng, 14), rng.next_u64()))
            .collect();
        map.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
        for (k, v) in pairs {
            reference.insert(k, v);
        }
        // Point churn so splits/ejections have invalidated some of the
        // entries published during the batch build.
        for _ in 0..150 {
            let key = clustered_key(&mut rng, 14);
            if rng.next_u64() % 4 == 0 {
                map.delete(&key);
                reference.remove(&key);
            } else {
                let value = rng.next_u64();
                map.put(&key, value);
                reference.insert(key, value);
            }
        }
        map.validate_structure()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));

        let mut cursor = map.cursor();
        for probe in 0..200 {
            let target = clustered_key(&mut rng, 14);
            // Forward: first key >= target, then a few successor steps so
            // the one-shot continuation re-seek past the cached prefix's
            // upper bound is exercised too.
            cursor.seek(&target);
            let mut expected = reference.range(target.clone()..);
            for step in 0..4 {
                assert_eq!(
                    cursor.next(),
                    expected.next().map(|(k, v)| (k.clone(), *v)),
                    "case {case} probe {probe} step {step}: seek {target:x?}"
                );
            }
            // Backward: last key <= target, then a few predecessor steps.
            cursor.seek_for_pred(&target);
            let mut expected = reference.range(..=target.clone()).rev();
            for step in 0..4 {
                assert_eq!(
                    cursor.prev(),
                    expected.next().map(|(k, v)| (k.clone(), *v)),
                    "case {case} probe {probe} step {step}: pred seek {target:x?}"
                );
            }
        }
    }
}

/// Regression guard for builder-side jump emission on real string
/// workloads: bulk-loading the shuffled n-gram corpus must produce a
/// structurally valid trie (no jump structures inside embedded bodies —
/// those go stale after byte-shifting edits) and every key must read back.
#[test]
fn bulk_loaded_ngram_corpus_is_structurally_valid() {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 20_000,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0xc0ffee);
    let mut map = HyperionMap::with_config(HyperionConfig::for_strings());
    map.put_many(
        workload
            .keys
            .iter()
            .map(|k| k.as_slice())
            .zip(workload.values.iter().copied()),
    );
    map.validate_structure().expect("ngram bulk load");
    let oracle: BTreeMap<&[u8], u64> = workload
        .keys
        .iter()
        .map(|k| k.as_slice())
        .zip(workload.values.iter().copied())
        .collect();
    assert_eq!(map.len(), oracle.len());
    for (k, v) in &oracle {
        assert_eq!(
            map.get(k),
            Some(*v),
            "ngram get {:?}",
            String::from_utf8_lossy(k)
        );
    }
}

//! Property-based tests on the core data structures and invariants.

use hyperion::core::keys::{postprocess_key, preprocess_key};
use hyperion::HyperionMap;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sequences of put/get/delete must behave exactly like BTreeMap.
    #[test]
    fn hyperion_matches_btreemap(ops in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 0..24), any::<u64>(), any::<bool>()),
        1..400,
    )) {
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (key, value, delete) in &ops {
            if *delete {
                prop_assert_eq!(map.delete(key), reference.remove(key).is_some());
            } else {
                let expected_new = !reference.contains_key(key);
                prop_assert_eq!(map.put(key, *value), expected_new);
                reference.insert(key.clone(), *value);
            }
        }
        prop_assert_eq!(map.len(), reference.len());
        for (k, v) in &reference {
            prop_assert_eq!(map.get(k), Some(*v));
        }
        let collected: Vec<(Vec<u8>, u64)> = map.to_vec();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    /// The key pre-processor must be injective, invertible and order preserving.
    #[test]
    fn preprocessing_is_order_preserving(mut values in proptest::collection::vec(any::<u64>(), 2..200)) {
        values.sort_unstable();
        values.dedup();
        let keys: Vec<Vec<u8>> = values.iter().map(|v| preprocess_key(&v.to_be_bytes())).collect();
        for pair in keys.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for (v, k) in values.iter().zip(&keys) {
            prop_assert_eq!(postprocess_key(k).unwrap(), v.to_be_bytes().to_vec());
        }
    }

    /// Range queries return exactly the keys >= the start key, in order.
    #[test]
    fn range_from_matches_btreemap(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 1..200),
        start in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let mut map = HyperionMap::new();
        let mut reference = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            map.put(k, i as u64);
            reference.insert(k.clone(), i as u64);
        }
        let mut got = Vec::new();
        map.range_from(&start, &mut |k, v| {
            got.push((k.to_vec(), v));
            true
        });
        let expected: Vec<(Vec<u8>, u64)> = reference
            .range(start.clone()..)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        prop_assert_eq!(got, expected);
    }
}

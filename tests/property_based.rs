//! Property-based tests on the core data structures and invariants.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these tests use a small deterministic fuzz harness driven by the
//! workspace's own MT19937-64: each property is checked over many randomly
//! generated cases, and every failure message carries the case seed so a
//! failure reproduces exactly.

use hyperion::workloads::Mt19937_64;
use hyperion::HyperionMap;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Generates a random byte key of length `0..max_len`.
fn random_key(rng: &mut Mt19937_64, max_len: usize) -> Vec<u8> {
    let len = (rng.next_u64() as usize) % max_len;
    (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
}

/// Random sequences of put/get/delete must behave exactly like BTreeMap.
#[test]
fn hyperion_matches_btreemap_under_random_ops() {
    for case in 0..64u64 {
        let mut rng = Mt19937_64::new(0xb0b0 + case);
        let ops = 1 + (rng.next_u64() as usize) % 400;
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for _ in 0..ops {
            let key = random_key(&mut rng, 24);
            let value = rng.next_u64();
            if rng.next_u64() % 4 == 0 {
                assert_eq!(
                    map.delete(&key),
                    reference.remove(&key).is_some(),
                    "case {case}: delete {key:x?}"
                );
            } else {
                let expected_new = !reference.contains_key(&key);
                assert_eq!(
                    map.put(&key, value),
                    expected_new,
                    "case {case}: put {key:x?}"
                );
                reference.insert(key, value);
            }
        }
        assert_eq!(map.len(), reference.len(), "case {case}: len");
        for (k, v) in &reference {
            assert_eq!(map.get(k), Some(*v), "case {case}: get {k:x?}");
        }
        let collected: Vec<(Vec<u8>, u64)> = map.iter().collect();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        assert_eq!(collected, expected, "case {case}: ordered iteration");
    }
}

/// `iter()`, `range()` and `prefix()` agree with `BTreeMap` on 10,000 random
/// byte keys (the acceptance bar for the lazy iterator API).
#[test]
fn iterators_match_btreemap_on_10k_random_keys() {
    let mut rng = Mt19937_64::new(0x17e8);
    let mut map = HyperionMap::new();
    let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    while reference.len() < 10_000 {
        let key = random_key(&mut rng, 16);
        let value = rng.next_u64();
        map.put(&key, value);
        reference.insert(key, value);
    }

    // Full iteration.
    let got: Vec<_> = map.iter().collect();
    let expected: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(got, expected);

    // 100 random half-open ranges.
    for case in 0..100 {
        let mut a = random_key(&mut rng, 16);
        let mut b = random_key(&mut rng, 16);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let got: Vec<_> = map.range(&a[..]..&b[..]).collect();
        let expected: Vec<_> = reference
            .range(a.clone()..b.clone())
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected, "case {case}: range {a:x?}..{b:x?}");
    }

    // Random prefixes of random lengths.
    for case in 0..100 {
        let p = random_key(&mut rng, 4);
        let got: Vec<_> = map.prefix(&p).map(|(k, _)| k).collect();
        let expected: Vec<_> = reference
            .keys()
            .filter(|k| k.starts_with(&p))
            .cloned()
            .collect();
        assert_eq!(got, expected, "case {case}: prefix {p:x?}");
    }
}

/// Empty ranges, inverted bounds, exclusive bounds and seeks past the last
/// key all behave like their `BTreeMap` counterparts.
#[test]
fn range_edge_cases_match_btreemap() {
    let mut rng = Mt19937_64::new(0xedfe);
    let mut map = HyperionMap::new();
    let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for _ in 0..2_000 {
        let key = random_key(&mut rng, 8);
        let value = rng.next_u64();
        map.put(&key, value);
        reference.insert(key, value);
    }
    let some_key = reference.keys().nth(1_000).unwrap().clone();

    // Empty range: identical bounds.
    assert_eq!(map.range(&some_key[..]..&some_key[..]).count(), 0);

    // Exclusive start bound skips exactly the bound key.
    let got: Vec<_> = map
        .range::<[u8], _>((Bound::Excluded(&some_key[..]), Bound::Unbounded))
        .map(|(k, _)| k)
        .collect();
    let expected: Vec<_> = reference
        .range::<Vec<u8>, _>((Bound::Excluded(&some_key), Bound::Unbounded))
        .map(|(k, _)| k.clone())
        .collect();
    assert_eq!(got, expected);

    // Inclusive end bound includes the bound key.
    assert_eq!(
        map.range(&some_key[..]..=&some_key[..]).count(),
        1,
        "inclusive singleton range"
    );

    // Seek past the largest possible key: exhausted cursor, empty iterators.
    let past_end = vec![0xff; 20];
    let mut cur = map.cursor();
    cur.seek(&past_end);
    assert_eq!(cur.next(), None);
    assert_eq!(map.range(&past_end[..]..).count(), 0);
    assert_eq!(
        reference.range(past_end.clone()..).count(),
        0,
        "reference agrees the tail is empty"
    );

    // An empty map yields empty iterators everywhere.
    let empty = HyperionMap::new();
    assert_eq!(empty.iter().count(), 0);
    assert_eq!(empty.prefix(b"x").count(), 0);
    assert_eq!(empty.range(&b"a"[..]..&b"z"[..]).count(), 0);
    assert_eq!(empty.cursor().next(), None);
}

/// The key pre-processor must be injective, invertible and order preserving.
#[test]
fn preprocessing_is_order_preserving() {
    use hyperion::core::keys::{postprocess_key, preprocess_key};
    for case in 0..32u64 {
        let mut rng = Mt19937_64::new(0x9e37 + case);
        let n = 2 + (rng.next_u64() as usize) % 200;
        let mut values: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        values.sort_unstable();
        values.dedup();
        let keys: Vec<Vec<u8>> = values
            .iter()
            .map(|v| preprocess_key(&v.to_be_bytes()))
            .collect();
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1], "case {case}: order violated");
        }
        for (v, k) in values.iter().zip(&keys) {
            assert_eq!(
                postprocess_key(k).unwrap(),
                v.to_be_bytes().to_vec(),
                "case {case}: roundtrip"
            );
        }
    }
}

/// Range queries return exactly the keys >= the start key, in order
/// (the callback adapter and the cursor agree by construction; this pins the
/// cursor's seek semantics against BTreeMap).
#[test]
fn range_from_matches_btreemap() {
    for case in 0..64u64 {
        let mut rng = Mt19937_64::new(0x5eed + case);
        let n = 1 + (rng.next_u64() as usize) % 200;
        let mut map = HyperionMap::new();
        let mut reference = BTreeMap::new();
        for i in 0..n {
            let mut key = random_key(&mut rng, 12);
            if key.is_empty() {
                key.push(0);
            }
            map.put(&key, i as u64);
            reference.insert(key, i as u64);
        }
        let start = random_key(&mut rng, 12);
        let mut got = Vec::new();
        map.range_from(&start, &mut |k, v| {
            got.push((k.to_vec(), v));
            true
        });
        let expected: Vec<(Vec<u8>, u64)> = reference
            .range(start.clone()..)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected, "case {case}: start {start:x?}");
    }
}

/// The single-pass write engine under interleaved point puts, deletes and
/// sorted batch application (`put_many`), in sorted, reverse and random key
/// orders, against a `BTreeMap` oracle — with the full container-invariant
/// check (header sizes, record ordering, jump-successor / jump-table /
/// container-jump-table consistency, value counts) after every structural
/// mutation.
#[test]
fn write_engine_invariants_under_interleaved_ops() {
    #[derive(Clone, Copy)]
    enum Order {
        Sorted,
        Reverse,
        Random,
    }
    for (case, order) in [Order::Sorted, Order::Reverse, Order::Random]
        .into_iter()
        .cycle()
        .take(24)
        .enumerate()
    {
        let case = case as u64;
        let mut rng = Mt19937_64::new(0xeb617 + case);
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for round in 0..12 {
            // One batch of puts...
            let n = 1 + (rng.next_u64() as usize) % 120;
            let mut pairs: Vec<(Vec<u8>, u64)> = (0..n)
                .map(|_| (random_key(&mut rng, 18), rng.next_u64()))
                .collect();
            match order {
                Order::Sorted => pairs.sort(),
                Order::Reverse => {
                    pairs.sort();
                    pairs.reverse();
                }
                Order::Random => {}
            }
            let expected_inserted = {
                let unique: std::collections::BTreeMap<&[u8], u64> =
                    pairs.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
                unique
                    .keys()
                    .filter(|k| !reference.contains_key(**k))
                    .count()
            };
            let inserted = map.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
            assert_eq!(
                inserted, expected_inserted,
                "case {case} round {round}: batch insert count"
            );
            for (k, v) in &pairs {
                reference.insert(k.clone(), *v);
            }
            map.validate_structure()
                .unwrap_or_else(|e| panic!("case {case} round {round} after batch: {e}"));

            // ... then interleaved point puts and deletes.
            for _ in 0..30 {
                let key = random_key(&mut rng, 18);
                if rng.next_u64() % 3 == 0 {
                    assert_eq!(
                        map.delete(&key),
                        reference.remove(&key).is_some(),
                        "case {case} round {round}: delete {key:x?}"
                    );
                } else {
                    let value = rng.next_u64();
                    assert_eq!(
                        map.put(&key, value),
                        !reference.contains_key(&key),
                        "case {case} round {round}: put {key:x?}"
                    );
                    reference.insert(key, value);
                }
            }
            map.validate_structure()
                .unwrap_or_else(|e| panic!("case {case} round {round} after points: {e}"));
            assert_eq!(map.len(), reference.len(), "case {case} round {round}: len");
        }
        let collected: Vec<(Vec<u8>, u64)> = map.iter().collect();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        assert_eq!(collected, expected, "case {case}: final iteration");
    }
}

/// Batch application must behave exactly like sequential puts — same final
/// state *and* same insert count — when keys collide within the batch
/// (last value wins) and with previously stored keys (update, not insert).
#[test]
fn put_many_matches_sequential_puts() {
    for case in 0..32u64 {
        let mut rng = Mt19937_64::new(0xba7c4 + case);
        let n = 1 + (rng.next_u64() as usize) % 300;
        let pairs: Vec<(Vec<u8>, u64)> = (0..n)
            .map(|_| (random_key(&mut rng, 10), rng.next_u64()))
            .collect();
        let pre: Vec<(Vec<u8>, u64)> = (0..n / 2)
            .map(|_| (random_key(&mut rng, 10), rng.next_u64()))
            .collect();

        let mut batched = HyperionMap::new();
        let mut sequential = HyperionMap::new();
        for (k, v) in &pre {
            batched.put(k, *v);
            sequential.put(k, *v);
        }
        let batch_inserted = batched.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
        let mut seq_inserted = 0usize;
        for (k, v) in &pairs {
            if sequential.put(k, *v) {
                seq_inserted += 1;
            }
        }
        // Sequential puts count a key inserted then re-put as one insert +
        // one update; the batch sees it once.  Compare against the number of
        // *distinct* new keys, which both agree on.
        let distinct_new = seq_inserted;
        assert_eq!(batch_inserted, distinct_new, "case {case}: insert count");
        assert_eq!(
            batched.to_vec(),
            sequential.to_vec(),
            "case {case}: final state"
        );
        batched
            .validate_structure()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// `WriteBatch` application through `HyperionDb` (which re-orders ops per
/// shard into sorted runs for the write engine) must match a `BTreeMap`
/// oracle applying the ops in batch order, including the per-op summary.
#[test]
fn db_write_batch_matches_oracle() {
    use hyperion::core::db::{FibonacciPartitioner, HyperionDb, WriteBatch};
    for case in 0..16u64 {
        let mut rng = Mt19937_64::new(0xdbba7 + case);
        let db = HyperionDb::builder()
            .shards(5)
            .partitioner(FibonacciPartitioner)
            .build();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for round in 0..6 {
            let mut batch = WriteBatch::new();
            let mut expected = hyperion::core::db::BatchSummary::default();
            let n = 1 + (rng.next_u64() as usize) % 150;
            let mut shadow = reference.clone();
            for _ in 0..n {
                let mut key = random_key(&mut rng, 10);
                if key.len() > 1 && rng.next_u64() % 4 == 0 {
                    key.truncate(3); // force duplicate keys within the batch
                }
                if rng.next_u64() % 4 == 0 {
                    batch.delete(&key);
                    if shadow.remove(&key).is_some() {
                        expected.deleted += 1;
                    } else {
                        expected.missing += 1;
                    }
                } else {
                    let value = rng.next_u64();
                    batch.put(&key, value);
                    if shadow.insert(key, value).is_some() {
                        expected.updated += 1;
                    } else {
                        expected.inserted += 1;
                    }
                }
            }
            let summary = db.apply(&batch).unwrap();
            assert_eq!(summary, expected, "case {case} round {round}: summary");
            reference = shadow;
        }
        let got: Vec<(Vec<u8>, u64)> = db.iter().collect();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        assert_eq!(got, expected, "case {case}: final state");
    }
}

/// Regression: a batch sharing one 2-byte prefix used to be encoded as a
/// single child body, which could exceed the 19-bit container size field
/// and abort.  The engine must feed the child in bounded chunks (the child
/// upgrades None -> embedded/PC -> pointer along the way).
#[test]
fn huge_shared_prefix_batch_stays_within_container_limits() {
    let mut rng = Mt19937_64::new(0x51ab);
    let mut map = HyperionMap::new();
    map.put(b"ab", 1);
    let pairs: Vec<(Vec<u8>, u64)> = (0..40_000u64)
        .map(|i| {
            let mut key = b"ab".to_vec();
            key.extend((0..16).map(|_| (rng.next_u64() & 0xff) as u8));
            (key, i)
        })
        .collect();
    let inserted = map.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
    let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    reference.insert(b"ab".to_vec(), 1);
    for (k, v) in &pairs {
        reference.insert(k.clone(), *v);
    }
    assert_eq!(inserted, reference.len() - 1);
    assert_eq!(map.len(), reference.len());
    map.validate_structure()
        .expect("invariants after huge batch");
    for (k, v) in reference.iter().step_by(97) {
        assert_eq!(map.get(k), Some(*v));
    }
    let collected: Vec<(Vec<u8>, u64)> = map.iter().collect();
    let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
    assert_eq!(collected, expected);
}

/// Interleaved forward/backward cursor walks (`next`/`prev`/`seek`/
/// `seek_exclusive`/`seek_last`/`seek_for_pred`) against a `BTreeMap`-backed
/// model of the cursor contract: the reference point is the last returned
/// key (or the seek target before anything was returned); `next()` returns
/// the smallest key strictly above it, `prev()` the greatest key strictly
/// below it.
#[test]
fn interleaved_cursor_walks_match_model() {
    /// The model cursor: a position in the key space plus whether the
    /// boundary key itself was consumed.
    #[derive(Clone, Debug)]
    enum Model {
        /// Reference point `key`; `next` yields the first key > key if
        /// `above`, else >= key.  `prev` yields the last key < key if
        /// `below`, else <= key.  (`above`/`below` encode in-/exclusivity.)
        At {
            key: Vec<u8>,
            above: bool,
            below: bool,
        },
        /// Past the greatest key (after `seek_last`).
        End,
    }
    for case in 0..48u64 {
        let mut rng = Mt19937_64::new(0xc4a5e + case);
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let n = 50 + (rng.next_u64() as usize) % 500;
        for _ in 0..n {
            let key = random_key(&mut rng, 12);
            let value = rng.next_u64();
            map.put(&key, value);
            reference.insert(key, value);
        }
        let mut cursor = map.cursor();
        // Cursor::new == seek(&[]).
        let mut model = Model::At {
            key: Vec::new(),
            above: false,
            below: true,
        };
        for step in 0..200 {
            match rng.next_u64() % 8 {
                0 => {
                    let target = random_key(&mut rng, 12);
                    cursor.seek(&target);
                    model = Model::At {
                        key: target,
                        above: false,
                        below: true,
                    };
                }
                1 => {
                    let target = random_key(&mut rng, 12);
                    cursor.seek_exclusive(&target);
                    model = Model::At {
                        key: target,
                        above: true,
                        below: false,
                    };
                }
                2 => {
                    cursor.seek_last();
                    model = Model::End;
                }
                3 => {
                    let target = random_key(&mut rng, 12);
                    cursor.seek_for_pred(&target);
                    model = Model::At {
                        key: target,
                        above: true,
                        below: false,
                    };
                }
                4 => {
                    let target = random_key(&mut rng, 12);
                    cursor.seek_for_pred_exclusive(&target);
                    model = Model::At {
                        key: target,
                        above: false,
                        below: true,
                    };
                }
                _ => {
                    // Steps are twice as likely as seeks.
                    let forward = rng.next_u64() % 2 == 0;
                    let expected = match (&model, forward) {
                        (Model::End, true) => None,
                        (Model::End, false) => {
                            reference.iter().next_back().map(|(k, v)| (k.clone(), *v))
                        }
                        (Model::At { key, above, .. }, true) => {
                            let bound = if *above {
                                Bound::Excluded(key.clone())
                            } else {
                                Bound::Included(key.clone())
                            };
                            reference
                                .range((bound, Bound::Unbounded))
                                .next()
                                .map(|(k, v)| (k.clone(), *v))
                        }
                        (Model::At { key, below, .. }, false) => {
                            let bound = if *below {
                                Bound::Excluded(key.clone())
                            } else {
                                Bound::Included(key.clone())
                            };
                            reference
                                .range((Bound::Unbounded, bound))
                                .next_back()
                                .map(|(k, v)| (k.clone(), *v))
                        }
                    };
                    let got = if forward {
                        cursor.next()
                    } else {
                        cursor.prev()
                    };
                    assert_eq!(
                        got,
                        expected,
                        "case {case} step {step}: {} from {model:?}",
                        if forward { "next" } else { "prev" }
                    );
                    // A returned key becomes the new reference point; a dry
                    // step leaves the position unchanged.
                    if let Some((key, _)) = got {
                        model = Model::At {
                            key,
                            above: true,
                            below: true,
                        };
                    }
                }
            }
        }
    }
}

/// Reverse iteration (`iter().rev()`, `range(..).rev()`) and the backward
/// queries (`last`/`pred`) stay correct across structural mutations —
/// interleaved batch puts, point puts and deletes in sorted, reverse and
/// random key orders force splits/ejections — with the full container
/// invariant check after every mutation round.
#[test]
fn reverse_iteration_survives_structural_mutations() {
    #[derive(Clone, Copy)]
    enum Order {
        Sorted,
        Reverse,
        Random,
    }
    for (case, order) in [Order::Sorted, Order::Reverse, Order::Random]
        .into_iter()
        .cycle()
        .take(12)
        .enumerate()
    {
        let case = case as u64;
        let mut rng = Mt19937_64::new(0xfeed_beef + case);
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for round in 0..8 {
            let n = 1 + (rng.next_u64() as usize) % 200;
            let mut pairs: Vec<(Vec<u8>, u64)> = (0..n)
                .map(|_| (random_key(&mut rng, 16), rng.next_u64()))
                .collect();
            match order {
                Order::Sorted => pairs.sort(),
                Order::Reverse => {
                    pairs.sort();
                    pairs.reverse();
                }
                Order::Random => {}
            }
            map.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
            for (k, v) in &pairs {
                reference.insert(k.clone(), *v);
            }
            for _ in 0..25 {
                let key = random_key(&mut rng, 16);
                if rng.next_u64() % 3 == 0 {
                    map.delete(&key);
                    reference.remove(&key);
                } else {
                    let value = rng.next_u64();
                    map.put(&key, value);
                    reference.insert(key, value);
                }
            }
            map.validate_structure()
                .unwrap_or_else(|e| panic!("case {case} round {round}: {e}"));
            // Full reverse iteration after the mutations.
            let got: Vec<(Vec<u8>, u64)> = map.iter().rev().collect();
            let expected: Vec<(Vec<u8>, u64)> = reference
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "case {case} round {round}: reverse iter");
            // Reverse bounded range.
            let mut a = random_key(&mut rng, 16);
            let mut b = random_key(&mut rng, 16);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            let got: Vec<(Vec<u8>, u64)> = map.range(&a[..]..&b[..]).rev().collect();
            let expected: Vec<(Vec<u8>, u64)> = reference
                .range(a.clone()..b.clone())
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "case {case} round {round}: reverse range");
            // last/pred agree with the oracle.
            assert_eq!(
                map.last(),
                reference.iter().next_back().map(|(k, v)| (k.clone(), *v)),
                "case {case} round {round}: last"
            );
            let probe = random_key(&mut rng, 16);
            assert_eq!(
                map.pred(&probe),
                reference
                    .range(..probe.clone())
                    .next_back()
                    .map(|(k, v)| (k.clone(), *v)),
                "case {case} round {round}: pred {probe:x?}"
            );
        }
    }
}

/// `get_many` must be order-faithful (`results[i]` answers `keys[i]`) and
/// agree with a `BTreeMap` oracle under interleaved puts and deletes, for
/// batches mixing present keys, never-inserted keys, deleted keys, duplicate
/// probes and the empty key — in sorted, reverse and random probe orders.
#[test]
fn get_many_matches_oracle_under_interleaved_ops() {
    for case in 0..24u64 {
        let mut rng = Mt19937_64::new(0x6e7_3a11 + case);
        let mut map = HyperionMap::new();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut deleted: Vec<Vec<u8>> = Vec::new();
        let ops = 200 + (rng.next_u64() as usize) % 2000;
        for _ in 0..ops {
            let key = random_key(&mut rng, 18);
            if rng.next_u64() % 5 == 0 {
                map.delete(&key);
                if reference.remove(&key).is_some() {
                    deleted.push(key);
                }
            } else {
                let value = rng.next_u64();
                map.put(&key, value);
                reference.insert(key, value);
            }
        }
        // Probe set: hits, misses, deleted keys, duplicates, the empty key.
        let mut probes: Vec<Vec<u8>> = Vec::new();
        for (k, _) in reference.iter().step_by(3) {
            probes.push(k.clone());
            if rng.next_u64() % 4 == 0 {
                probes.push(k.clone()); // duplicate probe in the same batch
            }
        }
        for _ in 0..probes.len() / 4 + 1 {
            probes.push(random_key(&mut rng, 18)); // likely miss
        }
        probes.extend(deleted.into_iter().take(16));
        probes.push(Vec::new());
        for order in ["sorted", "reverse", "random"] {
            match order {
                "sorted" => probes.sort(),
                "reverse" => probes.reverse(),
                _ => {
                    for i in (1..probes.len()).rev() {
                        let j = (rng.next_u64() as usize) % (i + 1);
                        probes.swap(i, j);
                    }
                }
            }
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let got = map.get_many(&refs);
            assert_eq!(got.len(), probes.len(), "case {case} {order}: length");
            for (probe, result) in probes.iter().zip(&got) {
                assert_eq!(
                    *result,
                    reference.get(probe).copied(),
                    "case {case} {order}: probe {probe:x?}"
                );
            }
        }
    }
}

/// `HyperionDb::multi_get` must agree with per-key `get` and the oracle for
/// every partitioner, including over-long keys (resolved to `None`, never an
/// error) and batches spanning all shards.
#[test]
fn db_multi_get_matches_oracle() {
    use hyperion::core::db::{
        FibonacciPartitioner, HyperionDb, Partitioner, PrefixHashPartitioner, RangePartitioner,
    };
    use std::sync::Arc;
    let partitioners: Vec<Arc<dyn Partitioner>> = vec![
        Arc::new(FibonacciPartitioner),
        Arc::new(PrefixHashPartitioner::default()),
        Arc::new(RangePartitioner),
    ];
    for partitioner in partitioners {
        let name = partitioner.name();
        let mut rng = Mt19937_64::new(0xdbb);
        let db = HyperionDb::builder()
            .shards(7)
            .partitioner_arc(partitioner)
            .build();
        let mut reference: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for _ in 0..3000 {
            let key = random_key(&mut rng, 12);
            let value = rng.next_u64();
            if rng.next_u64() % 6 == 0 {
                db.delete(&key).unwrap();
                reference.remove(&key);
            } else {
                db.put(&key, value).unwrap();
                reference.insert(key, value);
            }
        }
        let mut probes: Vec<Vec<u8>> = reference.keys().step_by(2).cloned().collect();
        for _ in 0..200 {
            probes.push(random_key(&mut rng, 12));
        }
        probes.push(Vec::new());
        probes.push(vec![0xab; 2000]); // over MAX_KEY_LEN: always None
        for i in (1..probes.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            probes.swap(i, j);
        }
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let got = db.multi_get(&refs).unwrap();
        for (probe, result) in probes.iter().zip(&got) {
            assert_eq!(
                *result,
                reference.get(probe).copied(),
                "{name}: probe {probe:x?}"
            );
            assert_eq!(*result, db.get(probe).unwrap(), "{name}: vs point get");
        }
    }
}

//! Stress tests for the sharded `HyperionDb` front end: multi-threaded mixed
//! batch workloads pinned against a mutex-wrapped `BTreeMap` oracle, and the
//! bounded-memory guarantee of the streaming merged scan.

use hyperion::workloads::Mt19937_64;
use hyperion::{FibonacciPartitioner, HyperionDb, HyperionError, Partitioner, WriteBatch};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// 8 threads × mixed `WriteBatch` / `multi_get` / range traffic.  Each thread
/// owns a disjoint key slice (tagged by thread id), so the shared oracle can
/// be maintained exactly; the hot-prefix variant funnels every key through
/// one common prefix to exercise skewed routing.
fn mixed_workload(partitioner: impl Partitioner + 'static, hot_prefix: bool) {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 120;
    const BATCH: usize = 32;

    let db = Arc::new(
        HyperionDb::builder()
            .shards(16)
            .partitioner(partitioner)
            .scan_chunk_size(32)
            .build(),
    );
    let oracle = Arc::new(Mutex::new(BTreeMap::<Vec<u8>, u64>::new()));

    let key_of = move |thread: u64, n: u64| -> Vec<u8> {
        if hot_prefix {
            // Every key shares one prefix: first-byte routing would serialise
            // this; the hash partitioner must still spread it.
            format!("hot:{thread}:{:06}", n % 4000).into_bytes()
        } else {
            format!("t{thread}:{:06}", n % 4000).into_bytes()
        }
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut rng = Mt19937_64::new(0x9e3779b9 + t);
                let mut mine = BTreeMap::<Vec<u8>, u64>::new();
                for round in 0..ROUNDS {
                    // Build a mixed batch over this thread's key slice.
                    let mut batch = WriteBatch::with_capacity(BATCH);
                    let mut staged = Vec::with_capacity(BATCH);
                    for _ in 0..BATCH {
                        let key = key_of(t, rng.next_u64());
                        if rng.next_u64() % 4 == 0 {
                            batch.delete(&key);
                            staged.push((key, None));
                        } else {
                            let value = rng.next_u64();
                            batch.put(&key, value);
                            staged.push((key, Some(value)));
                        }
                    }
                    db.apply(&batch).expect("batch apply");
                    // Mirror the batch into the shared oracle and the private
                    // view; disjoint key slices make this race-free.
                    {
                        let mut oracle = oracle.lock().unwrap();
                        for (key, value) in &staged {
                            match value {
                                Some(v) => {
                                    oracle.insert(key.clone(), *v);
                                    mine.insert(key.clone(), *v);
                                }
                                None => {
                                    oracle.remove(key);
                                    mine.remove(key);
                                }
                            }
                        }
                    }
                    // multi_get over a mix of own hits and guaranteed misses.
                    let probes: Vec<Vec<u8>> = (0..16)
                        .map(|i| {
                            if i % 4 == 0 {
                                format!("miss:{t}:{i}").into_bytes()
                            } else {
                                key_of(t, rng.next_u64())
                            }
                        })
                        .collect();
                    let refs: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
                    let got = db.multi_get(&refs).expect("multi_get");
                    for (key, got) in probes.iter().zip(&got) {
                        assert_eq!(
                            *got,
                            mine.get(key).copied(),
                            "multi_get mismatch for {:?} (round {round})",
                            String::from_utf8_lossy(key)
                        );
                    }
                    // Streaming range scan under concurrent writers: must be
                    // strictly ascending, and this thread's own keys must
                    // carry values it wrote at some point.
                    if round % 16 == 0 {
                        let from = key_of(t, rng.next_u64());
                        let mut last: Option<Vec<u8>> = None;
                        for (key, _) in db.range(&from[..]..).take(200) {
                            if let Some(prev) = &last {
                                assert!(prev < &key, "merged scan out of order");
                            }
                            last = Some(key);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Quiesced: the database must agree exactly with the oracle.
    let oracle = Arc::try_unwrap(oracle).unwrap().into_inner().unwrap();
    assert_eq!(db.len(), oracle.len());
    let got: Vec<_> = db.iter().collect();
    let expected: Vec<_> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(got, expected, "final scan must match the oracle");
}

#[test]
fn mixed_batch_workload_matches_oracle() {
    mixed_workload(FibonacciPartitioner, false);
}

#[test]
fn hot_prefix_workload_spreads_and_matches_oracle() {
    mixed_workload(FibonacciPartitioner, true);
}

/// Acceptance criterion: a scan over 1M keys with a 64-entry chunk buffers at
/// most `shards × 64` entries — no per-shard snapshot is ever taken.
#[test]
fn million_key_scan_allocates_bounded_memory() {
    const N: u64 = 1_000_000;
    const SHARDS: usize = 8;
    const CHUNK: usize = 64;

    let db = HyperionDb::builder()
        .shards(SHARDS)
        .scan_chunk_size(CHUNK)
        .build();
    let mut batch = WriteBatch::with_capacity(4096);
    let mut rng = Mt19937_64::new(0xfeed_beef);
    for i in 0..N {
        // Random 8-byte keys spread over all shards and container shapes.
        batch.put(&rng.next_u64().to_be_bytes(), i);
        if batch.len() == 4096 {
            db.apply(&batch).expect("load batch");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.apply(&batch).expect("load batch");
    }
    let total = db.len();
    assert!(
        total > 990_000,
        "the seeded RNG must not collide this often"
    );

    let mut scan = db.iter();
    let mut count = 0usize;
    let mut last: Option<Vec<u8>> = None;
    while let Some((key, _)) = scan.next() {
        count += 1;
        if count % 4096 == 0 {
            assert!(
                scan.buffered_entries() <= SHARDS * CHUNK,
                "buffered {} entries at step {count}, cap is {}",
                scan.buffered_entries(),
                SHARDS * CHUNK
            );
        }
        if let Some(prev) = &last {
            assert!(prev.as_slice() < key.as_slice(), "scan out of order");
        }
        last = Some(key);
    }
    assert_eq!(count, total, "scan must visit every key exactly once");
    assert!(
        scan.peak_buffered() <= SHARDS * CHUNK,
        "peak buffered {} exceeds shards × chunk = {}",
        scan.peak_buffered(),
        SHARDS * CHUNK
    );
}

/// The typed error surface composes: an over-long key inside a batch fails
/// that op alone, and the report indexes it correctly even under threads.
#[test]
fn batch_partial_failures_are_precise() {
    let db = HyperionDb::builder().shards(4).build();
    let long = vec![9u8; hyperion::core::db::MAX_KEY_LEN + 1];
    let mut batch = WriteBatch::new();
    batch
        .put(b"ok-1", 1)
        .delete(&long)
        .put(b"ok-2", 2)
        .put(&long, 3);
    let err = db.apply(&batch).unwrap_err();
    match err {
        HyperionError::BatchFailed(report) => {
            assert_eq!(report.summary.inserted, 2);
            let indices: Vec<usize> = report.failures.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, vec![1, 3]);
        }
        other => panic!("expected BatchFailed, got {other:?}"),
    }
    assert_eq!(db.get(b"ok-1").unwrap(), Some(1));
    assert_eq!(db.get(b"ok-2").unwrap(), Some(2));
}

//! Acceptance tests for the backward traversal engine at scale: `Iter`,
//! `Range`, `Prefix` and `DbScan` reverse traversal are each verified against
//! a `BTreeMap` oracle at >= 100,000 keys (the PR's acceptance bar), plus
//! `last`/`pred` spot checks along the way.

use hyperion::core::db::RangePartitioner;
use hyperion::workloads::Mt19937_64;
use hyperion::{HyperionDb, HyperionMap};
use std::collections::BTreeMap;

const KEYS: usize = 100_000;

/// 100k mixed-shape keys (8-byte integers and short strings) plus a
/// `BTreeMap` oracle.
fn big_fixture() -> (HyperionMap, BTreeMap<Vec<u8>, u64>) {
    let mut rng = Mt19937_64::new(0xbac_5ca9);
    let mut reference = BTreeMap::new();
    while reference.len() < KEYS {
        let x = rng.next_u64();
        let key = if x % 4 == 0 {
            format!("user:{:010}", x % 3_000_000).into_bytes()
        } else {
            x.to_be_bytes().to_vec()
        };
        reference.insert(key, rng.next_u64());
    }
    let mut map = HyperionMap::new();
    map.put_many(reference.iter().map(|(k, v)| (k.as_slice(), *v)));
    assert_eq!(map.len(), reference.len());
    (map, reference)
}

#[test]
fn iter_rev_matches_btreemap_at_100k() {
    let (map, reference) = big_fixture();
    let got: Vec<(Vec<u8>, u64)> = map.iter().rev().collect();
    let expected: Vec<(Vec<u8>, u64)> = reference
        .iter()
        .rev()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(got.len(), expected.len());
    assert_eq!(got, expected);
    assert_eq!(
        map.last(),
        reference.iter().next_back().map(|(k, v)| (k.clone(), *v))
    );
}

#[test]
fn range_rev_matches_btreemap_at_100k() {
    let (map, reference) = big_fixture();
    let mut rng = Mt19937_64::new(0x4a11);
    let keys: Vec<&Vec<u8>> = reference.keys().collect();
    // A full-coverage reverse range plus random sub-ranges.
    let got: Vec<(Vec<u8>, u64)> = map.range::<[u8], _>(..).rev().collect();
    let expected: Vec<(Vec<u8>, u64)> = reference
        .iter()
        .rev()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(got, expected, "unbounded reverse range");
    for case in 0..20 {
        let mut a = keys[(rng.next_u64() as usize) % keys.len()].clone();
        let mut b = keys[(rng.next_u64() as usize) % keys.len()].clone();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let got: Vec<(Vec<u8>, u64)> = map.range(&a[..]..&b[..]).rev().collect();
        let expected: Vec<(Vec<u8>, u64)> = reference
            .range(a.clone()..b.clone())
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected, "case {case}: rev range {a:x?}..{b:x?}");
        // pred at the range boundary agrees with the oracle.
        let expected_pred = reference
            .range(..a.clone())
            .next_back()
            .map(|(k, v)| (k.clone(), *v));
        assert_eq!(map.pred(&a), expected_pred, "case {case}: pred");
    }
}

#[test]
fn prefix_rev_matches_btreemap_at_100k() {
    let (map, reference) = big_fixture();
    for prefix in [&b"user:"[..], b"user:00000", b"", &[0x00], &[0x42], &[0xff]] {
        let got: Vec<Vec<u8>> = map.prefix(prefix).rev().map(|(k, _)| k).collect();
        let mut expected: Vec<Vec<u8>> = reference
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        expected.reverse();
        assert_eq!(got, expected, "rev prefix {prefix:x?}");
    }
}

#[test]
fn db_scan_rev_matches_btreemap_at_100k() {
    let (_, reference) = big_fixture();
    // Order-preserving partitioner: the reverse merge must also exercise the
    // shard-pruning path.
    let db = HyperionDb::builder()
        .shards(16)
        .partitioner(RangePartitioner)
        .scan_chunk_size(128)
        .build();
    let pairs: Vec<(&[u8], u64)> = reference.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
    for (k, v) in &pairs {
        db.put(k, *v).unwrap();
    }
    let got: Vec<(Vec<u8>, u64)> = db.iter_rev().collect();
    let expected: Vec<(Vec<u8>, u64)> = reference
        .iter()
        .rev()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(got.len(), expected.len());
    assert_eq!(got, expected, "full reverse merged scan");

    let mut rng = Mt19937_64::new(0x9eed);
    let keys: Vec<&Vec<u8>> = reference.keys().collect();
    for case in 0..10 {
        let mut a = keys[(rng.next_u64() as usize) % keys.len()].clone();
        let mut b = keys[(rng.next_u64() as usize) % keys.len()].clone();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let got: Vec<(Vec<u8>, u64)> = db.range_rev(&a[..]..&b[..]).collect();
        let expected: Vec<(Vec<u8>, u64)> = reference
            .range(a.clone()..b.clone())
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected, "case {case}: db rev range");
    }
    let got: Vec<Vec<u8>> = db.prefix_rev(b"user:0").map(|(k, _)| k).collect();
    let mut expected: Vec<Vec<u8>> = reference
        .keys()
        .filter(|k| k.starts_with(b"user:0"))
        .cloned()
        .collect();
    expected.reverse();
    assert_eq!(got, expected, "db rev prefix");
}

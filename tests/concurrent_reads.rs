//! Stress test for the optimistic lock-free read path: reader threads run
//! point gets, batched gets and forward/reverse scans against a sharded
//! `HyperionDb` while writer threads mutate it under deliberately tiny
//! split/eject thresholds (maximum structural churn per byte written).
//!
//! Correctness is checked without a global lock via a per-key
//! *started/completed* window.  The monotonic writer publishes
//! `started[i] = n` (Release) before `put(key_i, n)` and `completed[i] = n`
//! (Release) after the put returns, and only ever increases a key's value.
//! A reader then brackets every observation:
//!
//! ```text
//! lo = completed[i]   (before the call)
//! v  = get(key_i)
//! hi = started[i]     (after the call)
//! assert lo <= v <= hi
//! ```
//!
//! `v >= lo` holds because the put of `lo` finished before the call began,
//! so every seqlock-validated snapshot the call can observe already contains
//! it; `v <= hi` holds because a value is only ever written after its
//! `started` store.  Together they pin every observed value to one that was
//! current at some instant *during the call that observed it* — exactly the
//! linearizability contract the optimistic read engine promises.  Scans get
//! the same treatment per returned entry (their chunk-granular snapshots
//! still satisfy the window, since each chunk refill is itself a validated
//! read), plus strict key-order asserts in both directions.

use hyperion::workloads::Mt19937_64;
use hyperion::{FibonacciPartitioner, HyperionConfig, HyperionDb};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keys the monotonic writer owns; never deleted, values only increase.
const MONOTONIC_KEYS: usize = 256;
/// Concurrent reader threads (plus two writers; the box may have one core —
/// preemption inside mutation spans is what makes readers retry there).
const READERS: usize = 3;
/// Minimum verified rounds per reader before it is allowed to stop.
const MIN_ROUNDS: usize = 150;
/// Readers keep hammering past `MIN_ROUNDS` until the optimistic counters
/// show at least one retry or fallback, up to this cap.
const RETRY_DEADLINE: Duration = Duration::from_secs(25);

fn monotonic_key(i: usize) -> Vec<u8> {
    format!("mono:{i:04}").into_bytes()
}

fn monotonic_index(key: &[u8]) -> Option<usize> {
    let rest = key.strip_prefix(b"mono:")?;
    std::str::from_utf8(rest).ok()?.parse().ok()
}

/// Variable-length churn keys: inserted and deleted at random to drive
/// container splits and ejections under the tiny thresholds.
fn churn_key(n: u64) -> Vec<u8> {
    let pad = "x".repeat((n % 23) as usize);
    format!("churn:{:03}:{pad}", n % 401).into_bytes()
}

struct Window {
    started: Vec<AtomicU64>,
    completed: Vec<AtomicU64>,
}

impl Window {
    fn new(initial: u64) -> Window {
        Window {
            started: (0..MONOTONIC_KEYS)
                .map(|_| AtomicU64::new(initial))
                .collect(),
            completed: (0..MONOTONIC_KEYS)
                .map(|_| AtomicU64::new(initial))
                .collect(),
        }
    }

    fn check(&self, i: usize, lo: u64, value: u64, what: &str) {
        let hi = self.started[i].load(Ordering::Acquire);
        assert!(
            lo <= value && value <= hi,
            "{what}: key {i} observed {value}, outside its live window [{lo}, {hi}]"
        );
    }

    /// Snapshot of every key's `completed` floor, taken before a scan.
    fn floors(&self) -> Vec<u64> {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect()
    }
}

#[test]
fn optimistic_reads_stay_linearizable_under_structural_churn() {
    // Tiny thresholds: every few hundred bytes of writes splits or ejects a
    // container, so mutation spans (and seqlock movement) are constant.
    let config = HyperionConfig {
        eject_threshold: 1024,
        split_base: 512,
        split_increment: 256,
        split_min_part: 128,
        ..HyperionConfig::for_strings()
    };
    let db = Arc::new(
        HyperionDb::builder()
            .shards(4)
            .config(config)
            .partitioner(FibonacciPartitioner)
            .scan_chunk_size(16)
            .build(),
    );
    let window = Arc::new(Window::new(1));
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + RETRY_DEADLINE;

    // Seed every monotonic key at value 1 and a first churn population.
    for i in 0..MONOTONIC_KEYS {
        db.put(&monotonic_key(i), 1).expect("seed put");
    }
    for n in 0..400u64 {
        db.put(&churn_key(n * 7), n).expect("seed churn");
    }

    let monotonic_writer = {
        let db = Arc::clone(&db);
        let window = Arc::clone(&window);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = Mt19937_64::new(0x5e9);
            let mut values = vec![1u64; MONOTONIC_KEYS];
            while !stop.load(Ordering::Relaxed) {
                let i = (rng.next_u64() as usize) % MONOTONIC_KEYS;
                let next = values[i] + 1;
                window.started[i].store(next, Ordering::Release);
                db.put(&monotonic_key(i), next).expect("monotonic put");
                window.completed[i].store(next, Ordering::Release);
                values[i] = next;
            }
            values
        })
    };

    let churn_writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = Mt19937_64::new(0xc0de);
            while !stop.load(Ordering::Relaxed) {
                let n = rng.next_u64();
                let key = churn_key(n);
                if n % 3 == 0 {
                    db.delete(&key).expect("churn delete");
                } else {
                    db.put(&key, n).expect("churn put");
                }
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let db = Arc::clone(&db);
            let window = Arc::clone(&window);
            std::thread::spawn(move || {
                let mut rng = Mt19937_64::new(0xab1e + r as u64);
                let mut round = 0usize;
                loop {
                    if round >= MIN_ROUNDS {
                        let s = db.stats().optimistic;
                        if s.retries + s.fallbacks > 0 || Instant::now() >= deadline {
                            break;
                        }
                    }
                    round += 1;

                    // Point get with a per-call window.
                    let i = (rng.next_u64() as usize) % MONOTONIC_KEYS;
                    let lo = window.completed[i].load(Ordering::Acquire);
                    let got = db
                        .get(&monotonic_key(i))
                        .expect("get")
                        .expect("monotonic keys are never deleted");
                    window.check(i, lo, got, "point get");

                    // Batched get: same bracket per probed key.
                    if round % 4 == 0 {
                        let indices: Vec<usize> = (0..16)
                            .map(|_| (rng.next_u64() as usize) % MONOTONIC_KEYS)
                            .collect();
                        let keys: Vec<Vec<u8>> =
                            indices.iter().map(|&i| monotonic_key(i)).collect();
                        let lows: Vec<u64> = indices
                            .iter()
                            .map(|&i| window.completed[i].load(Ordering::Acquire))
                            .collect();
                        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                        let got = db.multi_get(&refs).expect("multi_get");
                        for ((&i, &lo), got) in indices.iter().zip(&lows).zip(&got) {
                            let value = got.expect("monotonic keys are never deleted");
                            window.check(i, lo, value, "multi_get");
                        }
                    }

                    // Forward scan over the monotonic band: strictly
                    // ascending, every value inside its window.
                    if round % 8 == 2 {
                        let floors = window.floors();
                        let mut last: Option<Vec<u8>> = None;
                        for (key, value) in db.prefix(b"mono:").take(64) {
                            if let Some(prev) = &last {
                                assert!(prev < &key, "forward scan out of order");
                            }
                            let i = monotonic_index(&key).expect("scan key shape");
                            window.check(i, floors[i], value, "forward scan");
                            last = Some(key);
                        }
                    }

                    // Reverse scan: strictly descending, same window rule.
                    if round % 8 == 6 {
                        let floors = window.floors();
                        let mut last: Option<Vec<u8>> = None;
                        for (key, value) in db.prefix_rev(b"mono:").take(64) {
                            if let Some(prev) = &last {
                                assert!(prev > &key, "reverse scan out of order");
                            }
                            let i = monotonic_index(&key).expect("scan key shape");
                            window.check(i, floors[i], value, "reverse scan");
                            last = Some(key);
                        }
                    }

                    // Whole-keyspace order check across the churn band too.
                    if round % 16 == 10 {
                        let mut last: Option<Vec<u8>> = None;
                        for (key, _) in db.iter().take(128) {
                            if let Some(prev) = &last {
                                assert!(prev < &key, "mixed scan out of order");
                            }
                            last = Some(key);
                        }
                    }
                }
            })
        })
        .collect();

    for handle in readers {
        handle.join().expect("reader thread");
    }
    stop.store(true, Ordering::Relaxed);
    let final_values = monotonic_writer.join().expect("monotonic writer");
    churn_writer.join().expect("churn writer");

    // Quiesced: the map agrees exactly with the writer's private log.
    for (i, &expected) in final_values.iter().enumerate() {
        assert_eq!(
            db.get(&monotonic_key(i)).expect("final get"),
            Some(expected),
            "key {i} diverged from the writer's log after quiescing"
        );
    }

    let stats = db.stats().optimistic;
    assert!(
        stats.hits > 0,
        "no optimistic read ever validated: {stats:?}"
    );
    assert!(
        stats.retries + stats.fallbacks > 0,
        "writers churned for {RETRY_DEADLINE:?} without a single seqlock \
         retry or mutex fallback — the optimistic path is not being exercised \
         ({stats:?})"
    );
}

//! Integration tests spanning the workspace: every index structure must agree
//! with `BTreeMap` on identical workloads, and the ordered structures must
//! produce identical range scans through the `OrderedRead` iterator API.

use hyperion::baselines::{ArtTree, CritBitTree, HatTrie, JudyTrie, OpenHashMap, RedBlackTree};
use hyperion::core::{HyperionConfig, KvStore, OrderedKvStore};
use hyperion::workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};
use hyperion::{FibonacciPartitioner, HyperionDb, HyperionMap, RangePartitioner};
use std::collections::BTreeMap;

fn all_stores() -> Vec<Box<dyn KvStore>> {
    vec![
        Box::new(HyperionMap::with_config(HyperionConfig::for_strings())),
        Box::new(HyperionMap::with_config(
            HyperionConfig::with_preprocessing(),
        )),
        Box::new(HyperionDb::new(8, HyperionConfig::for_strings())),
        Box::new(ArtTree::new()),
        Box::new(HatTrie::new()),
        Box::new(JudyTrie::new()),
        Box::new(CritBitTree::new()),
        Box::new(RedBlackTree::new()),
        Box::new(OpenHashMap::new()),
    ]
}

/// Every ordered structure (all six baselines minus the hash table, which the
/// trait split exempts at compile time) as an `OrderedKvStore` trait object.
/// The sharded front end participates twice: hash partitioning exercises the
/// all-shard merge, range partitioning the shard-pruning path.
fn ordered_stores() -> Vec<Box<dyn OrderedKvStore>> {
    vec![
        Box::new(HyperionMap::with_config(HyperionConfig::for_integers())),
        Box::new(
            HyperionDb::builder()
                .shards(8)
                .config(HyperionConfig::for_integers())
                .partitioner(FibonacciPartitioner)
                .scan_chunk_size(64)
                .build(),
        ),
        Box::new(
            HyperionDb::builder()
                .shards(8)
                .config(HyperionConfig::for_integers())
                .partitioner(RangePartitioner)
                .scan_chunk_size(64)
                .build(),
        ),
        Box::new(ArtTree::new()),
        Box::new(HatTrie::new()),
        Box::new(JudyTrie::new()),
        Box::new(CritBitTree::new()),
        Box::new(RedBlackTree::new()),
    ]
}

#[test]
fn every_store_agrees_with_btreemap_on_integers() {
    let workload = random_integer_keys(20_000, 0x1234);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    for mut store in all_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        assert_eq!(store.len(), reference.len(), "{}", store.name());
        for (k, v) in &reference {
            assert_eq!(store.get(k), Some(*v), "{} lost a key", store.name());
        }
    }
}

#[test]
fn every_store_agrees_with_btreemap_on_strings() {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 10_000,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0x42);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    for mut store in all_stores() {
        // Skip the pre-processing variant: it is designed for fixed-width keys.
        if store.name() == "hyperion_p" {
            continue;
        }
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        for (k, v) in &reference {
            assert_eq!(store.get(k), Some(*v), "{} lost a key", store.name());
        }
    }
}

#[test]
fn ordered_stores_produce_identical_range_scans() {
    let workload = random_integer_keys(5_000, 0x777);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
    for mut store in ordered_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        // Full scan through the iterator interface.
        let got: Vec<(Vec<u8>, u64)> = store.iter_from(&[]).collect();
        assert_eq!(got, expected, "{} full scan differs", store.name());
        // Seek into the middle of the key space.
        let mid = &expected[expected.len() / 2].0;
        let got_tail: Vec<(Vec<u8>, u64)> = store.iter_from(mid).collect();
        assert_eq!(
            got_tail,
            expected[expected.len() / 2..].to_vec(),
            "{} seek scan differs",
            store.name()
        );
    }
}

#[test]
fn ordered_stores_agree_on_bounded_ranges_and_prefixes() {
    let workload = random_integer_keys(5_000, 0xabc);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    let low = (u64::MAX / 3).to_be_bytes();
    let high = (2 * (u64::MAX / 3)).to_be_bytes();
    let expected_range: Vec<(Vec<u8>, u64)> = reference
        .range(low.to_vec()..high.to_vec())
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let prefix = [expected_range[0].0[0]];
    let expected_prefix = reference.keys().filter(|k| k.starts_with(&prefix)).count();
    for mut store in ordered_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        let got: Vec<(Vec<u8>, u64)> = store.range_iter(&low, &high).collect();
        assert_eq!(
            got,
            expected_range,
            "{} bounded range differs",
            store.name()
        );
        assert_eq!(
            store.range_count(&low, &high),
            expected_range.len(),
            "{} range_count differs",
            store.name()
        );
        assert_eq!(
            store.prefix_iter(&prefix).count(),
            expected_prefix,
            "{} prefix scan differs",
            store.name()
        );
        // Empty range and seek-past-end behave uniformly.
        assert_eq!(store.range_iter(&high, &low).count(), 0, "{}", store.name());
        assert_eq!(store.iter_from(&[0xff; 16]).count(), 0, "{}", store.name());
    }
}

#[test]
fn ordered_stores_agree_on_last_and_pred() {
    let workload = random_integer_keys(5_000, 0xbace);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    let expected_last = reference.iter().next_back().map(|(k, v)| (k.clone(), *v));
    for mut store in ordered_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        assert_eq!(store.last(), expected_last, "{} last", store.name());
        // Predecessor probes: stored keys (strictly-less contract), their
        // neighbours, the extremes, and the empty key.
        let mut probes: Vec<Vec<u8>> = reference.keys().step_by(250).cloned().collect();
        probes.extend(reference.keys().step_by(333).map(|k| {
            let mut k = k.clone();
            k.push(0);
            k
        }));
        probes.push(Vec::new());
        probes.push(vec![0x00]);
        probes.push(vec![0xff; 9]);
        for probe in &probes {
            let expected = reference
                .range(..probe.clone())
                .next_back()
                .map(|(k, v)| (k.clone(), *v));
            assert_eq!(
                store.pred(probe),
                expected,
                "{} pred({probe:x?})",
                store.name()
            );
        }
    }
    // An empty store answers neither query.
    for store in ordered_stores() {
        assert_eq!(store.last(), None, "{} empty last", store.name());
        assert_eq!(store.pred(b"x"), None, "{} empty pred", store.name());
    }
}

#[test]
fn ordered_stores_reverse_entries_agree() {
    // `Entries` is double-ended for every implementation: the Hyperion
    // overrides walk backward lazily, the baselines' eager snapshots step
    // back through the sorted vector.
    let workload = random_integer_keys(3_000, 0xdead);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    let low = (u64::MAX / 3).to_be_bytes();
    let high = (2 * (u64::MAX / 3)).to_be_bytes();
    let expected_tail: Vec<(Vec<u8>, u64)> = reference
        .range(low.to_vec()..)
        .rev()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let expected_range_rev: Vec<(Vec<u8>, u64)> = reference
        .range(low.to_vec()..high.to_vec())
        .rev()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for mut store in ordered_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        let got: Vec<(Vec<u8>, u64)> = store.iter_from(&low).rev().collect();
        assert_eq!(got, expected_tail, "{} reverse iter_from", store.name());
        let got: Vec<(Vec<u8>, u64)> = store.range_iter(&low, &high).rev().collect();
        assert_eq!(
            got,
            expected_range_rev,
            "{} reverse range_iter",
            store.name()
        );
    }
}

#[test]
fn deletions_are_consistent_across_stores() {
    let workload = random_integer_keys(5_000, 0x99);
    for mut store in all_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        for (i, k) in workload.keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(store.delete(k), "{} failed to delete", store.name());
            }
        }
        for (i, (k, v)) in workload.keys.iter().zip(&workload.values).enumerate() {
            let expected = if i % 3 == 0 { None } else { Some(*v) };
            assert_eq!(
                store.get(k),
                expected,
                "{} delete inconsistency",
                store.name()
            );
        }
    }
}

#[test]
fn hyperion_is_more_memory_efficient_than_pointer_heavy_baselines() {
    // The headline claim of the paper (Table 1): on string data Hyperion's
    // footprint per key is well below ART's and the red-black tree's.
    use hyperion::{KvRead, KvWrite};
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 20_000,
        ..Default::default()
    });
    let workload = &corpus.workload;
    let mut hyperion = HyperionMap::with_config(HyperionConfig::for_strings());
    let mut art = ArtTree::new();
    let mut rb = RedBlackTree::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        hyperion.put(k, *v);
        art.put(k, *v);
        rb.put(k, *v);
    }
    let h = hyperion.footprint_bytes() as f64 / workload.len() as f64;
    let a = art.memory_footprint() as f64 / workload.len() as f64;
    let r = rb.memory_footprint() as f64 / workload.len() as f64;
    assert!(h < a, "hyperion {h:.1} B/key should beat ART {a:.1} B/key");
    assert!(
        h < r / 2.0,
        "hyperion {h:.1} B/key should be far below RB-tree {r:.1} B/key"
    );
}

//! Integration tests spanning the workspace: every index structure must agree
//! with `BTreeMap` on identical workloads, and the ordered structures must
//! produce identical range scans.

use hyperion::baselines::{ArtTree, CritBitTree, HatTrie, JudyTrie, OpenHashMap, RedBlackTree};
use hyperion::core::{HyperionConfig, KeyValueStore};
use hyperion::workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};
use hyperion::HyperionMap;
use std::collections::BTreeMap;

fn all_stores() -> Vec<Box<dyn KeyValueStore>> {
    vec![
        Box::new(HyperionMap::with_config(HyperionConfig::for_strings())),
        Box::new(HyperionMap::with_config(HyperionConfig::with_preprocessing())),
        Box::new(ArtTree::new()),
        Box::new(HatTrie::new()),
        Box::new(JudyTrie::new()),
        Box::new(CritBitTree::new()),
        Box::new(RedBlackTree::new()),
        Box::new(OpenHashMap::new()),
    ]
}

#[test]
fn every_store_agrees_with_btreemap_on_integers() {
    let workload = random_integer_keys(20_000, 0x1234);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    for mut store in all_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        assert_eq!(store.len(), reference.len(), "{}", store.name());
        for (k, v) in &reference {
            assert_eq!(store.get(k), Some(*v), "{} lost a key", store.name());
        }
    }
}

#[test]
fn every_store_agrees_with_btreemap_on_strings() {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 10_000,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0x42);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    for mut store in all_stores() {
        // Skip the pre-processing variant: it is designed for fixed-width keys.
        if store.name() == "hyperion_p" {
            continue;
        }
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        for (k, v) in &reference {
            assert_eq!(store.get(k), Some(*v), "{} lost a key", store.name());
        }
    }
}

#[test]
fn ordered_stores_produce_identical_range_scans() {
    let workload = random_integer_keys(5_000, 0x777);
    let mut reference = BTreeMap::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        reference.insert(k.clone(), *v);
    }
    let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
    let ordered: Vec<Box<dyn KeyValueStore>> = vec![
        Box::new(HyperionMap::with_config(HyperionConfig::for_integers())),
        Box::new(ArtTree::new()),
        Box::new(HatTrie::new()),
        Box::new(JudyTrie::new()),
        Box::new(CritBitTree::new()),
        Box::new(RedBlackTree::new()),
    ];
    for mut store in ordered {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        let mut got = Vec::new();
        store.range_for_each(&[], &mut |k, v| {
            got.push((k.to_vec(), v));
            true
        });
        assert_eq!(got, expected, "{} range scan differs", store.name());
    }
}

#[test]
fn deletions_are_consistent_across_stores() {
    let workload = random_integer_keys(5_000, 0x99);
    for mut store in all_stores() {
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        for (i, k) in workload.keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(store.delete(k), "{} failed to delete", store.name());
            }
        }
        for (i, (k, v)) in workload.keys.iter().zip(&workload.values).enumerate() {
            let expected = if i % 3 == 0 { None } else { Some(*v) };
            assert_eq!(store.get(k), expected, "{} delete inconsistency", store.name());
        }
    }
}

#[test]
fn hyperion_is_more_memory_efficient_than_pointer_heavy_baselines() {
    // The headline claim of the paper (Table 1): on string data Hyperion's
    // footprint per key is well below ART's and the red-black tree's.
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 20_000,
        ..Default::default()
    });
    let workload = &corpus.workload;
    let mut hyperion = HyperionMap::with_config(HyperionConfig::for_strings());
    let mut art = ArtTree::new();
    let mut rb = RedBlackTree::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        hyperion.put(k, *v);
        art.put(k, *v);
        rb.put(k, *v);
    }
    let h = hyperion.footprint_bytes() as f64 / workload.len() as f64;
    let a = art.memory_footprint() as f64 / workload.len() as f64;
    let r = rb.memory_footprint() as f64 / workload.len() as f64;
    assert!(h < a, "hyperion {h:.1} B/key should beat ART {a:.1} B/key");
    assert!(h < r / 2.0, "hyperion {h:.1} B/key should be far below RB-tree {r:.1} B/key");
}

//! End-to-end integration tests of the network front end: concurrent
//! pipelined clients over a real loopback socket, validated against
//! per-client `BTreeMap` oracles, plus a protocol-fuzz pass proving that
//! malformed input produces typed errors without killing the connection or
//! the server.

use hyperion::core::db::MAX_KEY_LEN;
use hyperion::server::protocol::{self, opcode, ErrorCode, Request, Response};
use hyperion::server::{BatchEntry, Client, ClientError};
use hyperion::{FibonacciPartitioner, HyperionConfig, HyperionDb, Server, ServerConfig};
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn start_server() -> (hyperion::ServerHandle, Arc<HyperionDb>) {
    let db = Arc::new(
        HyperionDb::builder()
            .shards(8)
            .config(HyperionConfig::for_strings())
            .partitioner(FibonacciPartitioner)
            .build(),
    );
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    (server, db)
}

/// Deterministic xorshift, one stream per client.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Eight concurrent clients, each pipelining a mixed GET/PUT/DEL/MGET
/// workload over its own key stripe and checking every response against a
/// `BTreeMap` oracle updated at send time (valid because same-key requests
/// execute in arrival order server-side).
#[test]
fn concurrent_pipelined_clients_match_their_oracles() {
    const CLIENTS: usize = 8;
    const OPS: usize = 3_000;
    const WINDOW: usize = 48;
    let (mut server, db) = start_server();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rng = Rng(0xdead_beef + c as u64);
                let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
                // id -> expected response, window-bounded.
                let mut pending: HashMap<u32, Response> = HashMap::new();
                let drain_one = |client: &mut Client, pending: &mut HashMap<u32, Response>| {
                    let (id, resp) = client.recv().expect("recv");
                    let want = pending.remove(&id).expect("known id");
                    assert_eq!(resp, want, "client {c}: response diverged from oracle");
                };
                let key_of = |r: u64| format!("c{c:02}/{:05}", r % 600).into_bytes();
                for i in 0..OPS {
                    while pending.len() >= WINDOW {
                        client.flush().expect("flush");
                        drain_one(&mut client, &mut pending);
                    }
                    let (req, want) = match rng.next() % 10 {
                        // 40% puts
                        0..=3 => {
                            let key = key_of(rng.next());
                            let value = (c as u64) << 32 | i as u64;
                            oracle.insert(key.clone(), value);
                            (Request::Put { key, value }, Response::Ok)
                        }
                        // 20% deletes
                        4..=5 => {
                            let key = key_of(rng.next());
                            let present = oracle.remove(&key).is_some();
                            (Request::Del { key }, Response::Deleted(present))
                        }
                        // 30% gets
                        6..=8 => {
                            let key = key_of(rng.next());
                            let want = oracle.get(&key).copied();
                            (Request::Get { key }, Response::Value(want))
                        }
                        // 10% mgets.  MGET is routed by its *first* key and
                        // makes no ordering promise against requests in
                        // flight on other workers — in either direction —
                        // so it runs as a synchronous barrier: drain the
                        // window, send it alone, and drain it too before
                        // pipelining resumes (the same rule ycsb_throughput
                        // applies to scans).
                        _ => {
                            client.flush().expect("flush");
                            while !pending.is_empty() {
                                drain_one(&mut client, &mut pending);
                            }
                            let keys: Vec<Vec<u8>> = (0..4).map(|_| key_of(rng.next())).collect();
                            let want = keys
                                .iter()
                                .map(|k| oracle.get(k).copied())
                                .collect::<Vec<_>>();
                            (Request::MGet { keys }, Response::Values(want))
                        }
                    };
                    let barrier = matches!(req, Request::MGet { .. });
                    let id = client.send(&req);
                    pending.insert(id, want);
                    if barrier {
                        client.flush().expect("flush");
                        while !pending.is_empty() {
                            drain_one(&mut client, &mut pending);
                        }
                    }
                }
                client.flush().expect("flush");
                while !pending.is_empty() {
                    drain_one(&mut client, &mut pending);
                }
                // Final state check: a full sweep of this client's stripe.
                let mut final_client = client;
                for (key, value) in &oracle {
                    assert_eq!(
                        final_client.get(key).expect("get"),
                        Some(*value),
                        "client {c}: final state diverged"
                    );
                }
                oracle
            });
        }
    });

    // The pipelined load must have produced multi-request coalescing groups.
    let stats = server.stats();
    assert!(stats.errors == 0, "unexpected server errors: {stats:?}");
    assert!(
        stats.avg_read_group() > 1.0 || stats.avg_write_group() > 1.0,
        "eight pipelined clients should coalesce somewhere: {stats:?}"
    );
    // The embedded handle sees the same data the sockets wrote.
    assert!(!db.is_empty());
    server.shutdown();
}

/// Malformed frames, oversized keys, oversized frames: every one must come
/// back as a typed error on a connection that keeps working.
#[test]
fn protocol_fuzz_yields_typed_errors_not_dead_connections() {
    let (mut server, _db) = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut rng = Rng(0x5eed);

    // Interleave garbage with healthy traffic: after every piece of garbage
    // the same connection must still answer correctly.
    for round in 0..50u64 {
        let key = format!("fuzz{round:03}").into_bytes();
        client.put(&key, round).expect("healthy put");

        match rng.next() % 4 {
            // Truncated payload under a valid length prefix.
            0 => {
                let mut raw = Vec::new();
                protocol::encode_request(
                    1000 + round as u32,
                    &Request::Put {
                        key: b"victim".to_vec(),
                        value: 1,
                    },
                    &mut raw,
                );
                let cut = 1 + (rng.next() as usize) % 8;
                for _ in 0..cut.min(raw.len() - 9) {
                    raw.pop();
                }
                let len = (raw.len() - 4) as u32;
                raw[..4].copy_from_slice(&len.to_le_bytes());
                client.send_raw(&raw).expect("send");
                let (id, resp) = client.recv().expect("recv");
                assert_eq!(id, 1000 + round as u32);
                assert!(
                    matches!(
                        resp,
                        Response::Error {
                            code: ErrorCode::BadFrame,
                            ..
                        }
                    ),
                    "round {round}: {resp:?}"
                );
            }
            // Unknown opcode.
            1 => {
                let mut raw = Vec::new();
                raw.extend_from_slice(&5u32.to_le_bytes());
                raw.push(0x80 | (rng.next() as u8 & 0x7f).max(8));
                raw.extend_from_slice(&(2000 + round as u32).to_le_bytes());
                client.send_raw(&raw).expect("send");
                let (id, resp) = client.recv().expect("recv");
                assert_eq!(id, 2000 + round as u32);
                assert!(
                    matches!(
                        resp,
                        Response::Error {
                            code: ErrorCode::UnknownOp,
                            ..
                        }
                    ),
                    "round {round}: {resp:?}"
                );
            }
            // Key over the store maximum, via the typed client API.
            2 => {
                let long = vec![b'k'; MAX_KEY_LEN + 1 + (rng.next() as usize % 64)];
                match client.put(&long, 1) {
                    Err(ClientError::Server {
                        code: ErrorCode::KeyTooLong,
                        ..
                    }) => {}
                    other => panic!("round {round}: want KeyTooLong, got {other:?}"),
                }
            }
            // Structurally valid but bad argument: zero scan limit.
            _ => match client.scan(b"", None, 0, false) {
                Err(ClientError::Server {
                    code: ErrorCode::BadArgument,
                    ..
                }) => {}
                other => panic!("round {round}: want BadArgument, got {other:?}"),
            },
        }

        // The connection survived the garbage.
        assert_eq!(client.get(&key).expect("healthy get"), Some(round));
    }
    server.shutdown();
}

/// A client vanishing mid-frame (and mid-pipeline) must not take the server
/// or other connections down.
#[test]
fn mid_frame_disconnects_do_not_poison_the_server() {
    let (mut server, _db) = start_server();
    let addr = server.local_addr();

    for i in 0..20u64 {
        let mut stream = TcpStream::connect(addr).expect("connect raw");
        // A healthy pipelined burst...
        let mut burst = Vec::new();
        for j in 0..10u64 {
            protocol::encode_request(
                j as u32 + 1,
                &Request::Put {
                    key: format!("dis{i}-{j}").into_bytes(),
                    value: j,
                },
                &mut burst,
            );
        }
        stream.write_all(&burst).expect("write burst");
        // ...then half a frame header, then gone.
        stream
            .write_all(&[255, 0, 0, 0, opcode::GET, 1])
            .expect("write partial");
        drop(stream);
    }

    // The server is still fully functional for a well-behaved client.
    let mut client = Client::connect(addr).expect("connect");
    client.put(b"survivor", 99).expect("put");
    assert_eq!(client.get(b"survivor").expect("get"), Some(99));
    let stats = client.stats().expect("stats");
    assert!(stats.requests > 0);
    server.shutdown();
}

/// Batches and scans work through the facade re-exports, and scans observe
/// batch writes on the same connection once the batch is acknowledged.
#[test]
fn batch_then_scan_through_the_facade() {
    let (mut server, _db) = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let ops: Vec<BatchEntry> = (0..100)
        .map(|i| BatchEntry::Put {
            key: format!("scan/{i:03}").into_bytes(),
            value: i,
        })
        .collect();
    let ack = client.batch(&ops).expect("batch");
    assert_eq!(ack.inserted, 100);
    let forward = client
        .scan(b"scan/", Some(b"scan0"), 1000, false)
        .expect("scan");
    assert_eq!(forward.len(), 100);
    assert!(
        forward.windows(2).all(|w| w[0].0 < w[1].0),
        "ascending order"
    );
    let backward = client
        .scan(b"scan/", Some(b"scan0"), 1000, true)
        .expect("scan rev");
    assert_eq!(
        backward,
        forward.iter().rev().cloned().collect::<Vec<_>>(),
        "reverse scan mirrors forward"
    );
    // Limit honoured.
    let top3 = client.scan(b"scan/", None, 3, true).expect("scan top");
    assert_eq!(
        top3.iter().map(|(k, _)| k.as_slice()).collect::<Vec<_>>(),
        vec![&b"scan/099"[..], b"scan/098", b"scan/097"]
    );
    server.shutdown();
}

//! The memory manager facade used by the Hyperion trie.

use crate::extended::{ExtendedBin, CHAIN_LEN};
use crate::pointer::HyperionPointer;
use crate::stats::{MemoryStats, SuperbinStats};
use crate::superbin::Superbin;
use crate::{chunk_size_of_superbin, superbin_for_size, CHUNKS_PER_BIN, NUM_SUPERBINS};

/// Middleware between the trie and the system allocator.
///
/// All allocations are addressed through 5-byte [`HyperionPointer`]s.  One
/// manager instance is single-threaded; concurrency is obtained by creating
/// one manager per arena (see `hyperion-core::arena`).
pub struct MemoryManager {
    superbins: Vec<Superbin>,
    heap_requested: u64,
    heap_capacity: u64,
    total_allocations: u64,
    total_frees: u64,
}

impl MemoryManager {
    /// Creates an empty manager with all 64 superbins initialised (each
    /// superbin header is small; metabins and bins are created lazily).
    pub fn new() -> Self {
        let mut superbins = Vec::with_capacity(NUM_SUPERBINS);
        for id in 0..NUM_SUPERBINS {
            superbins.push(Superbin::new(id as u8));
        }
        let mut mgr = MemoryManager {
            superbins,
            heap_requested: 0,
            heap_capacity: 0,
            total_allocations: 0,
            total_frees: 0,
        };
        // Reserve the all-zero coordinate of SB0 so that a null HP never
        // aliases a real allocation.
        let reserved = mgr.superbins[0].allocate().expect("reserving null slot");
        debug_assert_eq!(reserved, (0, 0, 0));
        mgr
    }

    /// Allocates `size` bytes and returns the HP plus the usable capacity of
    /// the allocation (which is at least `size`).
    pub fn allocate(&mut self, size: usize) -> (HyperionPointer, usize) {
        crate::fail_point!("mem.alloc");
        self.total_allocations += 1;
        let sb_id = superbin_for_size(size);
        if sb_id == 0 {
            return self.allocate_extended(size);
        }
        let (mb, bin, chunk) = self.superbins[sb_id as usize]
            .allocate()
            .expect("small-allocation superbin exhausted");
        (
            HyperionPointer::new(sb_id, mb, bin, chunk),
            chunk_size_of_superbin(sb_id),
        )
    }

    fn allocate_extended(&mut self, size: usize) -> (HyperionPointer, usize) {
        let (mb, bin, chunk) = self.superbins[0]
            .allocate()
            .expect("extended superbin exhausted");
        let record = ExtendedBin::allocate(size);
        let capacity = record.capacity();
        self.heap_requested += size as u64;
        self.heap_capacity += capacity as u64;
        let hp = HyperionPointer::new(0, mb, bin, chunk);
        self.write_record(hp, record);
        (hp, capacity)
    }

    /// Frees an allocation.
    pub fn free(&mut self, hp: HyperionPointer) {
        debug_assert!(!hp.is_null(), "freeing the null HP");
        self.total_frees += 1;
        if hp.superbin() == 0 {
            let mut record = self.read_record(hp);
            if record.is_chain_head() {
                self.free_chained_inner(hp);
                return;
            }
            if record.is_valid() {
                self.heap_requested -= record.requested() as u64;
                self.heap_capacity -= record.capacity() as u64;
            }
            record.release();
            self.write_record(hp, record);
        }
        self.superbins[hp.superbin() as usize].free(hp.metabin(), hp.bin(), hp.chunk());
    }

    /// Grows or shrinks an allocation to hold at least `new_size` bytes.
    /// Returns the (possibly different) HP and the new capacity.  Existing
    /// payload bytes up to `min(old capacity, new_size)` are preserved.
    pub fn reallocate(&mut self, hp: HyperionPointer, new_size: usize) -> (HyperionPointer, usize) {
        let old_sb = hp.superbin();
        let new_sb = superbin_for_size(new_size);
        if old_sb != 0 && new_sb == old_sb {
            // Same size class: nothing to do.
            return (hp, chunk_size_of_superbin(old_sb));
        }
        if old_sb == 0 && new_sb == 0 {
            // Extended allocations grow in place; the HP stays stable.
            let mut record = self.read_record(hp);
            debug_assert!(record.is_valid(), "realloc of void extended bin");
            self.heap_requested -= record.requested() as u64;
            self.heap_capacity -= record.capacity() as u64;
            record.reallocate(new_size);
            self.heap_requested += record.requested() as u64;
            self.heap_capacity += record.capacity() as u64;
            let capacity = record.capacity();
            self.write_record(hp, record);
            return (hp, capacity);
        }
        // Size class change: allocate new, copy, free old.
        let old_capacity = self.capacity(hp);
        let old_ptr = self.resolve(hp);
        let (new_hp, new_capacity) = self.allocate(new_size);
        let new_ptr = self.resolve(new_hp);
        let copy_len = old_capacity.min(new_size).min(new_capacity);
        // Safety: both pointers reference live, non-overlapping allocations of
        // at least `copy_len` bytes owned by this manager.
        unsafe { std::ptr::copy_nonoverlapping(old_ptr, new_ptr, copy_len) };
        self.free(hp);
        (new_hp, new_capacity)
    }

    /// Translates an HP into a raw pointer to the chunk payload.
    ///
    /// For superbin 0 the returned pointer is the heap block referenced by the
    /// extended-bin record.  For chained extended bins use
    /// [`MemoryManager::resolve_chained`] instead.
    pub fn resolve(&self, hp: HyperionPointer) -> *mut u8 {
        debug_assert!(!hp.is_null(), "resolving the null HP");
        if hp.superbin() == 0 {
            let record = self.read_record(hp);
            debug_assert!(record.is_valid(), "resolving void extended bin {hp:?}");
            record.ptr()
        } else {
            self.chunk_ptr(hp)
        }
    }

    /// Usable capacity of the allocation behind `hp`.
    pub fn capacity(&self, hp: HyperionPointer) -> usize {
        if hp.superbin() == 0 {
            let record = self.read_record(hp);
            record.capacity()
        } else {
            chunk_size_of_superbin(hp.superbin())
        }
    }

    /// `true` if `hp` names the head of a chained extended bin.
    pub fn is_chained(&self, hp: HyperionPointer) -> bool {
        hp.superbin() == 0 && self.read_record(hp).is_chain_head()
    }

    // ----- chained extended bins (vertical container splits) ---------------

    /// Allocates a chained extended bin: eight consecutive SB0 chunks owned by
    /// a single HP.  All eight slots start void; populate them with
    /// [`MemoryManager::chained_set`].
    pub fn allocate_chained(&mut self) -> HyperionPointer {
        crate::fail_point!("mem.alloc");
        self.total_allocations += 1;
        let (mb, bin, first) = self.superbins[0]
            .allocate_consecutive(CHAIN_LEN)
            .expect("no room for chained extended bin");
        let head = HyperionPointer::new(0, mb, bin, first);
        for i in 0..CHAIN_LEN {
            let hp = HyperionPointer::new(0, mb, bin, first + i as u16);
            let mut record = ExtendedBin::EMPTY;
            if i == 0 {
                record.mark_chain_head();
            } else {
                record.mark_chain_member();
            }
            self.write_record(hp, record);
        }
        head
    }

    /// Allocates (or replaces) the heap block of chain slot `index` with
    /// `size` bytes and returns its pointer and capacity.
    pub fn chained_set(
        &mut self,
        head: HyperionPointer,
        index: usize,
        size: usize,
    ) -> (*mut u8, usize) {
        assert!(index < CHAIN_LEN);
        let hp = self.chain_slot(head, index);
        let mut record = self.read_record(hp);
        if record.is_valid() {
            self.heap_requested -= record.requested() as u64;
            self.heap_capacity -= record.capacity() as u64;
            record.release();
        }
        let was_head = index == 0;
        let mut fresh = ExtendedBin::allocate(size);
        if was_head {
            fresh.mark_chain_head();
        } else {
            fresh.mark_chain_member();
        }
        self.heap_requested += size as u64;
        self.heap_capacity += fresh.capacity() as u64;
        let out = (fresh.ptr(), fresh.capacity());
        self.write_record(hp, fresh);
        out
    }

    /// Grows the heap block of chain slot `index` to hold `new_size` bytes.
    pub fn chained_realloc(
        &mut self,
        head: HyperionPointer,
        index: usize,
        new_size: usize,
    ) -> (*mut u8, usize) {
        assert!(index < CHAIN_LEN);
        let hp = self.chain_slot(head, index);
        let mut record = self.read_record(hp);
        assert!(record.is_valid(), "chained_realloc on void slot");
        self.heap_requested -= record.requested() as u64;
        self.heap_capacity -= record.capacity() as u64;
        record.reallocate(new_size);
        self.heap_requested += record.requested() as u64;
        self.heap_capacity += record.capacity() as u64;
        let out = (record.ptr(), record.capacity());
        self.write_record(hp, record);
        out
    }

    /// Resolves a chained HP with a requested T-node key.  The chunk index is
    /// `key >> 5`; if that slot is void the next valid slot *below* it is
    /// returned, mirroring the paper's lookup rule.
    /// Returns `(slot index, pointer, capacity)`.
    pub fn resolve_chained(
        &self,
        head: HyperionPointer,
        key: u8,
    ) -> Option<(usize, *mut u8, usize)> {
        let start = (key >> 5) as usize;
        for index in (0..=start).rev() {
            let record = self.read_record(self.chain_slot(head, index));
            if record.is_valid() {
                return Some((index, record.ptr(), record.capacity()));
            }
        }
        None
    }

    /// One-pass read-side resolution of `hp`: chained heads resolve their
    /// slot by `hint` (chunk `hint >> 5`, falling back to the next valid
    /// slot below), plain HPs resolve directly.  Returns
    /// `(chain slot index if chained, payload pointer, capacity)`.
    ///
    /// Equivalent to `is_chained` + `resolve_chained`/`resolve` + `capacity`
    /// but reads each metadata record once — the point-lookup hot path
    /// resolves a container per descent level, so the redundant record
    /// walks were measurable.
    pub fn resolve_for_read(
        &self,
        hp: HyperionPointer,
        hint: u8,
    ) -> Option<(Option<usize>, *mut u8, usize)> {
        if hp.superbin() != 0 {
            return Some((
                None,
                self.chunk_ptr(hp),
                chunk_size_of_superbin(hp.superbin()),
            ));
        }
        let head = self.read_record(hp);
        if !head.is_chain_head() {
            debug_assert!(head.is_valid(), "resolving void extended bin {hp:?}");
            return Some((None, head.ptr(), head.capacity()));
        }
        let start = (hint >> 5) as usize;
        for index in (0..=start).rev() {
            let record = if index == 0 {
                head
            } else {
                self.read_record(self.chain_slot(hp, index))
            };
            if record.is_valid() {
                return Some((Some(index), record.ptr(), record.capacity()));
            }
        }
        None
    }

    /// The smallest valid slot index strictly greater than `after` in a
    /// chained extended bin, if any.  Allocation-free companion of
    /// [`MemoryManager::chained_valid_slots`] for read-side slot routing.
    pub fn chained_next_valid_slot(&self, head: HyperionPointer, after: usize) -> Option<usize> {
        ((after + 1)..CHAIN_LEN).find(|&i| self.read_record(self.chain_slot(head, i)).is_valid())
    }

    /// Returns the valid slot indices of a chained extended bin.
    pub fn chained_valid_slots(&self, head: HyperionPointer) -> Vec<usize> {
        (0..CHAIN_LEN)
            .filter(|&i| self.read_record(self.chain_slot(head, i)).is_valid())
            .collect()
    }

    /// Capacity of one chain slot (0 if void).
    pub fn chained_capacity(&self, head: HyperionPointer, index: usize) -> usize {
        let record = self.read_record(self.chain_slot(head, index));
        if record.is_valid() {
            record.capacity()
        } else {
            0
        }
    }

    /// Pointer of one chain slot (None if void).
    pub fn chained_ptr(&self, head: HyperionPointer, index: usize) -> Option<*mut u8> {
        let record = self.read_record(self.chain_slot(head, index));
        if record.is_valid() {
            Some(record.ptr())
        } else {
            None
        }
    }

    fn free_chained_inner(&mut self, head: HyperionPointer) {
        for i in 0..CHAIN_LEN {
            let hp = self.chain_slot(head, i);
            let mut record = self.read_record(hp);
            if record.is_valid() {
                self.heap_requested -= record.requested() as u64;
                self.heap_capacity -= record.capacity() as u64;
            }
            record.release();
            self.write_record(hp, record);
            self.superbins[0].free(hp.metabin(), hp.bin(), hp.chunk());
        }
    }

    fn chain_slot(&self, head: HyperionPointer, index: usize) -> HyperionPointer {
        HyperionPointer::new(0, head.metabin(), head.bin(), head.chunk() + index as u16)
    }

    // ----- extended-bin record storage --------------------------------------

    fn chunk_ptr(&self, hp: HyperionPointer) -> *mut u8 {
        let sb = &self.superbins[hp.superbin() as usize];
        let chunk_size = sb.chunk_size();
        sb.metabin(hp.metabin())
            .bin(hp.bin())
            .chunk_ptr(hp.chunk(), chunk_size)
    }

    fn read_record(&self, hp: HyperionPointer) -> ExtendedBin {
        debug_assert_eq!(hp.superbin(), 0);
        let ptr = self.chunk_ptr(hp) as *const ExtendedBin;
        // Safety: SB0 chunks are exactly 16 bytes (size_of::<ExtendedBin>())
        // and exclusively written through write_record.
        unsafe { std::ptr::read_unaligned(ptr) }
    }

    fn write_record(&mut self, hp: HyperionPointer, record: ExtendedBin) {
        debug_assert_eq!(hp.superbin(), 0);
        let ptr = self.chunk_ptr(hp) as *mut ExtendedBin;
        // Safety: see read_record.
        unsafe { std::ptr::write_unaligned(ptr, record) };
    }

    // ----- statistics --------------------------------------------------------

    /// Collects the per-superbin statistics used for Figures 14 and 16.
    pub fn stats(&self) -> MemoryStats {
        let mut superbins = Vec::with_capacity(NUM_SUPERBINS);
        let mut materialised = 0u64;
        for sb in &self.superbins {
            let chunk_size = sb.chunk_size();
            let mut allocated = 0u64;
            let mut existing = 0u64;
            for mb in sb.metabins() {
                for bin in mb.bins() {
                    if bin.has_segment() {
                        materialised += 1;
                        // Only slab-resident chunks count as existing: the
                        // untouched remainder of the bin is never committed.
                        existing += (bin.segment_bytes(chunk_size) / chunk_size) as u64;
                        allocated += bin.used() as u64;
                    }
                }
            }
            let empty = existing - allocated;
            let (alloc_bytes, empty_bytes) = if sb.id() == 0 {
                (
                    allocated * chunk_size as u64 + self.heap_capacity,
                    empty * chunk_size as u64,
                )
            } else {
                (allocated * chunk_size as u64, empty * chunk_size as u64)
            };
            superbins.push(SuperbinStats {
                superbin: sb.id(),
                chunk_size,
                allocated_chunks: allocated,
                empty_chunks: empty,
                allocated_bytes: alloc_bytes,
                empty_bytes,
            });
        }
        MemoryStats {
            superbins,
            heap_requested_bytes: self.heap_requested,
            heap_capacity_bytes: self.heap_capacity,
            materialised_segments: materialised,
            total_allocations: self.total_allocations,
            total_frees: self.total_frees,
        }
    }

    /// Total logical bytes currently consumed by the manager.
    ///
    /// Counts the chunks in use plus the heap capacity of extended bins plus
    /// the per-bin metadata (bitmap and housekeeping, 521 bytes per bin as in
    /// the paper).  Untouched chunks of a materialised segment are *not*
    /// counted: the paper backs segments with anonymous `mmap`, whose
    /// untouched pages do not consume physical memory, and measures RSS.  The
    /// never-touched part of a boxed segment plays the same role here (see
    /// DESIGN.md).  `stats()` still reports empty chunks separately as
    /// external fragmentation (Figures 14 and 16).
    pub fn footprint_bytes(&self) -> u64 {
        const BIN_METADATA_BYTES: u64 = 521;
        let mut total = self.heap_capacity;
        for sb in &self.superbins {
            let chunk_size = sb.chunk_size() as u64;
            for mb in sb.metabins() {
                for bin in mb.bins() {
                    if bin.has_segment() {
                        total += bin.used() as u64 * chunk_size + BIN_METADATA_BYTES;
                    }
                }
            }
        }
        total
    }
}

impl Default for MemoryManager {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MemoryManager {
    fn drop(&mut self) {
        // Release every extended heap block still referenced from SB0 chunks.
        let sb0 = &self.superbins[0];
        let mut pending = Vec::new();
        for (mb_id, mb) in sb0.metabins().enumerate() {
            for (bin_id, bin) in mb.bins().enumerate() {
                if !bin.has_segment() {
                    continue;
                }
                for chunk in 0..CHUNKS_PER_BIN as u16 {
                    if bin.is_allocated(chunk) {
                        pending.push(HyperionPointer::new(0, mb_id as u16, bin_id as u8, chunk));
                    }
                }
            }
        }
        for hp in pending {
            let mut record = self.read_record(hp);
            record.release();
            self.write_record(hp, record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_allocation_round_trip() {
        let mut mm = MemoryManager::new();
        let (hp, cap) = mm.allocate(40);
        assert_eq!(hp.superbin(), 2);
        assert_eq!(cap, 64);
        let ptr = mm.resolve(hp);
        unsafe { std::ptr::write_bytes(ptr, 0x77, cap) };
        assert_eq!(mm.capacity(hp), 64);
        mm.free(hp);
    }

    #[test]
    fn extended_allocation_keeps_hp_on_growth() {
        let mut mm = MemoryManager::new();
        let (hp, cap) = mm.allocate(5000);
        assert_eq!(hp.superbin(), 0);
        assert!(cap >= 5000);
        let (hp2, cap2) = mm.reallocate(hp, 50_000);
        assert_eq!(hp, hp2, "extended reallocation must keep the HP stable");
        assert!(cap2 >= 50_000);
        mm.free(hp2);
    }

    #[test]
    fn realloc_small_to_extended_preserves_payload() {
        let mut mm = MemoryManager::new();
        let (hp, cap) = mm.allocate(2016);
        let ptr = mm.resolve(hp);
        unsafe { std::ptr::write_bytes(ptr, 0x42, cap) };
        let (hp2, cap2) = mm.reallocate(hp, 4000);
        assert_ne!(hp, hp2);
        assert!(cap2 >= 4000);
        let data = unsafe { std::slice::from_raw_parts(mm.resolve(hp2), 2016) };
        assert!(data.iter().all(|&b| b == 0x42));
        mm.free(hp2);
    }

    #[test]
    fn realloc_within_same_class_is_a_noop() {
        let mut mm = MemoryManager::new();
        let (hp, _) = mm.allocate(33);
        let (hp2, cap2) = mm.reallocate(hp, 60);
        assert_eq!(hp, hp2);
        assert_eq!(cap2, 64);
        mm.free(hp2);
    }

    #[test]
    fn many_allocations_get_distinct_memory() {
        let mut mm = MemoryManager::new();
        let mut hps = Vec::new();
        for i in 0..10_000usize {
            let (hp, cap) = mm.allocate(32);
            let ptr = mm.resolve(hp);
            unsafe { std::ptr::write_bytes(ptr, (i % 251) as u8, cap) };
            hps.push((hp, (i % 251) as u8));
        }
        for (hp, tag) in &hps {
            let data = unsafe { std::slice::from_raw_parts(mm.resolve(*hp), 32) };
            assert!(data.iter().all(|b| b == tag));
        }
        for (hp, _) in hps {
            mm.free(hp);
        }
        let stats = mm.stats();
        // Only the reserved null slot remains allocated.
        assert_eq!(stats.allocated_chunks(), 1);
    }

    #[test]
    fn chained_bins_resolve_by_key_hint() {
        let mut mm = MemoryManager::new();
        let head = mm.allocate_chained();
        assert!(mm.is_chained(head));
        // Populate slots 0 and 5 (key ranges [0,159] and [160,255] as in the
        // paper's Figure 11 example).
        mm.chained_set(head, 0, 3000);
        mm.chained_set(head, 5, 3000);
        let (idx, _, _) = mm.resolve_chained(head, 110).unwrap();
        assert_eq!(idx, 0, "keys below 160 resolve to slot 0");
        let (idx, _, _) = mm.resolve_chained(head, 200).unwrap();
        assert_eq!(idx, 5, "keys >= 160 resolve to slot 5");
        let (idx, _, _) = mm.resolve_chained(head, 255).unwrap();
        assert_eq!(idx, 5);
        assert_eq!(mm.chained_valid_slots(head), vec![0, 5]);
        mm.free(head);
        let stats = mm.stats();
        assert_eq!(stats.heap_capacity_bytes, 0);
    }

    #[test]
    fn stats_track_allocated_and_empty_chunks() {
        let mut mm = MemoryManager::new();
        let mut hps = Vec::new();
        for _ in 0..100 {
            hps.push(mm.allocate(32).0);
        }
        let stats = mm.stats();
        let sb1 = &stats.superbins[1];
        assert_eq!(sb1.allocated_chunks, 100);
        // 100 chunks touch two 64-chunk slabs; only resident chunks count as
        // existing, so the empty tail is 128 - 100, not 4096 - 100.
        assert_eq!(sb1.empty_chunks, 2 * crate::bin::SLAB_CHUNKS as u64 - 100);
        assert_eq!(sb1.allocated_bytes, 3200);
        for hp in hps {
            mm.free(hp);
        }
    }

    #[test]
    fn footprint_counts_used_chunks_and_heap() {
        let mut mm = MemoryManager::new();
        let base = mm.footprint_bytes();
        let (hp, _) = mm.allocate(64);
        let grown = mm.footprint_bytes();
        assert!(grown >= base + 64, "used chunk must be counted");
        assert!(
            grown < base + (CHUNKS_PER_BIN * 64) as u64,
            "untouched chunks of the segment must not be counted"
        );
        let (ehp, cap) = mm.allocate(10_000);
        assert!(mm.footprint_bytes() >= grown + cap as u64);
        mm.free(hp);
        mm.free(ehp);
    }
}

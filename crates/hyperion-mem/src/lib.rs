//! # hyperion-mem
//!
//! Custom hierarchical memory manager for the Hyperion trie, reproducing the
//! design from *Hyperion: Building the largest in-memory search tree*
//! (SIGMOD 2019), Section 3.2.
//!
//! The manager acts as a middleware between the trie and the system allocator.
//! Small allocations of up to [`MAX_SMALL_ALLOCATION`] bytes are grouped by
//! size class and stored in large pre-allocated segments; larger allocations
//! are placed on the heap and referenced through *extended bins*.
//!
//! The hierarchy is:
//!
//! ```text
//! 64 superbins -> up to 2^14 metabins -> 256 bins -> 4,096 chunks
//! ```
//!
//! * Superbin `SB0` handles all requests larger than 2,016 bytes (extended
//!   bins); superbin `SBi`, `i in 1..=63`, provides chunks of `32 * i` bytes.
//! * Instead of 8-byte pointers, the manager hands out 5-byte
//!   [`HyperionPointer`]s (HP) containing the IDs of the respective hierarchy
//!   levels.  The trie only stores HPs, which completely decouples the data
//!   structure from virtual memory addresses.
//! * *Chained extended bins* are eight consecutive SB0 chunks owned by a
//!   single HP; they back vertically split containers and are resolved with a
//!   requested-key hint.
//!
//! The paper backs bins with anonymous `mmap` segments.  This implementation
//! backs them with large boxed slices, which preserves the allocation pattern
//! (one big segment per 4,096-chunk bin) without requiring libc bindings; see
//! DESIGN.md for the substitution rationale.

mod bin;
mod extended;
#[cfg(feature = "failpoints")]
pub mod failpoint;
mod manager;
mod metabin;
mod pointer;
mod stats;
mod superbin;

/// Evaluates a named failpoint site with deferred crash semantics (see the
/// `failpoint` module, present only under the `failpoints` feature); expands
/// to nothing unless the invoking crate enables that feature.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        $crate::failpoint::eval($name);
    }};
}

pub use extended::{ExtendedBin, CHAIN_LEN};
pub use manager::MemoryManager;
pub use pointer::HyperionPointer;
pub use stats::{MemoryStats, SuperbinStats};

/// Number of superbins at the top of the hierarchy.
pub const NUM_SUPERBINS: usize = 64;
/// Maximum number of metabins per superbin (14-bit ID).
pub const MAX_METABINS: usize = 1 << 14;
/// Number of bins per metabin (8-bit ID).
pub const BINS_PER_METABIN: usize = 256;
/// Number of chunks per bin (12-bit ID).
pub const CHUNKS_PER_BIN: usize = 4096;
/// Size increment between the small-allocation size classes.
pub const CHUNK_INCREMENT: usize = 32;
/// Largest request served from the small-allocation superbins (`63 * 32`).
pub const MAX_SMALL_ALLOCATION: usize = 2016;
/// Size of one extended-bin record (stores an extended Hyperion Pointer).
pub const EXTENDED_BIN_SIZE: usize = 16;

/// Returns the superbin ID responsible for a request of `size` bytes.
///
/// Requests of up to [`MAX_SMALL_ALLOCATION`] bytes map to superbins 1..=63
/// (chunk size `32 * id`); anything larger maps to superbin 0 (extended bins).
#[inline]
pub fn superbin_for_size(size: usize) -> u8 {
    if size == 0 || size > MAX_SMALL_ALLOCATION {
        0
    } else {
        (size.div_ceil(CHUNK_INCREMENT)) as u8
    }
}

/// Returns the chunk size provided by superbin `id` (16 bytes for SB0, which
/// stores extended-bin records rather than payload).
#[inline]
pub fn chunk_size_of_superbin(id: u8) -> usize {
    if id == 0 {
        EXTENDED_BIN_SIZE
    } else {
        CHUNK_INCREMENT * id as usize
    }
}

/// Rounds an extended (heap) allocation request up to the growth increment
/// used by extended bins: 256 B steps up to 8 KiB, 1 KiB steps up to 16 KiB,
/// 4 KiB steps beyond that.  These larger increments mitigate heap
/// fragmentation for fast-growing containers (paper Section 3.2).
#[inline]
pub fn extended_rounded_size(size: usize) -> usize {
    if size <= 8 * 1024 {
        size.div_ceil(256) * 256
    } else if size <= 16 * 1024 {
        size.div_ceil(1024) * 1024
    } else {
        size.div_ceil(4096) * 4096
    }
}

/// Gap-growth policy for the write path: the size to *request* when an
/// existing allocation must grow to hold `needed` bytes.
///
/// Within the small size classes, every class change is an
/// allocate-copy-free (chunks live in per-class segments), so growing a hot
/// container 32 bytes at a time costs one full copy per increment.  Adding
/// 12.5% headroom makes consecutive growths skip classes geometrically —
/// O(log n) copies over a container's lifetime instead of O(n / 32) — while
/// bounding the slack a growing container can hold to 1/8 of its size
/// (at most 252 bytes before the allocation leaves the small classes).
/// Freshly created containers still allocate exact-fit; only *growth* pays
/// the headroom.
#[inline]
pub fn growth_rounded_size(needed: usize) -> usize {
    needed + needed / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_headroom_is_one_eighth() {
        assert_eq!(growth_rounded_size(64), 72);
        assert_eq!(growth_rounded_size(1024), 1152);
        // Consecutive growths skip at least one 32-byte class beyond 256 B.
        let grown = growth_rounded_size(256);
        assert!(superbin_for_size(grown) > superbin_for_size(256));
    }

    #[test]
    fn superbin_mapping_matches_paper() {
        assert_eq!(superbin_for_size(1), 1);
        assert_eq!(superbin_for_size(32), 1);
        assert_eq!(superbin_for_size(33), 2);
        assert_eq!(superbin_for_size(64), 2);
        assert_eq!(superbin_for_size(2016), 63);
        assert_eq!(superbin_for_size(2017), 0);
        assert_eq!(superbin_for_size(1 << 20), 0);
    }

    #[test]
    fn chunk_sizes_are_multiples_of_32() {
        for id in 1..64u8 {
            assert_eq!(chunk_size_of_superbin(id), 32 * id as usize);
        }
        assert_eq!(chunk_size_of_superbin(0), EXTENDED_BIN_SIZE);
    }

    #[test]
    fn extended_rounding_uses_paper_increments() {
        assert_eq!(extended_rounded_size(2017), 2048);
        assert_eq!(extended_rounded_size(2048), 2048);
        assert_eq!(extended_rounded_size(8 * 1024), 8192);
        assert_eq!(extended_rounded_size(8 * 1024 + 1), 9 * 1024);
        assert_eq!(extended_rounded_size(16 * 1024 + 1), 20 * 1024);
        assert_eq!(extended_rounded_size(100_000), 102_400);
    }

    #[test]
    fn size_roundtrip_fits_in_superbin() {
        for size in 1..=MAX_SMALL_ALLOCATION {
            let sb = superbin_for_size(size);
            assert!(chunk_size_of_superbin(sb) >= size, "size {size} sb {sb}");
            assert!(chunk_size_of_superbin(sb) < size + CHUNK_INCREMENT);
        }
    }
}

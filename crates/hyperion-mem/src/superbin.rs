//! A *superbin*: the top level of the hierarchy, one per size class.
//!
//! Superbins keep a short sorted cache of non-full metabin IDs so a free chunk
//! can be found without scanning all metabins (the paper keeps a sorted list
//! of 16 non-full metabin IDs for the same reason).

use crate::metabin::Metabin;
use crate::{chunk_size_of_superbin, MAX_METABINS};

/// Maximum number of non-full metabin IDs cached per superbin.
const NONFULL_CACHE_LEN: usize = 16;

/// One superbin managing metabins of a single chunk size class.
pub struct Superbin {
    id: u8,
    chunk_size: usize,
    metabins: Vec<Option<Box<Metabin>>>,
    /// Sorted cache of metabin IDs known to have free chunks.
    nonfull_cache: Vec<u16>,
    /// Next metabin index that has never been initialised.
    next_fresh: u16,
}

impl Superbin {
    /// Creates an empty superbin for the given ID.
    pub fn new(id: u8) -> Self {
        Superbin {
            id,
            chunk_size: chunk_size_of_superbin(id),
            metabins: Vec::new(),
            nonfull_cache: Vec::new(),
            next_fresh: 0,
        }
    }

    /// Chunk size served by this superbin.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Superbin ID.
    #[inline]
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Allocates one chunk, returning `(metabin, bin, chunk)`.
    pub fn allocate(&mut self) -> Option<(u16, u8, u16)> {
        loop {
            let mb_id = match self.nonfull_cache.first().copied() {
                Some(id) => id,
                None => self.init_fresh_metabin()?,
            };
            let chunk_size = self.chunk_size;
            let mb = self.metabin_mut(mb_id);
            match mb.allocate(chunk_size) {
                Some((bin, chunk)) => {
                    if mb.is_full() {
                        self.cache_remove(mb_id);
                    }
                    return Some((mb_id, bin, chunk));
                }
                None => {
                    self.cache_remove(mb_id);
                }
            }
        }
    }

    /// Allocates `count` consecutive chunks within one bin,
    /// returning `(metabin, bin, first chunk)`.
    pub fn allocate_consecutive(&mut self, count: usize) -> Option<(u16, u8, u16)> {
        let chunk_size = self.chunk_size;
        // Try cached non-full metabins first, then a fresh one.
        let candidates: Vec<u16> = self.nonfull_cache.clone();
        for mb_id in candidates {
            let mb = self.metabin_mut(mb_id);
            if let Some((bin, chunk)) = mb.allocate_consecutive(count, chunk_size) {
                if mb.is_full() {
                    self.cache_remove(mb_id);
                }
                return Some((mb_id, bin, chunk));
            }
        }
        let mb_id = self.init_fresh_metabin()?;
        let mb = self.metabin_mut(mb_id);
        let (bin, chunk) = mb.allocate_consecutive(count, chunk_size)?;
        Some((mb_id, bin, chunk))
    }

    /// Frees one chunk.
    pub fn free(&mut self, metabin: u16, bin: u8, chunk: u16) {
        let chunk_size = self.chunk_size;
        let mb = self.metabin_mut(metabin);
        mb.free(bin, chunk, chunk_size);
        self.cache_insert(metabin);
    }

    /// Immutable access to a metabin (panics if it was never initialised).
    pub fn metabin(&self, id: u16) -> &Metabin {
        self.metabins[id as usize]
            .as_ref()
            .expect("access to uninitialised metabin")
    }

    /// Mutable access to a metabin (panics if it was never initialised).
    pub fn metabin_mut(&mut self, id: u16) -> &mut Metabin {
        self.metabins[id as usize]
            .as_mut()
            .expect("access to uninitialised metabin")
    }

    /// Iterates over initialised metabins (used by statistics collection).
    pub fn metabins(&self) -> impl Iterator<Item = &Metabin> {
        self.metabins.iter().filter_map(|m| m.as_deref())
    }

    /// Number of metabins that have been initialised.
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn initialised_metabins(&self) -> usize {
        self.metabins.iter().filter(|m| m.is_some()).count()
    }

    fn init_fresh_metabin(&mut self) -> Option<u16> {
        if (self.next_fresh as usize) >= MAX_METABINS {
            return None;
        }
        let id = self.next_fresh;
        self.next_fresh += 1;
        if self.metabins.len() <= id as usize {
            self.metabins.resize_with(id as usize + 1, || None);
        }
        self.metabins[id as usize] = Some(Box::new(Metabin::new()));
        self.cache_insert(id);
        Some(id)
    }

    fn cache_insert(&mut self, id: u16) {
        if self.nonfull_cache.contains(&id) {
            return;
        }
        if self.nonfull_cache.len() < NONFULL_CACHE_LEN {
            self.nonfull_cache.push(id);
            self.nonfull_cache.sort_unstable();
        } else if let Some(last) = self.nonfull_cache.last().copied() {
            if id < last {
                self.nonfull_cache.pop();
                self.nonfull_cache.push(id);
                self.nonfull_cache.sort_unstable();
            }
        }
    }

    fn cache_remove(&mut self, id: u16) {
        self.nonfull_cache.retain(|&x| x != id);
        // Refill the cache from known metabins if it ran dry.
        if self.nonfull_cache.is_empty() {
            for (i, mb) in self.metabins.iter().enumerate() {
                if let Some(mb) = mb {
                    if !mb.is_full() {
                        self.nonfull_cache.push(i as u16);
                        if self.nonfull_cache.len() == NONFULL_CACHE_LEN {
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_allocation_initialises_metabin_zero() {
        let mut sb = Superbin::new(1);
        let (mb, bin, chunk) = sb.allocate().unwrap();
        assert_eq!((mb, bin, chunk), (0, 0, 0));
        assert_eq!(sb.initialised_metabins(), 1);
    }

    #[test]
    fn free_then_allocate_reuses_slot() {
        let mut sb = Superbin::new(2);
        let (mb, bin, chunk) = sb.allocate().unwrap();
        let _second = sb.allocate().unwrap();
        sb.free(mb, bin, chunk);
        let again = sb.allocate().unwrap();
        assert_eq!(again, (mb, bin, chunk));
    }

    #[test]
    fn chunk_size_matches_id() {
        assert_eq!(Superbin::new(3).chunk_size(), 96);
        assert_eq!(Superbin::new(0).chunk_size(), crate::EXTENDED_BIN_SIZE);
    }

    #[test]
    fn consecutive_allocation_works_from_superbin() {
        let mut sb = Superbin::new(0);
        let (_, _, start) = sb.allocate_consecutive(8).unwrap();
        // Allocate again and make sure the ranges do not overlap.
        let (_, _, start2) = sb.allocate_consecutive(8).unwrap();
        assert!(start2 >= start + 8 || start >= start2 + 8);
    }
}

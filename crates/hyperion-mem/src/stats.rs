//! Memory-usage statistics, mirroring the per-superbin breakdown the paper
//! plots in Figures 14 and 16 (allocated vs. empty chunks per superbin).

/// Statistics for one superbin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperbinStats {
    /// Superbin ID (0..64).
    pub superbin: u8,
    /// Chunk size of this superbin in bytes.
    pub chunk_size: usize,
    /// Chunks currently handed out.
    pub allocated_chunks: u64,
    /// Chunks that exist in materialised bin segments but are unused
    /// (external fragmentation, e.g. at the initialisation of a new bin).
    pub empty_chunks: u64,
    /// Bytes of memory behind allocated chunks.  For superbin 0 this includes
    /// the heap capacity of the extended allocations.
    pub allocated_bytes: u64,
    /// Bytes of memory behind empty chunks.
    pub empty_bytes: u64,
}

/// Aggregate statistics of a [`crate::MemoryManager`].
#[derive(Clone, Debug, Default)]
pub struct MemoryStats {
    /// Per-superbin breakdown (index = superbin ID).
    pub superbins: Vec<SuperbinStats>,
    /// Total bytes requested from the heap through extended bins.
    pub heap_requested_bytes: u64,
    /// Total heap capacity held by extended bins (requested + over-allocation).
    pub heap_capacity_bytes: u64,
    /// Number of bin segments that have been materialised (each corresponds to
    /// one "kernel trap" / mmap in the paper's design).
    pub materialised_segments: u64,
    /// Lifetime number of allocation requests served.
    pub total_allocations: u64,
    /// Lifetime number of free operations served.
    pub total_frees: u64,
}

impl MemoryStats {
    /// Total number of chunks currently allocated across all superbins.
    pub fn allocated_chunks(&self) -> u64 {
        self.superbins.iter().map(|s| s.allocated_chunks).sum()
    }

    /// Total number of empty (fragmented) chunks across all superbins.
    pub fn empty_chunks(&self) -> u64 {
        self.superbins.iter().map(|s| s.empty_chunks).sum()
    }

    /// Total bytes behind allocated chunks.
    pub fn allocated_bytes(&self) -> u64 {
        self.superbins.iter().map(|s| s.allocated_bytes).sum()
    }

    /// Total bytes behind empty chunks (external fragmentation).
    pub fn empty_bytes(&self) -> u64 {
        self.superbins.iter().map(|s| s.empty_bytes).sum()
    }

    /// Total logical footprint: allocated + empty bytes plus the metadata the
    /// manager itself needs (bin bitmaps etc. are a small constant per bin and
    /// already included in the segment accounting approximation).
    pub fn total_bytes(&self) -> u64 {
        self.allocated_bytes() + self.empty_bytes()
    }

    /// Internal fragmentation estimate: bytes held by allocated chunks beyond
    /// what was requested.  Only meaningful when the caller tracks requested
    /// sizes itself (the trie does, via container `size` fields).
    pub fn over_allocation_bytes(&self) -> u64 {
        self.heap_capacity_bytes
            .saturating_sub(self.heap_requested_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_superbins() {
        let stats = MemoryStats {
            superbins: vec![
                SuperbinStats {
                    superbin: 1,
                    chunk_size: 32,
                    allocated_chunks: 10,
                    empty_chunks: 2,
                    allocated_bytes: 320,
                    empty_bytes: 64,
                },
                SuperbinStats {
                    superbin: 2,
                    chunk_size: 64,
                    allocated_chunks: 5,
                    empty_chunks: 1,
                    allocated_bytes: 320,
                    empty_bytes: 64,
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.allocated_chunks(), 15);
        assert_eq!(stats.empty_chunks(), 3);
        assert_eq!(stats.allocated_bytes(), 640);
        assert_eq!(stats.empty_bytes(), 128);
        assert_eq!(stats.total_bytes(), 768);
    }
}

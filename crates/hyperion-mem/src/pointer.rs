//! The 5-byte Hyperion Pointer (HP).
//!
//! The trie never stores virtual addresses.  Instead it stores a 40-bit
//! identifier naming the hierarchy coordinates of a chunk:
//!
//! ```text
//! bits  0..6   superbin  (6 bits,  64 superbins)
//! bits  6..20  metabin   (14 bits, 16,384 metabins per superbin)
//! bits 20..28  bin       (8 bits,  256 bins per metabin)
//! bits 28..40  chunk     (12 bits, 4,096 chunks per bin)
//! ```
//!
//! Replacing 8-byte pointers with 5-byte HPs saves three bytes per child
//! reference inside the trie and lets the memory manager relocate chunks at
//! will.

/// A 5-byte handle identifying one chunk in the memory-manager hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HyperionPointer {
    superbin: u8,
    metabin: u16,
    bin: u8,
    chunk: u16,
}

impl HyperionPointer {
    /// Size of the encoded pointer in bytes.
    pub const ENCODED_LEN: usize = 5;

    /// The null pointer (all coordinates zero).  The manager never hands out
    /// this coordinate, so it can be used as a sentinel inside zero-initialised
    /// container memory.
    pub const NULL: HyperionPointer = HyperionPointer {
        superbin: 0,
        metabin: 0,
        bin: 0,
        chunk: 0,
    };

    /// Creates a pointer from its hierarchy coordinates.
    ///
    /// # Panics
    /// Panics if any coordinate exceeds its bit width.
    pub fn new(superbin: u8, metabin: u16, bin: u8, chunk: u16) -> Self {
        assert!(superbin < 64, "superbin id out of range");
        assert!(
            (metabin as usize) < crate::MAX_METABINS,
            "metabin id out of range"
        );
        assert!(
            (chunk as usize) < crate::CHUNKS_PER_BIN,
            "chunk id out of range"
        );
        HyperionPointer {
            superbin,
            metabin,
            bin,
            chunk,
        }
    }

    /// Superbin coordinate (6 bits).
    #[inline]
    pub fn superbin(&self) -> u8 {
        self.superbin
    }

    /// Metabin coordinate (14 bits).
    #[inline]
    pub fn metabin(&self) -> u16 {
        self.metabin
    }

    /// Bin coordinate (8 bits).
    #[inline]
    pub fn bin(&self) -> u8 {
        self.bin
    }

    /// Chunk coordinate (12 bits).
    #[inline]
    pub fn chunk(&self) -> u16 {
        self.chunk
    }

    /// Returns `true` if this is the null sentinel.
    #[inline]
    pub fn is_null(&self) -> bool {
        *self == Self::NULL
    }

    /// Encodes the pointer into its 5-byte little-endian representation.
    #[inline]
    pub fn to_bytes(&self) -> [u8; 5] {
        let v: u64 = (self.superbin as u64)
            | ((self.metabin as u64) << 6)
            | ((self.bin as u64) << 20)
            | ((self.chunk as u64) << 28);
        let le = v.to_le_bytes();
        [le[0], le[1], le[2], le[3], le[4]]
    }

    /// Decodes a pointer from its 5-byte little-endian representation.
    #[inline]
    pub fn from_bytes(bytes: [u8; 5]) -> Self {
        let mut le = [0u8; 8];
        le[..5].copy_from_slice(&bytes);
        let v = u64::from_le_bytes(le);
        HyperionPointer {
            superbin: (v & 0x3f) as u8,
            metabin: ((v >> 6) & 0x3fff) as u16,
            bin: ((v >> 20) & 0xff) as u8,
            chunk: ((v >> 28) & 0xfff) as u16,
        }
    }
}

impl Default for HyperionPointer {
    fn default() -> Self {
        Self::NULL
    }
}

impl std::fmt::Debug for HyperionPointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HP(sb={}, mb={}, bin={}, chunk={})",
            self.superbin, self.metabin, self.bin, self.chunk
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_fields() {
        let hp = HyperionPointer::new(63, 16383, 255, 4095);
        let bytes = hp.to_bytes();
        assert_eq!(HyperionPointer::from_bytes(bytes), hp);
    }

    #[test]
    fn roundtrip_small_values() {
        let hp = HyperionPointer::new(1, 2, 3, 4);
        assert_eq!(HyperionPointer::from_bytes(hp.to_bytes()), hp);
        assert_eq!(hp.superbin(), 1);
        assert_eq!(hp.metabin(), 2);
        assert_eq!(hp.bin(), 3);
        assert_eq!(hp.chunk(), 4);
    }

    #[test]
    fn null_is_all_zero_bytes() {
        assert_eq!(HyperionPointer::NULL.to_bytes(), [0u8; 5]);
        assert!(HyperionPointer::from_bytes([0u8; 5]).is_null());
    }

    #[test]
    fn encoding_is_forty_bits() {
        // The top 24 bits of the logical u64 must never be set.
        let hp = HyperionPointer::new(63, 16383, 255, 4095);
        let bytes = hp.to_bytes();
        let mut le = [0u8; 8];
        le[..5].copy_from_slice(&bytes);
        let v = u64::from_le_bytes(le);
        assert!(v < (1u64 << 40));
    }

    #[test]
    #[should_panic(expected = "superbin id out of range")]
    fn rejects_out_of_range_superbin() {
        let _ = HyperionPointer::new(64, 0, 0, 0);
    }
}

//! A *metabin*: 256 bins plus a non-full-bin bitmap for fast allocation.

use crate::bin::Bin;
use crate::{BINS_PER_METABIN, CHUNKS_PER_BIN};

/// One metabin grouping 256 bins of the same size class.
pub struct Metabin {
    bins: Vec<Bin>,
    /// Bit set = bin has at least one free chunk.
    nonfull: [u64; BINS_PER_METABIN / 64],
    used_chunks: u32,
}

impl Metabin {
    /// Creates a metabin with 256 empty bins.
    pub fn new() -> Self {
        let mut bins = Vec::with_capacity(BINS_PER_METABIN);
        bins.resize_with(BINS_PER_METABIN, Bin::new);
        Metabin {
            bins,
            nonfull: [u64::MAX; BINS_PER_METABIN / 64],
            used_chunks: 0,
        }
    }

    /// Number of chunks in use across all bins.
    #[inline]
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn used_chunks(&self) -> u32 {
        self.used_chunks
    }

    /// `true` if every chunk of every bin is in use.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.used_chunks as usize == BINS_PER_METABIN * CHUNKS_PER_BIN
    }

    /// Access a bin by index.
    #[inline]
    pub fn bin(&self, idx: u8) -> &Bin {
        &self.bins[idx as usize]
    }

    /// Mutable access to a bin by index.
    #[inline]
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn bin_mut(&mut self, idx: u8) -> &mut Bin {
        &mut self.bins[idx as usize]
    }

    /// Allocates one chunk from the first non-full bin.
    /// Returns `(bin index, chunk index)`.
    pub fn allocate(&mut self, chunk_size: usize) -> Option<(u8, u16)> {
        loop {
            let bin_idx = self.first_nonfull_bin()?;
            let bin = &mut self.bins[bin_idx as usize];
            match bin.allocate(chunk_size) {
                Some(chunk) => {
                    self.used_chunks += 1;
                    if bin.is_full() {
                        self.mark_full(bin_idx);
                    }
                    return Some((bin_idx, chunk));
                }
                None => {
                    // Bitmap was stale; repair it and retry.
                    self.mark_full(bin_idx);
                }
            }
        }
    }

    /// Allocates `count` consecutive chunks inside one bin.
    /// Returns `(bin index, first chunk index)`.
    pub fn allocate_consecutive(&mut self, count: usize, chunk_size: usize) -> Option<(u8, u16)> {
        for bin_idx in 0..BINS_PER_METABIN {
            let bin = &mut self.bins[bin_idx];
            if bin.is_full() {
                continue;
            }
            if let Some(start) = bin.allocate_consecutive(count, chunk_size) {
                self.used_chunks += count as u32;
                if bin.is_full() {
                    self.mark_full(bin_idx as u8);
                }
                return Some((bin_idx as u8, start));
            }
        }
        None
    }

    /// Frees one chunk.
    pub fn free(&mut self, bin_idx: u8, chunk: u16, chunk_size: usize) {
        let bin = &mut self.bins[bin_idx as usize];
        bin.free(chunk, chunk_size);
        self.used_chunks -= 1;
        self.mark_nonfull(bin_idx);
    }

    fn first_nonfull_bin(&self) -> Option<u8> {
        for (w, word) in self.nonfull.iter().enumerate() {
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                return Some((w * 64 + bit) as u8);
            }
        }
        None
    }

    fn mark_full(&mut self, bin_idx: u8) {
        let idx = bin_idx as usize;
        self.nonfull[idx / 64] &= !(1u64 << (idx % 64));
    }

    fn mark_nonfull(&mut self, bin_idx: u8) {
        let idx = bin_idx as usize;
        self.nonfull[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Iterates over all bins (used by the statistics collector).
    pub fn bins(&self) -> impl Iterator<Item = &Bin> {
        self.bins.iter()
    }
}

impl Default for Metabin {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_prefers_first_bin() {
        let mut mb = Metabin::new();
        let (bin, chunk) = mb.allocate(32).unwrap();
        assert_eq!(bin, 0);
        assert_eq!(chunk, 0);
        assert_eq!(mb.used_chunks(), 1);
    }

    #[test]
    fn spills_to_second_bin_when_first_full() {
        let mut mb = Metabin::new();
        for _ in 0..CHUNKS_PER_BIN {
            let (bin, _) = mb.allocate(16).unwrap();
            assert_eq!(bin, 0);
        }
        let (bin, chunk) = mb.allocate(16).unwrap();
        assert_eq!(bin, 1);
        assert_eq!(chunk, 0);
    }

    #[test]
    fn free_makes_bin_nonfull_again() {
        let mut mb = Metabin::new();
        for _ in 0..CHUNKS_PER_BIN {
            mb.allocate(16).unwrap();
        }
        mb.free(0, 7, 16);
        let (bin, chunk) = mb.allocate(16).unwrap();
        assert_eq!((bin, chunk), (0, 7));
    }

    #[test]
    fn consecutive_allocation_within_one_bin() {
        let mut mb = Metabin::new();
        let (bin, start) = mb.allocate_consecutive(8, 16).unwrap();
        assert_eq!(bin, 0);
        for i in 0..8 {
            assert!(mb.bin(bin).is_allocated(start + i));
        }
        assert_eq!(mb.used_chunks(), 8);
    }
}

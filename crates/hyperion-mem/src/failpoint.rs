//! Deterministic fault injection: named failpoint sites with seeded policies.
//!
//! Only compiled under the `failpoints` cargo feature; release builds carry
//! zero code or data for it (the [`fail_point!`](crate::fail_point) macro
//! expands to nothing).  The registry is process-global and std-only: a
//! mutexed map of named sites, each holding a [`Policy`] and a per-site
//! splitmix64 stream derived from the global seed and the site name, so a
//! fixed seed reproduces the same trip schedule per site regardless of which
//! other sites are armed.
//!
//! # Actions and the crash-consistency contract
//!
//! A site that trips executes its policy's [`Action`]:
//!
//! * [`Action::Sleep`] fires **inline** at the site — it widens race windows
//!   (seqlock validation, queue backpressure) but never tears state.
//! * [`Action::Panic`], [`Action::AllocFail`] and [`Action::Error`] are
//!   **deferred**: the site records a pending trip and the unwind is raised
//!   at the next *crash-consistent boundary* — a [`safe_point`] between
//!   top-level container visits, or the end of the mutating operation (the
//!   [`OpGuard`] drop).  Hyperion's write engine keeps deferred
//!   Hyperion-Pointer write-backs in flight mid-visit, so an arbitrary
//!   mid-site unwind could leave a parent pointing at freed memory; deferring
//!   to the visit boundary models a fail-stop crash at a point where the trie
//!   is structurally consistent while the *schedule* of crashes still tracks
//!   real structural events (splices, ejections, splits).  Consequence: an
//!   operation that reports an injected failure may have partially or fully
//!   applied — exactly the contract of a timed-out RPC.
//!
//! A pending crash armed outside any operation (e.g. a shortcut publish
//! reached from the lock-free read path) is dropped and counted in
//! [`suppressed_trips`] instead — reads stay side-effect free.
//!
//! The payload distinguishes simulated faults: [`Action::Panic`] raises a
//! plain panic (a simulated writer crash — the shard mutex poisons and the
//! seqlock stays odd until recovery), while [`Action::AllocFail`] /
//! [`Action::Error`] raise the typed markers [`AllocFailure`] /
//! [`InjectedError`], which `HyperionDb` catches at the shard boundary and
//! converts into typed errors after re-quiescing the shard.
//!
//! # Usage
//!
//! ```ignore
//! use hyperion_core::failpoint::{self, Action, Policy};
//!
//! failpoint::set_seed(42);
//! failpoint::arm("write.split", Policy::new(Action::Panic).chance(1, 64));
//! failpoint::arm("mem.alloc", Policy::new(Action::AllocFail).after(1000).max_trips(5));
//! // ... run workload; HyperionDb reports AllocFailed / poisons + recovers ...
//! failpoint::disarm_all();
//! assert!(failpoint::total_trips() > 0);
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when its policy fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Simulated writer crash: a plain panic raised at the next
    /// crash-consistent boundary.
    Panic,
    /// Simulated transient fault: raises [`InjectedError`], converted by
    /// `HyperionDb` into a typed retryable error.
    Error,
    /// Simulated OOM: raises [`AllocFailure`], converted by `HyperionDb`
    /// into `HyperionError::AllocFailed`.
    AllocFail,
    /// Sleeps this many milliseconds inline at the site (race widening).
    Sleep(u64),
}

/// When and how often a site trips.  Built fluently:
/// `Policy::new(Action::Panic).after(100).chance(1, 64).max_trips(3)`.
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    action: Action,
    /// Evaluations to skip before the site can trip ("delay N ops").
    after: u64,
    /// Trip probability as `num / den` per eligible evaluation.
    chance: (u32, u32),
    /// Trip budget; 0 means unlimited.
    max_trips: u64,
}

impl Policy {
    /// A policy that trips on every eligible evaluation.
    pub fn new(action: Action) -> Policy {
        Policy {
            action,
            after: 0,
            chance: (1, 1),
            max_trips: 0,
        }
    }

    /// Skips the first `n` evaluations (deterministic "arm after N ops").
    pub fn after(mut self, n: u64) -> Policy {
        self.after = n;
        self
    }

    /// Trips with probability `num / den` (drawn from the site's seeded
    /// splitmix64 stream).  `den == 0` is treated as `1`.
    pub fn chance(mut self, num: u32, den: u32) -> Policy {
        self.chance = (num, den.max(1));
        self
    }

    /// Caps the number of trips; 0 means unlimited.
    pub fn max_trips(mut self, n: u64) -> Policy {
        self.max_trips = n;
        self
    }
}

/// Panic payload of [`Action::AllocFail`]: a simulated allocation failure.
#[derive(Debug)]
pub struct AllocFailure {
    /// The site that raised it.
    pub site: &'static str,
}

/// Panic payload of [`Action::Error`]: a simulated transient fault.
#[derive(Debug)]
pub struct InjectedError {
    /// The site that raised it.
    pub site: &'static str,
}

struct SiteState {
    policy: Policy,
    rng: u64,
    evals: u64,
    trips: u64,
}

struct Registry {
    sites: Mutex<HashMap<&'static str, SiteState>>,
    /// Armed-site count mirrored outside the mutex: the `eval` fast path
    /// returns without locking while nothing is armed.
    armed: AtomicU64,
    seed: AtomicU64,
    total_trips: AtomicU64,
    suppressed: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sites: Mutex::new(HashMap::new()),
        armed: AtomicU64::new(0),
        seed: AtomicU64::new(0x68797065_72696f6e), // "hyperion"
        total_trips: AtomicU64::new(0),
        suppressed: AtomicU64::new(0),
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Sets the global seed.  Affects sites armed afterwards (each site's stream
/// is seeded at [`arm`] time from `seed ^ fnv1a(site)`).
pub fn set_seed(seed: u64) {
    registry().seed.store(seed, Ordering::Relaxed);
}

/// Arms (or re-arms, resetting counters) the named site.
pub fn arm(site: &'static str, policy: Policy) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|p| p.into_inner());
    let rng = reg.seed.load(Ordering::Relaxed) ^ fnv1a(site);
    if sites
        .insert(
            site,
            SiteState {
                policy,
                rng,
                evals: 0,
                trips: 0,
            },
        )
        .is_none()
    {
        reg.armed.fetch_add(1, Ordering::Release);
    }
}

/// Disarms the named site (its trip count is forgotten; [`total_trips`] is
/// not).
pub fn disarm(site: &str) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|p| p.into_inner());
    if sites.remove(site).is_some() {
        reg.armed.fetch_sub(1, Ordering::Release);
    }
}

/// Disarms every site and clears any pending deferred trip on this thread.
pub fn disarm_all() {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|p| p.into_inner());
    reg.armed.fetch_sub(sites.len() as u64, Ordering::Release);
    sites.clear();
    PENDING.with(|p| p.set(None));
}

/// Trips recorded for the named site since it was (re-)armed.
pub fn trips(site: &str) -> u64 {
    let reg = registry();
    let sites = reg.sites.lock().unwrap_or_else(|p| p.into_inner());
    sites.get(site).map_or(0, |s| s.trips)
}

/// Total trips across all sites for the process lifetime (survives
/// [`disarm_all`]; exposed by the server's STATS verb).
pub fn total_trips() -> u64 {
    registry().total_trips.load(Ordering::Relaxed)
}

/// Crash trips dropped because they were armed outside any mutating
/// operation (e.g. from the lock-free read path).
pub fn suppressed_trips() -> u64 {
    registry().suppressed.load(Ordering::Relaxed)
}

#[derive(Clone, Copy)]
struct Pending {
    site: &'static str,
    action: Action,
}

thread_local! {
    /// Deferred crash trip, executed at the next crash-consistent boundary.
    static PENDING: Cell<Option<Pending>> = const { Cell::new(None) };
    /// Nesting depth of mutating operations on this thread ([`OpGuard`]).
    static OP_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Evaluates the site's policy, returning the action if it trips.
fn should_trip(site: &'static str) -> Option<Action> {
    let reg = registry();
    if reg.armed.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut sites = reg.sites.lock().unwrap_or_else(|p| p.into_inner());
    let st = sites.get_mut(site)?;
    st.evals += 1;
    if st.evals <= st.policy.after {
        return None;
    }
    if st.policy.max_trips != 0 && st.trips >= st.policy.max_trips {
        return None;
    }
    let (num, den) = st.policy.chance;
    if den > 1 && splitmix64(&mut st.rng) % den as u64 >= num as u64 {
        return None;
    }
    st.trips += 1;
    reg.total_trips.fetch_add(1, Ordering::Relaxed);
    Some(st.policy.action)
}

fn execute(site: &'static str, action: Action) {
    match action {
        Action::Sleep(ms) => std::thread::sleep(Duration::from_millis(ms)),
        Action::Panic => panic!("failpoint '{site}': injected crash"),
        Action::AllocFail => std::panic::panic_any(AllocFailure { site }),
        Action::Error => std::panic::panic_any(InjectedError { site }),
    }
}

/// Site hook with *deferred* crash semantics (see the module docs); what the
/// [`fail_point!`](crate::fail_point) macro expands to.
pub fn eval(site: &'static str) {
    let Some(action) = should_trip(site) else {
        return;
    };
    if let Action::Sleep(_) = action {
        execute(site, action);
        return;
    }
    if OP_DEPTH.with(|d| d.get()) == 0 {
        registry().suppressed.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // First pending trip wins; a second one before the boundary is dropped.
    PENDING.with(|p| {
        if p.get().is_none() {
            p.set(Some(Pending { site, action }));
        }
    });
}

/// Site hook with *immediate* crash semantics — only sound at sites where
/// nothing has been mutated yet (the mutation-span entry).
pub fn eval_immediate(site: &'static str) {
    if let Some(action) = should_trip(site) {
        execute(site, action);
    }
}

/// Crash-consistent boundary: executes the pending deferred trip, if any.
/// The write engine calls this between top-level container visits.
pub fn safe_point() {
    if let Some(p) = PENDING.with(|c| c.take()) {
        execute(p.site, p.action);
    }
}

/// Marks this thread as inside a mutating operation for the guard's
/// lifetime.  On the outermost drop, a still-pending deferred trip fires —
/// the end of the operation is always a crash-consistent boundary.
pub struct OpGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens an [`OpGuard`].  Guards nest (batch loops over point ops).
pub fn op_guard() -> OpGuard {
    OP_DEPTH.with(|d| d.set(d.get() + 1));
    OpGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        let depth = OP_DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        // Never initiate a second panic while unwinding (that would abort).
        if depth == 0 && !std::thread::panicking() {
            safe_point();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Registry state is process-global; serialise the tests touching it.
    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn after_and_max_trips_bound_the_schedule() {
        let _gate = lock_tests();
        disarm_all();
        arm("t.bounds", Policy::new(Action::Panic).after(2).max_trips(1));
        let count_trips = || {
            let _op = op_guard();
            eval("t.bounds");
            PENDING.with(|p| p.take()).is_some()
        };
        assert!(!count_trips());
        assert!(!count_trips());
        assert!(count_trips());
        assert!(!count_trips(), "max_trips exhausted");
        assert_eq!(trips("t.bounds"), 1);
        disarm_all();
    }

    #[test]
    fn chance_is_seed_deterministic() {
        let _gate = lock_tests();
        disarm_all();
        let schedule = |seed| {
            set_seed(seed);
            arm("t.chance", Policy::new(Action::Error).chance(1, 4));
            let _op = op_guard();
            let s: Vec<bool> = (0..64)
                .map(|_| {
                    eval("t.chance");
                    PENDING.with(|p| p.take()).is_some()
                })
                .collect();
            disarm("t.chance");
            s
        };
        let a = schedule(7);
        let b = schedule(7);
        let c = schedule(8);
        assert_eq!(a, b);
        assert!(a.iter().any(|&t| t), "1/4 chance must trip within 64 evals");
        assert!(a.iter().any(|&t| !t));
        assert_ne!(a, c, "different seeds should give different schedules");
        disarm_all();
    }

    #[test]
    fn crash_trips_defer_to_safe_points_and_op_end() {
        let _gate = lock_tests();
        disarm_all();
        arm("t.defer", Policy::new(Action::AllocFail).max_trips(2));
        // Deferred: the site itself must not unwind.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _op = op_guard();
            eval("t.defer");
            safe_point();
        }));
        let payload = caught.expect_err("safe_point must raise the pending trip");
        assert_eq!(
            payload.downcast_ref::<AllocFailure>().unwrap().site,
            "t.defer"
        );
        // No explicit safe point: the outermost OpGuard drop fires it.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _op = op_guard();
            eval("t.defer");
        }));
        assert!(caught.is_err(), "op end must raise the pending trip");
        disarm_all();
    }

    #[test]
    fn crash_outside_an_op_is_suppressed() {
        let _gate = lock_tests();
        disarm_all();
        arm("t.read", Policy::new(Action::Panic));
        let before = suppressed_trips();
        eval("t.read"); // no OpGuard on this thread
        assert_eq!(suppressed_trips(), before + 1);
        safe_point(); // nothing pending: must not panic
        disarm_all();
    }
}

//! Extended bins: heap-backed allocations larger than 2,016 bytes.
//!
//! Superbin `SB0` does not hand out payload chunks directly.  Its 16-byte
//! chunks each store an *extended Hyperion Pointer* (eHP): a regular heap
//! pointer, the requested size, the amount of over-allocated memory within the
//! allocation and two bytes of housekeeping flags.  Because the eHP record --
//! and therefore the 5-byte HP naming it -- stays put while the heap block can
//! be reallocated, growing an extended container never changes its HP.
//!
//! *Chained extended bins* (CEB) are eight consecutive SB0 chunks that are
//! allocated and freed atomically; a single HP owns all eight.  They back
//! vertically split containers: the requested T-node key selects which of the
//! eight slots to resolve (paper Section 3.3, "Splitting Containers").

use std::alloc::{alloc_zeroed, dealloc, realloc, Layout};

/// Number of slots in a chained extended bin.
pub const CHAIN_LEN: usize = 8;

const FLAG_VALID: u16 = 1 << 0;
const FLAG_CHAIN_HEAD: u16 = 1 << 1;
const FLAG_CHAIN_MEMBER: u16 = 1 << 2;

/// In-memory representation of one extended-bin record (eHP).
///
/// The paper packs this into the 16-byte SB0 chunk itself; this implementation
/// keeps the records in a side table indexed by the same (metabin, bin, chunk)
/// coordinates, which has identical space accounting (16 bytes per record) but
/// lets the heap pointer be managed safely.
#[derive(Clone, Copy, Debug)]
pub struct ExtendedBin {
    /// Heap pointer to the payload (null when the slot is void).
    ptr: *mut u8,
    /// Size the caller requested.
    requested: u32,
    /// Over-allocated bytes beyond the request (capacity = requested + over).
    over: u16,
    /// Housekeeping flags.
    flags: u16,
}

// Safety: the heap blocks are exclusively owned by the memory manager and
// only ever accessed through it; the raw pointer is an owning pointer.
unsafe impl Send for ExtendedBin {}

impl ExtendedBin {
    /// An empty (void) record.
    pub const EMPTY: ExtendedBin = ExtendedBin {
        ptr: std::ptr::null_mut(),
        requested: 0,
        over: 0,
        flags: 0,
    };

    /// Allocates a zeroed heap block of at least `size` bytes, rounded to the
    /// extended-bin growth increment.
    pub fn allocate(size: usize) -> Self {
        let capacity = crate::extended_rounded_size(size.max(1));
        let layout = Layout::from_size_align(capacity, 8).expect("invalid layout");
        // Safety: capacity is non-zero and the layout is valid.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "extended bin heap allocation failed");
        ExtendedBin {
            ptr,
            requested: size as u32,
            over: (capacity - size) as u16,
            flags: FLAG_VALID,
        }
    }

    /// Grows (or shrinks) the heap block to hold at least `new_size` bytes.
    /// Memory beyond the old capacity is zeroed.
    pub fn reallocate(&mut self, new_size: usize) {
        debug_assert!(self.is_valid());
        let old_capacity = self.capacity();
        let new_capacity = crate::extended_rounded_size(new_size.max(1));
        if new_capacity != old_capacity {
            let old_layout = Layout::from_size_align(old_capacity, 8).expect("invalid layout");
            // Safety: ptr was allocated with old_layout by this module.
            let new_ptr = unsafe { realloc(self.ptr, old_layout, new_capacity) };
            assert!(!new_ptr.is_null(), "extended bin heap reallocation failed");
            if new_capacity > old_capacity {
                // Safety: the region [old_capacity, new_capacity) is freshly
                // grown and owned by us.
                unsafe {
                    std::ptr::write_bytes(
                        new_ptr.add(old_capacity),
                        0,
                        new_capacity - old_capacity,
                    );
                }
            }
            self.ptr = new_ptr;
        }
        self.requested = new_size as u32;
        self.over = (new_capacity - new_size) as u16;
    }

    /// Frees the heap block and resets the record to the void state.
    pub fn release(&mut self) {
        if self.is_valid() && !self.ptr.is_null() {
            let layout = Layout::from_size_align(self.capacity(), 8).expect("invalid layout");
            // Safety: ptr was allocated by this module with the same layout.
            unsafe { dealloc(self.ptr, layout) };
        }
        *self = ExtendedBin::EMPTY;
    }

    /// Heap pointer to the payload.
    #[inline]
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Size the caller last requested.
    #[inline]
    pub fn requested(&self) -> usize {
        self.requested as usize
    }

    /// Usable capacity of the heap block.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.requested as usize + self.over as usize
    }

    /// Over-allocated bytes beyond the request.
    #[inline]
    pub fn over_allocation(&self) -> usize {
        self.over as usize
    }

    /// `true` if the record owns a heap block.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.flags & FLAG_VALID != 0
    }

    /// `true` if this record is the head of a chained extended bin.
    #[inline]
    pub fn is_chain_head(&self) -> bool {
        self.flags & FLAG_CHAIN_HEAD != 0
    }

    /// `true` if this record belongs to a chained extended bin (head or member).
    #[inline]
    pub fn is_chain_member(&self) -> bool {
        self.flags & (FLAG_CHAIN_HEAD | FLAG_CHAIN_MEMBER) != 0
    }

    /// Marks the record as the head of a chain (slot 0 of a CEB).
    pub fn mark_chain_head(&mut self) {
        self.flags |= FLAG_CHAIN_HEAD;
    }

    /// Marks the record as a non-head member of a chain.
    pub fn mark_chain_member(&mut self) {
        self.flags |= FLAG_CHAIN_MEMBER;
    }
}

impl Default for ExtendedBin {
    fn default() -> Self {
        ExtendedBin::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rounds_to_increment() {
        let mut eb = ExtendedBin::allocate(2100);
        assert_eq!(eb.requested(), 2100);
        assert_eq!(eb.capacity(), 2304);
        assert!(eb.is_valid());
        eb.release();
        assert!(!eb.is_valid());
    }

    #[test]
    fn reallocation_preserves_data() {
        let mut eb = ExtendedBin::allocate(2100);
        unsafe { std::ptr::write_bytes(eb.ptr(), 0x5A, 2100) };
        eb.reallocate(9000);
        let data = unsafe { std::slice::from_raw_parts(eb.ptr(), 9000) };
        assert!(data[..2100].iter().all(|&b| b == 0x5A));
        assert!(data[2304..].iter().all(|&b| b == 0));
        assert_eq!(eb.capacity(), 9 * 1024);
        eb.release();
    }

    #[test]
    fn chain_flags_are_independent_of_validity() {
        let mut eb = ExtendedBin::EMPTY;
        assert!(!eb.is_chain_member());
        eb.mark_chain_head();
        assert!(eb.is_chain_head());
        assert!(eb.is_chain_member());
        assert!(!eb.is_valid());
    }

    #[test]
    fn memory_is_zero_initialised() {
        let eb = ExtendedBin::allocate(4096);
        let data = unsafe { std::slice::from_raw_parts(eb.ptr(), eb.capacity()) };
        assert!(data.iter().all(|&b| b == 0));
        let mut eb = eb;
        eb.release();
    }
}

//! A *bin*: 4,096 fixed-size chunks carved out of one contiguous segment.
//!
//! Bins track chunk occupancy with a 4,096-bit bitmap.  The backing segment is
//! allocated lazily on first use, mirroring the paper's behaviour of issuing
//! one kernel trap (one `mmap`) per 4,096 allocations.

use crate::CHUNKS_PER_BIN;

const BITMAP_WORDS: usize = CHUNKS_PER_BIN / 64;

/// One bin of 4,096 chunks of a fixed chunk size.
pub struct Bin {
    /// Lazily allocated backing segment of `CHUNKS_PER_BIN * chunk_size` bytes.
    segment: Option<Box<[u8]>>,
    /// Occupancy bitmap: bit set = chunk in use.
    bitmap: [u64; BITMAP_WORDS],
    /// Number of chunks currently in use.
    used: u16,
}

impl Bin {
    /// Creates an empty bin with no backing segment yet.
    pub fn new() -> Self {
        Bin {
            segment: None,
            bitmap: [0; BITMAP_WORDS],
            used: 0,
        }
    }

    /// Number of chunks currently allocated from this bin.
    #[inline]
    pub fn used(&self) -> u16 {
        self.used
    }

    /// `true` once the backing segment has been materialised.
    #[inline]
    pub fn has_segment(&self) -> bool {
        self.segment.is_some()
    }

    /// `true` if every chunk is in use.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.used as usize == CHUNKS_PER_BIN
    }

    /// `true` if no chunk is in use.
    #[inline]
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Returns whether the given chunk is currently allocated.
    #[inline]
    pub fn is_allocated(&self, chunk: u16) -> bool {
        let idx = chunk as usize;
        (self.bitmap[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Allocates one chunk, materialising the segment if needed, and returns
    /// its index.  Returns `None` if the bin is full.
    ///
    /// The free-chunk search scans the bitmap 64 bits at a time; the paper uses
    /// SIMD for the same purpose, word-level bit scanning is the portable
    /// equivalent.
    pub fn allocate(&mut self, chunk_size: usize) -> Option<u16> {
        if self.is_full() {
            return None;
        }
        if self.segment.is_none() {
            self.segment = Some(vec![0u8; CHUNKS_PER_BIN * chunk_size].into_boxed_slice());
        }
        for (w, word) in self.bitmap.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = (!*word).trailing_zeros() as usize;
                *word |= 1u64 << bit;
                self.used += 1;
                return Some((w * 64 + bit) as u16);
            }
        }
        None
    }

    /// Marks a specific chunk as allocated (used by chained extended bins that
    /// need consecutive chunk indices).  Returns `false` if already in use.
    pub fn allocate_specific(&mut self, chunk: u16, chunk_size: usize) -> bool {
        if self.is_allocated(chunk) {
            return false;
        }
        if self.segment.is_none() {
            self.segment = Some(vec![0u8; CHUNKS_PER_BIN * chunk_size].into_boxed_slice());
        }
        let idx = chunk as usize;
        self.bitmap[idx / 64] |= 1u64 << (idx % 64);
        self.used += 1;
        true
    }

    /// Finds `count` consecutive free chunks and allocates them, returning the
    /// first index.  Used for chained extended bins.
    pub fn allocate_consecutive(&mut self, count: usize, chunk_size: usize) -> Option<u16> {
        if (self.used as usize) + count > CHUNKS_PER_BIN {
            return None;
        }
        let mut run = 0usize;
        let mut start = 0usize;
        for idx in 0..CHUNKS_PER_BIN {
            if self.is_allocated(idx as u16) {
                run = 0;
            } else {
                if run == 0 {
                    start = idx;
                }
                run += 1;
                if run == count {
                    for c in start..start + count {
                        self.allocate_specific(c as u16, chunk_size);
                    }
                    return Some(start as u16);
                }
            }
        }
        None
    }

    /// Releases a chunk and zeroes its memory so stale data cannot leak into
    /// the next allocation (the trie relies on zero-initialised memory to mark
    /// invalid nodes).
    pub fn free(&mut self, chunk: u16, chunk_size: usize) {
        debug_assert!(self.is_allocated(chunk), "double free of chunk {chunk}");
        let idx = chunk as usize;
        self.bitmap[idx / 64] &= !(1u64 << (idx % 64));
        self.used -= 1;
        if let Some(seg) = &mut self.segment {
            let start = idx * chunk_size;
            seg[start..start + chunk_size].fill(0);
        }
    }

    /// Raw pointer to the start of a chunk.
    ///
    /// # Panics
    /// Panics if the segment has not been materialised.
    #[inline]
    pub fn chunk_ptr(&self, chunk: u16, chunk_size: usize) -> *mut u8 {
        let seg = self
            .segment
            .as_ref()
            .expect("chunk_ptr on bin without segment");
        debug_assert!((chunk as usize) < CHUNKS_PER_BIN);
        // Safety: chunk index is bounded by CHUNKS_PER_BIN and the segment is
        // exactly CHUNKS_PER_BIN * chunk_size bytes long.
        unsafe { seg.as_ptr().add(chunk as usize * chunk_size) as *mut u8 }
    }

    /// Bytes of backing memory owned by this bin (0 until materialised).
    #[inline]
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn segment_bytes(&self, chunk_size: usize) -> usize {
        if self.segment.is_some() {
            CHUNKS_PER_BIN * chunk_size
        } else {
            0
        }
    }
}

impl Default for Bin {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut bin = Bin::new();
        let a = bin.allocate(32).unwrap();
        let b = bin.allocate(32).unwrap();
        assert_ne!(a, b);
        assert_eq!(bin.used(), 2);
        bin.free(a, 32);
        assert_eq!(bin.used(), 1);
        let c = bin.allocate(32).unwrap();
        assert_eq!(c, a, "freed chunk should be reused first");
    }

    #[test]
    fn fills_up_to_capacity() {
        let mut bin = Bin::new();
        for _ in 0..CHUNKS_PER_BIN {
            assert!(bin.allocate(16).is_some());
        }
        assert!(bin.is_full());
        assert!(bin.allocate(16).is_none());
    }

    #[test]
    fn freed_memory_is_zeroed() {
        let mut bin = Bin::new();
        let c = bin.allocate(32).unwrap();
        let ptr = bin.chunk_ptr(c, 32);
        unsafe {
            std::ptr::write_bytes(ptr, 0xAB, 32);
        }
        bin.free(c, 32);
        let c2 = bin.allocate(32).unwrap();
        assert_eq!(c2, c);
        let ptr2 = bin.chunk_ptr(c2, 32);
        let slice = unsafe { std::slice::from_raw_parts(ptr2, 32) };
        assert!(slice.iter().all(|&b| b == 0));
    }

    #[test]
    fn consecutive_allocation_finds_runs() {
        let mut bin = Bin::new();
        // Fragment the start of the bin.
        let a = bin.allocate(16).unwrap();
        let b = bin.allocate(16).unwrap();
        let c = bin.allocate(16).unwrap();
        bin.free(b, 16);
        let start = bin.allocate_consecutive(8, 16).unwrap();
        for i in 0..8 {
            assert!(bin.is_allocated(start + i));
        }
        assert!(bin.is_allocated(a));
        assert!(bin.is_allocated(c));
    }

    #[test]
    fn chunk_pointers_do_not_overlap() {
        let mut bin = Bin::new();
        let a = bin.allocate(64).unwrap();
        let b = bin.allocate(64).unwrap();
        let pa = bin.chunk_ptr(a, 64) as usize;
        let pb = bin.chunk_ptr(b, 64) as usize;
        assert!(pa.abs_diff(pb) >= 64);
    }
}

//! A *bin*: 4,096 fixed-size chunks, backed by lazily materialised slabs.
//!
//! Bins track chunk occupancy with a 4,096-bit bitmap.  The backing memory is
//! split into [`SLAB_CHUNKS`]-chunk slabs that are allocated on first use.
//! The paper materialises the whole 4,096-chunk segment with one `mmap` and
//! relies on the kernel to commit pages lazily; a `Vec`-backed reproduction
//! has no such luxury — `vec![0u8; ...]` commits every page — so a bin that
//! hands out a single chunk must not pin `4096 × chunk_size` bytes of
//! physical memory.  (A sharded store whose containers grow through many
//! size classes would otherwise commit gigabytes for megabytes of data.)
//!
//! Slabs never move once materialised (each is an individually boxed
//! allocation), so raw chunk pointers stay stable for the lifetime of the
//! bin — the same stability guarantee the single-segment layout gave.

use crate::CHUNKS_PER_BIN;

const BITMAP_WORDS: usize = CHUNKS_PER_BIN / 64;

/// Chunks per lazily allocated slab.  64 chunks bound the worst-case
/// committed-but-unused memory per touched bin to `64 × chunk_size` bytes
/// (at most ~126 KiB for the largest superbin class).
pub const SLAB_CHUNKS: usize = 64;

const SLABS_PER_BIN: usize = CHUNKS_PER_BIN / SLAB_CHUNKS;

/// One bin of 4,096 chunks of a fixed chunk size.
pub struct Bin {
    /// Lazily materialised slabs of `SLAB_CHUNKS * chunk_size` bytes each.
    slabs: Vec<Option<Box<[u8]>>>,
    /// Occupancy bitmap: bit set = chunk in use.
    bitmap: [u64; BITMAP_WORDS],
    /// Number of chunks currently in use.
    used: u16,
}

impl Bin {
    /// Creates an empty bin with no backing memory yet.
    pub fn new() -> Self {
        Bin {
            slabs: Vec::new(),
            bitmap: [0; BITMAP_WORDS],
            used: 0,
        }
    }

    /// Number of chunks currently allocated from this bin.
    #[inline]
    pub fn used(&self) -> u16 {
        self.used
    }

    /// `true` once any backing slab has been materialised.
    #[inline]
    pub fn has_segment(&self) -> bool {
        self.slabs.iter().any(|s| s.is_some())
    }

    /// `true` if every chunk is in use.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.used as usize == CHUNKS_PER_BIN
    }

    /// `true` if no chunk is in use.
    #[inline]
    #[allow(dead_code)] // structural accessor kept for future compaction work
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Returns whether the given chunk is currently allocated.
    #[inline]
    pub fn is_allocated(&self, chunk: u16) -> bool {
        let idx = chunk as usize;
        (self.bitmap[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Materialises the slab holding `chunk`, if it is not resident yet.
    fn ensure_slab(&mut self, chunk: usize, chunk_size: usize) {
        let slab = chunk / SLAB_CHUNKS;
        debug_assert!(slab < SLABS_PER_BIN);
        if self.slabs.len() <= slab {
            self.slabs.resize_with(slab + 1, || None);
        }
        if self.slabs[slab].is_none() {
            self.slabs[slab] = Some(vec![0u8; SLAB_CHUNKS * chunk_size].into_boxed_slice());
        }
    }

    /// Allocates one chunk, materialising its slab if needed, and returns its
    /// index.  Returns `None` if the bin is full.
    ///
    /// The free-chunk search scans the bitmap 64 bits at a time; the paper uses
    /// SIMD for the same purpose, word-level bit scanning is the portable
    /// equivalent.
    pub fn allocate(&mut self, chunk_size: usize) -> Option<u16> {
        if self.is_full() {
            return None;
        }
        for (w, word) in self.bitmap.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = (!*word).trailing_zeros() as usize;
                *word |= 1u64 << bit;
                self.used += 1;
                let idx = w * 64 + bit;
                self.ensure_slab(idx, chunk_size);
                return Some(idx as u16);
            }
        }
        None
    }

    /// Marks a specific chunk as allocated (used by chained extended bins that
    /// need consecutive chunk indices).  Returns `false` if already in use.
    pub fn allocate_specific(&mut self, chunk: u16, chunk_size: usize) -> bool {
        if self.is_allocated(chunk) {
            return false;
        }
        let idx = chunk as usize;
        self.ensure_slab(idx, chunk_size);
        self.bitmap[idx / 64] |= 1u64 << (idx % 64);
        self.used += 1;
        true
    }

    /// Finds `count` consecutive free chunks and allocates them, returning the
    /// first index.  Used for chained extended bins.
    pub fn allocate_consecutive(&mut self, count: usize, chunk_size: usize) -> Option<u16> {
        if (self.used as usize) + count > CHUNKS_PER_BIN {
            return None;
        }
        let mut run = 0usize;
        let mut start = 0usize;
        for idx in 0..CHUNKS_PER_BIN {
            if self.is_allocated(idx as u16) {
                run = 0;
            } else {
                if run == 0 {
                    start = idx;
                }
                run += 1;
                if run == count {
                    for c in start..start + count {
                        self.allocate_specific(c as u16, chunk_size);
                    }
                    return Some(start as u16);
                }
            }
        }
        None
    }

    /// Releases a chunk and zeroes its memory so stale data cannot leak into
    /// the next allocation (the trie relies on zero-initialised memory to mark
    /// invalid nodes).
    pub fn free(&mut self, chunk: u16, chunk_size: usize) {
        debug_assert!(self.is_allocated(chunk), "double free of chunk {chunk}");
        let idx = chunk as usize;
        self.bitmap[idx / 64] &= !(1u64 << (idx % 64));
        self.used -= 1;
        if let Some(Some(slab)) = self.slabs.get_mut(idx / SLAB_CHUNKS) {
            let start = (idx % SLAB_CHUNKS) * chunk_size;
            slab[start..start + chunk_size].fill(0);
        }
    }

    /// Raw pointer to the start of a chunk.  The pointer stays valid for the
    /// bin's lifetime: slabs are individually boxed and never move.
    ///
    /// # Panics
    /// Panics if the chunk's slab has not been materialised.
    #[inline]
    pub fn chunk_ptr(&self, chunk: u16, chunk_size: usize) -> *mut u8 {
        let idx = chunk as usize;
        debug_assert!(idx < CHUNKS_PER_BIN);
        let slab = self.slabs[idx / SLAB_CHUNKS]
            .as_ref()
            .expect("chunk_ptr on unmaterialised slab");
        // Safety: the in-slab index is bounded by SLAB_CHUNKS and the slab is
        // exactly SLAB_CHUNKS * chunk_size bytes long.
        unsafe { slab.as_ptr().add((idx % SLAB_CHUNKS) * chunk_size) as *mut u8 }
    }

    /// Bytes of backing memory committed by this bin's resident slabs (0
    /// until materialised).  `MemoryManager::stats` derives its existing-chunk
    /// counts from this.
    #[inline]
    pub fn segment_bytes(&self, chunk_size: usize) -> usize {
        self.slabs.iter().flatten().count() * SLAB_CHUNKS * chunk_size
    }
}

impl Default for Bin {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut bin = Bin::new();
        let a = bin.allocate(32).unwrap();
        let b = bin.allocate(32).unwrap();
        assert_ne!(a, b);
        assert_eq!(bin.used(), 2);
        bin.free(a, 32);
        assert_eq!(bin.used(), 1);
        let c = bin.allocate(32).unwrap();
        assert_eq!(c, a, "freed chunk should be reused first");
    }

    #[test]
    fn fills_up_to_capacity() {
        let mut bin = Bin::new();
        for _ in 0..CHUNKS_PER_BIN {
            assert!(bin.allocate(16).is_some());
        }
        assert!(bin.is_full());
        assert!(bin.allocate(16).is_none());
    }

    #[test]
    fn freed_memory_is_zeroed() {
        let mut bin = Bin::new();
        let c = bin.allocate(32).unwrap();
        let ptr = bin.chunk_ptr(c, 32);
        unsafe {
            std::ptr::write_bytes(ptr, 0xAB, 32);
        }
        bin.free(c, 32);
        let c2 = bin.allocate(32).unwrap();
        assert_eq!(c2, c);
        let ptr2 = bin.chunk_ptr(c2, 32);
        let slice = unsafe { std::slice::from_raw_parts(ptr2, 32) };
        assert!(slice.iter().all(|&b| b == 0));
    }

    #[test]
    fn consecutive_allocation_finds_runs() {
        let mut bin = Bin::new();
        // Fragment the start of the bin.
        let a = bin.allocate(16).unwrap();
        let b = bin.allocate(16).unwrap();
        let c = bin.allocate(16).unwrap();
        bin.free(b, 16);
        let start = bin.allocate_consecutive(8, 16).unwrap();
        for i in 0..8 {
            assert!(bin.is_allocated(start + i));
        }
        assert!(bin.is_allocated(a));
        assert!(bin.is_allocated(c));
    }

    #[test]
    fn chunk_pointers_do_not_overlap() {
        let mut bin = Bin::new();
        let a = bin.allocate(64).unwrap();
        let b = bin.allocate(64).unwrap();
        let pa = bin.chunk_ptr(a, 64) as usize;
        let pb = bin.chunk_ptr(b, 64) as usize;
        assert!(pa.abs_diff(pb) >= 64);
    }

    #[test]
    fn one_chunk_commits_one_slab_only() {
        let mut bin = Bin::new();
        assert_eq!(bin.segment_bytes(1024), 0);
        bin.allocate(1024).unwrap();
        assert_eq!(
            bin.segment_bytes(1024),
            SLAB_CHUNKS * 1024,
            "a single allocation must commit a single slab, not the whole bin"
        );
        // Jumping to a distant chunk commits exactly one more slab.
        bin.allocate_specific((CHUNKS_PER_BIN - 1) as u16, 1024);
        assert_eq!(bin.segment_bytes(1024), 2 * SLAB_CHUNKS * 1024);
    }

    #[test]
    fn slab_pointers_stay_stable_across_later_allocations() {
        let mut bin = Bin::new();
        let first = bin.allocate(128).unwrap();
        let p_before = bin.chunk_ptr(first, 128) as usize;
        for _ in 0..CHUNKS_PER_BIN - 1 {
            bin.allocate(128).unwrap();
        }
        assert!(bin.is_full());
        let p_after = bin.chunk_ptr(first, 128) as usize;
        assert_eq!(
            p_before, p_after,
            "materialising later slabs must not move earlier ones"
        );
    }
}

//! Criterion micro-benchmarks: point operations (put / get) per structure,
//! the building blocks behind Tables 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion_bench::{make_store, INTEGER_STORES, STRING_STORES};
use hyperion_workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};
use std::time::Duration;

const N: usize = 5_000;

fn bench_integer_ops(c: &mut Criterion) {
    let workload = random_integer_keys(N, 0xbe7c);
    let mut group = c.benchmark_group("integer_point_ops");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for name in INTEGER_STORES {
        group.bench_with_input(BenchmarkId::new("put", name), name, |b, name| {
            b.iter(|| {
                let mut store = make_store(name);
                for (k, v) in workload.keys.iter().zip(&workload.values) {
                    store.put(k, *v);
                }
                store.len()
            })
        });
        let mut store = make_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        group.bench_with_input(BenchmarkId::new("get", name), name, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in &workload.keys {
                    if store.get(k).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_string_ops(c: &mut Criterion) {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: N,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0xc0ffee);
    let mut group = c.benchmark_group("string_point_ops");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for name in STRING_STORES {
        group.bench_with_input(BenchmarkId::new("put", name), name, |b, name| {
            b.iter(|| {
                let mut store = make_store(name);
                for (k, v) in workload.keys.iter().zip(&workload.values) {
                    store.put(k, *v);
                }
                store.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integer_ops, bench_string_ops);
criterion_main!(benches);

//! Micro-benchmarks: point operations (put / get) per structure, the
//! building blocks behind Tables 1 and 2.
//!
//! Uses the std-only harness in [`hyperion_bench::microbench`] (the build
//! environment has no crates.io access, so criterion is unavailable; the
//! bench target runs with `harness = false`).

use hyperion_bench::microbench::BenchGroup;
use hyperion_bench::{make_store, INTEGER_STORES, STRING_STORES};
use hyperion_workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};
use std::time::Duration;

const N: usize = 5_000;

fn bench_integer_ops() {
    let workload = random_integer_keys(N, 0xbe7c);
    let group = BenchGroup::new("integer_point_ops")
        .sample_size(10)
        .measurement_time(Duration::from_millis(200));
    for name in INTEGER_STORES {
        group.bench(&format!("put/{name}"), || {
            let mut store = make_store(name);
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                store.put(k, *v);
            }
            store.len()
        });
        let mut store = make_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        group.bench(&format!("get/{name}"), || {
            let mut hits = 0usize;
            for k in &workload.keys {
                if store.get(k).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    }
}

fn bench_string_ops() {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: N,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0xc0ffee);
    let group = BenchGroup::new("string_point_ops")
        .sample_size(10)
        .measurement_time(Duration::from_millis(200));
    for name in STRING_STORES {
        group.bench(&format!("put/{name}"), || {
            let mut store = make_store(name);
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                store.put(k, *v);
            }
            store.len()
        });
    }
}

fn main() {
    bench_integer_ops();
    bench_string_ops();
}

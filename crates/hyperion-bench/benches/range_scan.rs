//! Criterion micro-benchmark: full-index ordered range scans (Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperion_bench::{make_store, measure_full_scan, ORDERED_STORES};
use hyperion_workloads::random_integer_keys;
use std::time::Duration;

fn bench_range_scan(c: &mut Criterion) {
    let workload = random_integer_keys(10_000, 0x5ca7);
    let mut group = c.benchmark_group("full_range_scan");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for name in ORDERED_STORES {
        let mut store = make_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| measure_full_scan(store.as_ref()).1)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_scan);
criterion_main!(benches);

//! Micro-benchmarks: ordered range scans through the cursor/iterator API
//! (Table 3).  Uses the std-only harness in
//! [`hyperion_bench::microbench`]; see `point_ops.rs` for the rationale.

use hyperion_bench::microbench::BenchGroup;
use hyperion_bench::{make_ordered_store, measure_full_scan, ORDERED_STORES};
use hyperion_workloads::random_integer_keys;
use std::time::Duration;

fn bench_range_scan() {
    let workload = random_integer_keys(10_000, 0x5ca7);
    let group = BenchGroup::new("full_range_scan")
        .sample_size(10)
        .measurement_time(Duration::from_millis(200));
    for name in ORDERED_STORES {
        let mut store = make_ordered_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        group.bench(name, || measure_full_scan(store.as_ref()).1);
    }
}

fn bench_bounded_range() {
    let workload = random_integer_keys(10_000, 0x5ca8);
    let group = BenchGroup::new("bounded_range_scan")
        .sample_size(10)
        .measurement_time(Duration::from_millis(200));
    let low = u64::MAX / 4;
    let high = u64::MAX / 2;
    for name in ORDERED_STORES {
        let mut store = make_ordered_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        group.bench(name, || {
            store
                .range_iter(&low.to_be_bytes(), &high.to_be_bytes())
                .count()
        });
    }
}

/// Streaming merged scan over the sharded front end: the k-way merge refills
/// one bounded chunk per shard hand-over-hand, so this also measures the
/// re-seek overhead that buys the O(shards × chunk) memory bound.
fn bench_db_merged_scan() {
    use hyperion_core::db::HyperionDb;
    use hyperion_core::HyperionConfig;
    let workload = random_integer_keys(10_000, 0x5ca9);
    let group = BenchGroup::new("db_merged_scan")
        .sample_size(10)
        .measurement_time(Duration::from_millis(200));
    for shards in [1usize, 4, 16] {
        for chunk in [64usize, 256] {
            let db = HyperionDb::builder()
                .shards(shards)
                .config(HyperionConfig::for_integers())
                .scan_chunk_size(chunk)
                .build();
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                db.put(k, *v).unwrap();
            }
            let label = format!("shards{shards:02}_chunk{chunk}");
            group.bench(&label, || db.iter().count());
        }
    }
}

fn main() {
    bench_range_scan();
    bench_bounded_range();
    bench_db_merged_scan();
}

//! Micro-benchmark: deep cursor seeks.
//!
//! A `Cursor::seek` positions the cursor at the first key `>= target`.  Large
//! containers (sequential integer keys concentrate hundreds of T records into
//! few containers) make the initial T-record walk the dominant cost; the
//! container jump table exists precisely to cut that walk short.  This bench
//! measures seek+read latency into large and small containers; EXPERIMENTS.md
//! records the numbers before/after CJT-seeded seeks.

use hyperion_bench::microbench::BenchGroup;
use hyperion_core::{HyperionConfig, HyperionMap};
use std::time::Duration;

const N: usize = 200_000;
const PROBES: usize = 2_000;

fn probe_targets(n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed;
    (0..PROBES)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % n as u64
        })
        .collect()
}

/// Sequential integer keys: few, very large containers — the worst case for
/// a linear T-record walk and the best case for the container jump table.
fn bench_sequential_int() {
    let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
    for i in 0..N as u64 {
        map.put(&i.to_be_bytes(), i);
    }
    let targets: Vec<[u8; 8]> = probe_targets(N, 0x5eed)
        .into_iter()
        .map(|t| t.to_be_bytes())
        .collect();
    let group = BenchGroup::new("deep_seek")
        .sample_size(10)
        .measurement_time(Duration::from_millis(300));
    group.bench("sequential_int/seek_next", || {
        let mut hits = 0usize;
        let mut cursor = map.cursor();
        for t in &targets {
            cursor.seek(t);
            if cursor.next().is_some() {
                hits += 1;
            }
        }
        hits
    });
}

/// Random string keys: many mid-size containers reached through pointer
/// descent; seeks exercise the whole frame stack.
fn bench_string_keys() {
    let mut map = HyperionMap::with_config(HyperionConfig::for_strings());
    for i in 0..N as u64 {
        let key = format!(
            "user:{:012}",
            i.wrapping_mul(0x9e3779b97f4a7c15) % 1_000_000_000
        );
        map.put(key.as_bytes(), i);
    }
    let targets: Vec<Vec<u8>> = probe_targets(1_000_000_000, 0xfeed)
        .into_iter()
        .map(|t| format!("user:{t:012}").into_bytes())
        .collect();
    let group = BenchGroup::new("deep_seek_strings")
        .sample_size(10)
        .measurement_time(Duration::from_millis(300));
    group.bench("string/seek_next", || {
        let mut hits = 0usize;
        let mut cursor = map.cursor();
        for t in &targets {
            cursor.seek(t);
            if cursor.next().is_some() {
                hits += 1;
            }
        }
        hits
    });
}

fn main() {
    bench_sequential_int();
    bench_string_keys();
}

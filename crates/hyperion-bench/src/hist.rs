//! A zero-dependency HDR-style latency histogram.
//!
//! The scenario benchmarks (`ycsb_throughput`) and the microbench binaries
//! report latency *percentiles*, not just best-of-N throughput: tail latency
//! is exactly what an averaged Mops number hides, and it is the metric the
//! "millions of users" north star is actually judged by.  The build
//! environment has no crates.io access (no `hdrhistogram`), so this is a
//! from-scratch log-linear histogram in the HDR spirit:
//!
//! * values `< 64` land in exact unit buckets;
//! * larger values share 64 linear sub-buckets per power of two, giving a
//!   guaranteed relative error below `1/64` (~1.6%) across the full `u64`
//!   range — nanosecond recordings stay accurate from sub-microsecond ops to
//!   multi-second stalls;
//! * recording is two branches, a `leading_zeros` and one array increment —
//!   cheap enough to sit inside a per-operation timing loop;
//! * histograms [`Hist::merge`] losslessly, so per-client recordings combine
//!   into one distribution without sharing anything during the run.
//!
//! ```
//! use hyperion_bench::hist::Hist;
//!
//! let mut h = Hist::new();
//! for us in [10u64, 20, 30, 40, 1000] {
//!     h.record(us * 1_000); // nanoseconds
//! }
//! assert_eq!(h.count(), 5);
//! assert!(h.value_at_percentile(50.0) >= 20_000);
//! assert!(h.value_at_percentile(99.9) >= 1_000_000);
//! ```

/// Sub-buckets per power of two — the precision/size dial.  64 keeps the
/// relative quantisation error below 1.6% and the whole histogram at
/// `64 + 58 × 64` buckets (≈30 KiB of `u64` counts).
const SUB_BUCKETS: usize = 64;
/// log2([`SUB_BUCKETS`]).
const SUB_BITS: u32 = 6;
/// Bucket count covering the full `u64` value range: 64 exact unit buckets
/// plus one 64-wide linear segment per exponent from 6 to 63.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// A log-linear histogram over `u64` values (conventionally nanoseconds).
#[derive(Clone)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// Bucket index of `value`: exact below [`SUB_BUCKETS`], log-linear above.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let sub = (value >> (exp - SUB_BITS)) as usize - SUB_BUCKETS;
        (exp - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
    }
}

/// Largest value mapping to bucket `index` (the reported quantile bound:
/// "p99 <= this", never an underestimate).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let exp = (index / SUB_BUCKETS) as u32 - 1 + SUB_BITS;
        let sub = (index % SUB_BUCKETS) as u64;
        let base = (SUB_BUCKETS as u64 + sub) << (exp - SUB_BITS);
        base + ((1u64 << (exp - SUB_BITS)) - 1)
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Hist {
        Hist {
            counts: vec![0; BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (conventionally nanoseconds).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value — exact, not quantised.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact sum / count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The value at (or quantised just above) the given percentile in
    /// `0.0..=100.0`; at most ~1.6% above the true quantile.  Returns the
    /// exact maximum for the top bucket and 0 for an empty histogram.
    pub fn value_at_percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the observed maximum (the last
                // occupied bucket's upper edge can exceed it).
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Adds every recording of `other` into `self` (lossless: both use the
    /// same fixed bucket layout).
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Formats the standard latency summary line, scaling nanosecond
    /// recordings to microseconds.
    pub fn summary_us(&self) -> String {
        format!(
            "p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  max {:>8.1}us  (n = {})",
            self.value_at_percentile(50.0) as f64 / 1e3,
            self.value_at_percentile(95.0) as f64 / 1e3,
            self.value_at_percentile(99.0) as f64 / 1e3,
            self.max as f64 / 1e3,
            self.count,
        )
    }

    /// `(metric suffix, value in µs)` pairs for the `--json` trajectory:
    /// `p50/p95/p99` under the given metric prefix.  The `_us` suffix tells
    /// `bench_gate` the direction (latency regresses *upward*).
    pub fn percentile_metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        [(50.0, "p50"), (95.0, "p95"), (99.0, "p99")]
            .iter()
            .map(|&(pct, name)| {
                (
                    format!("{prefix}_{name}_us"),
                    self.value_at_percentile(pct) as f64 / 1e3,
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .field("p50", &self.value_at_percentile(50.0))
            .field("p99", &self.value_at_percentile(99.0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // With 64 exact buckets, every percentile is exact.
        assert_eq!(h.value_at_percentile(50.0), 31);
        assert_eq!(h.value_at_percentile(100.0), 63);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..10_000 {
            let v = step() % 1_000_000_000 + 1;
            let mut h = Hist::new();
            h.record(v);
            let q = h.value_at_percentile(100.0);
            assert!(q >= v || q == h.max());
            let err = (q as f64 - v as f64) / v as f64;
            assert!((0.0..=1.0 / 64.0 + 1e-9).contains(&err), "{v} -> {q}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_ordered() {
        let mut h = Hist::new();
        let mut x = 88172645463325252u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let mut last = 0;
        for pct in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let v = h.value_at_percentile(pct);
            assert!(v >= last, "p{pct} = {v} < previous {last}");
            last = v;
        }
        assert_eq!(h.value_at_percentile(100.0), h.max());
    }

    #[test]
    fn known_distribution_quantiles() {
        // 90 values of 100ns, 9 of 10_000ns, 1 of 1_000_000ns.
        let mut h = Hist::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let p50 = h.value_at_percentile(50.0);
        let p95 = h.value_at_percentile(95.0);
        let p99 = h.value_at_percentile(99.0);
        let p100 = h.value_at_percentile(100.0);
        assert!((100..=102).contains(&p50), "p50 = {p50}");
        assert!((10_000..=10_160).contains(&p95), "p95 = {p95}");
        assert!((10_000..=10_160).contains(&p99), "p99 = {p99}");
        assert_eq!(p100, 1_000_000);
        assert!((h.mean() - 10_990.0).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for i in 0..5_000u64 {
            let v = i * i % 777_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for pct in [50.0, 90.0, 99.0] {
            assert_eq!(a.value_at_percentile(pct), all.value_at_percentile(pct));
        }
    }

    #[test]
    fn bucket_roundtrip_covers_u64() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_of(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            let upper = bucket_upper(idx);
            assert!(upper >= v, "{v} -> bucket {idx} upper {upper}");
            if v >= 64 {
                // Upper edge within 1/64 of the value.
                assert!(upper - v <= v / SUB_BUCKETS as u64);
            }
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
    }
}

//! # hyperion-bench
//!
//! Benchmark harness regenerating every table and figure of the Hyperion
//! evaluation (paper Section 4) at laptop scale.  Each binary prints the same
//! rows / series the paper reports; EXPERIMENTS.md records the measured
//! results next to the paper's values.
//!
//! Binaries (run with `--release`; pass a key count to override the default):
//!
//! | binary   | reproduces |
//! |----------|-----------|
//! | `fig13`  | Figure 13 — keys indexable within a fixed memory budget |
//! | `table1` | Table 1 — string data set KPIs (sequential + randomized) |
//! | `fig14`  | Figure 14 — per-superbin memory characteristics (strings) |
//! | `table2` | Table 2 — integer data set KPIs (sequential + randomized) |
//! | `fig15`  | Figure 15 — throughput vs. index size + memory footprint |
//! | `fig16`  | Figure 16 — Hyperion vs Hyperion_p allocation distribution |
//! | `table3` | Table 3 — full-index range query duration |
//! | `ablation` | Section 4.3/4.4 — effect of each Hyperion feature |
//! | `partitioners` | `HyperionDb` partitioner throughput under key skew |
//!
//! Three binaries double as CI smoke checks (`--smoke` shrinks the keysets
//! and oracle-checks every result) and feed the machine-readable perf
//! trajectory (`--json <path>` merges their metrics into one flat JSON file,
//! see [`json`]): `put_throughput`, `get_throughput` and `scan_throughput`
//! (forward vs reverse scans, `last`/`pred` queries).  `bench_gate` compares
//! two such metric files and fails on regressions beyond a threshold — CI
//! runs it against the committed `BENCH_baseline.json`.

use hyperion_baselines::{ArtTree, CritBitTree, HatTrie, JudyTrie, OpenHashMap, RedBlackTree};
use hyperion_core::{HyperionConfig, HyperionMap, KvStore, OrderedKvStore};
use hyperion_workloads::Workload;
use std::time::Instant;

pub mod hist;
pub mod json;
pub mod microbench;

/// Expands the shared (name -> ordered structure) construction arms so that
/// [`make_store`] and [`make_ordered_store`] cannot drift apart; only the
/// trailing arms (hash table / panic message) differ per factory.
macro_rules! ordered_store_arms {
    ($name:expr, { $($extra_arm:tt)* }) => {
        match $name {
            "hyperion" => Box::new(HyperionMap::with_config(HyperionConfig::for_strings())),
            "hyperion-int" => Box::new(HyperionMap::with_config(HyperionConfig::for_integers())),
            "hyperion_p" => Box::new(HyperionMap::with_config(
                HyperionConfig::with_preprocessing(),
            )),
            "judy" => Box::new(JudyTrie::new()),
            "hat" => Box::new(HatTrie::new()),
            "art" => Box::new(ArtTree::new()),
            "hot" => Box::new(CritBitTree::new()),
            "rb-tree" => Box::new(RedBlackTree::new()),
            $($extra_arm)*
        }
    };
}

/// Which structures to include in a run (point operations only; the hash
/// table is a [`KvStore`] but not an [`OrderedKvStore`]).
pub fn make_store(name: &str) -> Box<dyn KvStore> {
    ordered_store_arms!(name, {
        "hash" => Box::new(OpenHashMap::new()),
        other => panic!("unknown store {other}"),
    })
}

/// The ordered structures as [`OrderedKvStore`] trait objects, for the
/// range-scan experiments.  Panics for `"hash"`: the trait split makes the
/// missing ordered capability a compile-time property.
pub fn make_ordered_store(name: &str) -> Box<dyn OrderedKvStore> {
    ordered_store_arms!(name, {
        other => panic!("store {other} does not support ordered iteration"),
    })
}

/// All structures compared in the string experiments (Table 1).
pub const STRING_STORES: &[&str] = &["hyperion", "judy", "hat", "art", "hot", "rb-tree", "hash"];
/// All structures compared in the integer experiments (Table 2).
pub const INTEGER_STORES: &[&str] = &[
    "hyperion-int",
    "hyperion_p",
    "judy",
    "hat",
    "art",
    "hot",
    "rb-tree",
    "hash",
];
/// The ordered structures compared in the range-query experiment (Table 3).
pub const ORDERED_STORES: &[&str] = &[
    "hyperion",
    "hyperion_p",
    "judy",
    "hat",
    "art",
    "hot",
    "rb-tree",
];

/// Key performance indicators of one (store, workload) run, mirroring the
/// columns of the paper's Tables 1 and 2.
#[derive(Clone, Debug)]
pub struct Kpi {
    /// Store identifier.
    pub store: String,
    /// Put throughput in million operations per second.
    pub puts_mops: f64,
    /// Get throughput in million operations per second.
    pub gets_mops: f64,
    /// Total logical memory footprint in bytes.
    pub memory_bytes: usize,
    /// Bytes per key (footprint / keys).
    pub bytes_per_key: f64,
    /// Performance-to-memory ratio (Equation 5), unnormalised.
    pub p_over_m: f64,
}

/// Runs the paper's put/get KPI measurement for one store on one workload.
pub fn measure_kpi(store_name: &str, workload: &Workload) -> Kpi {
    let mut store = make_store(store_name);
    let n = workload.len() as f64;
    let start = Instant::now();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        store.put(k, *v);
    }
    let put_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut hits = 0usize;
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        if store.get(k) == Some(*v) {
            hits += 1;
        }
    }
    let get_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        hits,
        workload.len(),
        "{store_name} lost keys during the benchmark"
    );
    let memory = store.memory_footprint();
    let puts = n / put_secs / 1e6;
    let gets = n / get_secs / 1e6;
    Kpi {
        store: store_name.to_string(),
        puts_mops: puts,
        gets_mops: gets,
        memory_bytes: memory,
        bytes_per_key: memory as f64 / n,
        p_over_m: (n / put_secs + n / get_secs) / memory as f64,
    }
}

/// Prints a KPI table with the P/M column normalised to the first row
/// (Hyperion), exactly like the paper's tables.
pub fn print_kpi_table(title: &str, kpis: &[Kpi]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "store", "puts MOPS", "gets MOPS", "memory MiB", "B/key", "P/M"
    );
    let reference = kpis.first().map(|k| k.p_over_m).unwrap_or(1.0);
    for k in kpis {
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12.1} {:>10.2} {:>8.2}",
            k.store,
            k.puts_mops,
            k.gets_mops,
            k.memory_bytes as f64 / (1024.0 * 1024.0),
            k.bytes_per_key,
            k.p_over_m / reference
        );
    }
}

/// Measures a full-index ordered range scan (Table 3); returns the duration in
/// seconds and the number of keys visited.  Uses the allocation-free
/// [`hyperion_core::OrderedRead::for_each_from`] walk so every structure does
/// uniform work inside the timed region (the lazy `iter_from` would be free
/// for Hyperion but a full materialisation for the baselines, biasing the
/// comparison).
pub fn measure_full_scan(store: &dyn OrderedKvStore) -> (f64, usize) {
    let start = Instant::now();
    let mut visited = 0usize;
    store.for_each_from(&[], &mut |_, _| {
        visited += 1;
        true
    });
    (start.elapsed().as_secs_f64(), visited)
}

/// Reads the resident set size from `/proc/self/status` (the paper's memory
/// accounting method).  Returns 0 when unavailable.
pub fn rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: usize = rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Million operations per second.
pub fn mops(n: usize, secs: f64) -> f64 {
    n as f64 / secs / 1e6
}

/// Times `f` over `runs` executions and returns the last result with the
/// fastest run's seconds.  The CI regression gate compares one number per
/// metric, so best-of-N damps scheduler noise on shared runners; callers
/// whose closure builds expensive state from scratch (the put benchmarks)
/// use a smaller `runs`.
pub fn timed_best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs > 0);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs {
        let start = Instant::now();
        out = Some(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (out.expect("at least one run"), best)
}

/// Parses the key-count argument shared by all experiment binaries.
pub fn arg_keys(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperion_workloads::sequential_integer_keys;

    #[test]
    fn kpi_measurement_runs_for_every_store() {
        let workload = sequential_integer_keys(2_000);
        for name in INTEGER_STORES {
            let kpi = measure_kpi(name, &workload);
            assert!(kpi.puts_mops > 0.0);
            assert!(kpi.gets_mops > 0.0);
            assert!(kpi.memory_bytes > 0);
        }
    }

    #[test]
    fn full_scan_visits_every_key() {
        let workload = sequential_integer_keys(3_000);
        for name in ORDERED_STORES {
            let mut store = make_ordered_store(name);
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                store.put(k, *v);
            }
            let (_, visited) = measure_full_scan(store.as_ref());
            assert_eq!(visited, workload.len(), "store {name}");
        }
    }

    #[test]
    fn ordered_stores_serve_range_and_prefix_iterators() {
        let workload = sequential_integer_keys(2_000);
        let low = 500u64.to_be_bytes();
        let high = 1_500u64.to_be_bytes();
        for name in ORDERED_STORES {
            let mut store = make_ordered_store(name);
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                store.put(k, *v);
            }
            assert_eq!(store.range_count(&low, &high), 1_000, "store {name}");
            // All 2 000 sequential keys share the leading zero byte.
            assert_eq!(store.prefix_iter(&[0]).count(), 2_000, "store {name}");
            assert_eq!(
                store.seek_first(&low),
                Some((low.to_vec(), 500)),
                "store {name}"
            );
        }
    }

    #[test]
    fn rss_is_reported_on_linux() {
        assert!(rss_bytes() > 0);
    }
}

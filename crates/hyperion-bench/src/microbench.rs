//! A tiny std-only micro-benchmark harness.
//!
//! The benchmark container has no access to crates.io, so the `cargo bench`
//! targets cannot depend on criterion.  This module provides the small subset
//! the workspace needs — named benchmarks, warm-up, a minimum measurement
//! time, and a median-of-samples report — over `std::time::Instant` only.
//! The bench files keep criterion's group/benchmark structure so swapping the
//! backend later is mechanical.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A group of related benchmarks, printed under a common heading.
pub struct BenchGroup {
    name: String,
    measurement_time: Duration,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group with the default settings (10 samples, >= 200 ms of
    /// measurement per sample batch).
    pub fn new(name: &str) -> BenchGroup {
        println!("\n== bench group: {name} ==");
        BenchGroup {
            name: name.to_string(),
            measurement_time: Duration::from_millis(200),
            samples: 10,
        }
    }

    /// Overrides the minimum measurement time per sample.
    pub fn measurement_time(mut self, d: Duration) -> BenchGroup {
        self.measurement_time = d;
        self
    }

    /// Overrides the number of samples taken per benchmark.
    pub fn sample_size(mut self, samples: usize) -> BenchGroup {
        self.samples = samples.max(1);
        self
    }

    /// Runs `f` repeatedly and prints the median time per invocation.
    ///
    /// The return value of `f` is passed through [`black_box`] so the
    /// computation cannot be optimised away.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        // Warm-up: one untimed invocation.
        black_box(f());
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                black_box(f());
                iters += 1;
                if start.elapsed() >= self.measurement_time {
                    break;
                }
            }
            per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{}/{label:<28} {:>14} median  [{} .. {}]",
            self.name,
            format_duration(median),
            format_duration(lo),
            format_duration(hi)
        );
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let group = BenchGroup::new("selftest")
            .measurement_time(Duration::from_millis(1))
            .sample_size(2);
        let mut count = 0u64;
        group.bench("increment", || {
            count += 1;
            count
        });
        assert!(count > 2, "benchmark body must have run");
    }
}

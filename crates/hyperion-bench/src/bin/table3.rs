//! Table 3: duration of a full-index ordered range query for the integer and
//! string data sets, in sequential and randomized insertion order.

use hyperion_bench::{arg_keys, make_ordered_store, measure_full_scan, ORDERED_STORES};
use hyperion_workloads::{
    random_integer_keys, sequential_integer_keys, NgramCorpus, NgramCorpusConfig,
};

fn main() {
    let n = arg_keys(200_000);
    println!("Table 3 reproduction: full-index range queries over {n} keys");
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: n,
        ..Default::default()
    });
    let workloads = [
        ("integer seq", sequential_integer_keys(n)),
        ("integer rand", random_integer_keys(n, 7)),
        ("string seq", corpus.workload.clone()),
        ("string rand", corpus.workload.shuffled(9)),
    ];
    println!(
        "{:<12} {:>14} {:>16} {:>12}",
        "store", "workload", "scan time (ms)", "keys/s (M)"
    );
    for store_name in ORDERED_STORES {
        for (wname, workload) in &workloads {
            if *store_name == "hyperion_p" && !wname.starts_with("integer rand") {
                continue; // the paper only evaluates Hyperion_p on random integers
            }
            let mut store = make_ordered_store(store_name);
            for (k, v) in workload.keys.iter().zip(&workload.values) {
                store.put(k, *v);
            }
            let (secs, visited) = measure_full_scan(store.as_ref());
            assert_eq!(visited, workload.len());
            println!(
                "{:<12} {:>14} {:>16.2} {:>12.2}",
                store_name,
                wname,
                secs * 1e3,
                visited as f64 / secs / 1e6
            );
        }
    }
}

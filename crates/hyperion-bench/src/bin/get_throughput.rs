//! `get_throughput` — read-path microbenchmark and CI smoke check.
//!
//! Measures Hyperion read throughput on the workloads of Tables 1–2 (random
//! u64 integer keys, n-gram string keys), comparing three read paths:
//!
//! * **point gets** — one `HyperionMap::get` per key, shuffled probe order,
//!   with a 1-in-8 mix of missing keys (the realistic serving shape);
//! * **`get_many`** — the same probes in sorted-resume batches: the read
//!   engine descends once per shared prefix and resumes its container scans
//!   across consecutive keys (mirroring `put_many`);
//! * **`multi_get`** — the same batches through a sharded `HyperionDb`, one
//!   lock acquisition *and* one resume-scan group per shard per batch.
//!
//! With `--smoke` the run shrinks and every result is checked against a
//! `BTreeMap` oracle (hits, misses, duplicate probes, order faithfulness),
//! wiring the read engine into CI next to `put_throughput --smoke`.
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin get_throughput            # full
//! cargo run --release -p hyperion-bench --bin get_throughput -- --smoke # CI
//! ```

use hyperion_bench::hist::Hist;
use hyperion_bench::json::{arg_json_path, merge_into_file};
use hyperion_bench::{mops, timed_best_of};
use hyperion_core::db::{FibonacciPartitioner, HyperionDb};
use hyperion_core::{HyperionConfig, HyperionMap, ScanBackend};
use hyperion_workloads::{random_integer_keys, Mt19937_64, NgramCorpus, NgramCorpusConfig};
use std::collections::BTreeMap;

/// Keys per `get_many` / `multi_get` batch (small = per-request serving
/// shape, large = offline/bulk shape where descent sharing and the
/// prefetched frontier pay off most).
const BATCHES: &[usize] = &[256, 4096];
/// Shards of the `HyperionDb` used for the `multi_get` rows.
const DB_SHARDS: usize = 8;

fn timed<T>(f: impl FnMut() -> T) -> (T, f64) {
    timed_best_of(3, f)
}

/// Shuffled probe set over `keys` with a 1-in-8 mix of missing keys.
/// Returns the probes and the number of expected hits.
fn probes(keys: &[Vec<u8>], seed: u64) -> (Vec<Vec<u8>>, usize) {
    let mut rng = Mt19937_64::new(seed);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(keys.len());
    let mut hits = 0usize;
    for key in keys {
        if rng.next_u64() % 8 == 0 {
            // A probe that can never hit: longer than any stored key of this
            // workload shape.
            let mut miss = key.clone();
            miss.extend_from_slice(b"\xffmiss");
            out.push(miss);
        } else {
            out.push(key.clone());
            hits += 1;
        }
    }
    // Fisher–Yates shuffle so point probes do not arrive in insertion order.
    for i in (1..out.len()).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        out.swap(i, j);
    }
    // Recount hits after the miss substitution (duplicate source keys keep
    // the count correct: substitution decided per probe).
    (out, hits)
}

struct Workbench {
    label: &'static str,
    map: HyperionMap,
    db: Option<HyperionDb>,
    probes: Vec<Vec<u8>>,
    expected_hits: usize,
    oracle: BTreeMap<Vec<u8>, u64>,
}

impl Workbench {
    fn build(
        label: &'static str,
        config: HyperionConfig,
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
        seed: u64,
        with_db: bool,
    ) -> Workbench {
        let mut map = HyperionMap::with_config(config);
        map.put_many(
            keys.iter()
                .map(|k| k.as_slice())
                .zip(values.iter().copied()),
        );
        let db = with_db.then(|| {
            let db = HyperionDb::builder()
                .shards(DB_SHARDS)
                .config(config)
                .partitioner(FibonacciPartitioner)
                .build();
            for (k, v) in keys.iter().zip(values.iter()) {
                db.put(k, *v).expect("db put");
            }
            db
        });
        let mut oracle = BTreeMap::new();
        for (k, v) in keys.iter().zip(values.iter()) {
            oracle.insert(k.clone(), *v);
        }
        let (probes, expected_hits) = probes(&keys, seed);
        Workbench {
            label,
            map,
            db,
            probes,
            expected_hits,
            oracle,
        }
    }

    fn run(&self, check: bool, metrics: &mut Vec<(String, f64)>) {
        let n = self.probes.len();
        let refs: Vec<&[u8]> = self.probes.iter().map(|k| k.as_slice()).collect();

        // Point gets.
        let (hits, secs) = timed(|| {
            let mut hits = 0usize;
            for key in &refs {
                if self.map.get(key).is_some() {
                    hits += 1;
                }
            }
            hits
        });
        assert_eq!(hits, self.expected_hits, "{}: point get hits", self.label);
        println!(
            "{}/point_get      {n:>8} keys  {:>8.3} Mops",
            self.label,
            mops(n, secs)
        );
        metrics.push((format!("get/{}_point_mops", self.label), mops(n, secs)));

        // Per-operation latency distribution of the same point gets: the
        // throughput row averages the whole loop, the histogram shows the
        // tail (`bench_gate` treats the `_us` metrics as lower-is-better).
        let mut hist = Hist::new();
        let mut hits = 0usize;
        for key in &refs {
            let start = std::time::Instant::now();
            if self.map.get(key).is_some() {
                hits += 1;
            }
            hist.record(start.elapsed().as_nanos() as u64);
        }
        assert_eq!(
            hits, self.expected_hits,
            "{}: latency pass hits",
            self.label
        );
        println!("{}/point_get latency: {}", self.label, hist.summary_us());
        metrics.extend(hist.percentile_metrics(&format!("get/{}_point", self.label)));

        for &batch in BATCHES {
            // Batched gets through the map's sorted-resume engine.
            let (results, secs) = timed(|| {
                let mut results: Vec<Option<u64>> = Vec::with_capacity(n);
                for chunk in refs.chunks(batch) {
                    results.extend(self.map.get_many(chunk));
                }
                results
            });
            let hits = results.iter().flatten().count();
            assert_eq!(hits, self.expected_hits, "{}: get_many hits", self.label);
            println!(
                "{}/get_many({batch:>4})  {n:>8} keys  {:>8.3} Mops",
                self.label,
                mops(n, secs)
            );
            metrics.push((
                format!("get/{}_get_many_{batch}_mops", self.label),
                mops(n, secs),
            ));
            if check {
                self.check_results(&results, "get_many");
            }

            // Batched gets through the sharded front end.
            let Some(db) = &self.db else { continue };
            let (results, secs) = timed(|| {
                let mut results: Vec<Option<u64>> = Vec::with_capacity(n);
                for chunk in refs.chunks(batch) {
                    results.extend(db.multi_get(chunk).expect("multi_get"));
                }
                results
            });
            let hits = results.iter().flatten().count();
            assert_eq!(hits, self.expected_hits, "{}: multi_get hits", self.label);
            println!(
                "{}/multi_get({batch:>4}) {n:>8} keys  {:>8.3} Mops  ({DB_SHARDS} shards)",
                self.label,
                mops(n, secs)
            );
            metrics.push((
                format!("get/{}_multi_get_{batch}_mops", self.label),
                mops(n, secs),
            ));
            if check {
                self.check_results(&results, "multi_get");
            }
        }
    }

    /// Reduced row set for A/B variants (the `_noshortcut` pair rows): point
    /// gets and batched map gets only — no latency histogram and no sharded
    /// rows, so the comparison isolates the map-level read engine where the
    /// shortcut acts.
    fn run_lite(&self, check: bool, metrics: &mut Vec<(String, f64)>) {
        let n = self.probes.len();
        let refs: Vec<&[u8]> = self.probes.iter().map(|k| k.as_slice()).collect();

        let (hits, secs) = timed(|| {
            let mut hits = 0usize;
            for key in &refs {
                if self.map.get(key).is_some() {
                    hits += 1;
                }
            }
            hits
        });
        assert_eq!(hits, self.expected_hits, "{}: point get hits", self.label);
        println!(
            "{}/point_get      {n:>8} keys  {:>8.3} Mops",
            self.label,
            mops(n, secs)
        );
        metrics.push((format!("get/{}_point_mops", self.label), mops(n, secs)));

        for &batch in BATCHES {
            let (results, secs) = timed(|| {
                let mut results: Vec<Option<u64>> = Vec::with_capacity(n);
                for chunk in refs.chunks(batch) {
                    results.extend(self.map.get_many(chunk));
                }
                results
            });
            let hits = results.iter().flatten().count();
            assert_eq!(hits, self.expected_hits, "{}: get_many hits", self.label);
            println!(
                "{}/get_many({batch:>4})  {n:>8} keys  {:>8.3} Mops",
                self.label,
                mops(n, secs)
            );
            metrics.push((
                format!("get/{}_get_many_{batch}_mops", self.label),
                mops(n, secs),
            ));
            if check {
                self.check_results(&results, "get_many");
            }
        }
    }

    /// Concurrent point gets through the sharded `HyperionDb`: `threads`
    /// reader threads each own a disjoint slice of the probe set and hammer
    /// `HyperionDb::get` — the optimistic seqlock read path — in parallel.
    /// With no writers the shard versions never move, so every get should
    /// complete lock-free and the sweep measures pure reader scaling.
    ///
    /// `writers` background threads (0 = quiescent sweep) insert and delete
    /// churn keys under their own prefix for the duration of the run,
    /// keeping the shard seqlocks moving: that is what turns the retry and
    /// fallback counters from a liveness claim into a measured rate.
    fn run_threaded(&self, threads: usize, writers: usize, metrics: &mut Vec<(String, f64)>) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let Some(db) = &self.db else { return };
        let n = self.probes.len();
        let chunk = n.div_ceil(threads.max(1));
        let before = db.stats().optimistic;
        let stop = AtomicBool::new(false);
        let (hits, secs) = std::thread::scope(|scope| {
            for w in 0..writers {
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = Mt19937_64::new(0x3117 + w as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let r = rng.next_u64();
                        let mut key = Vec::with_capacity(11);
                        key.extend_from_slice(b"\xffw:");
                        key.extend_from_slice(&r.to_be_bytes());
                        db.put(&key, r).expect("writer put");
                        if r % 2 == 0 {
                            db.delete(&key).expect("writer delete");
                        }
                    }
                });
            }
            let timed_run = timed(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .probes
                        .chunks(chunk)
                        .map(|slice| {
                            scope.spawn(move || {
                                let mut hits = 0usize;
                                for key in slice {
                                    if db.get(key).expect("db get").is_some() {
                                        hits += 1;
                                    }
                                }
                                hits
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("reader thread"))
                        .sum::<usize>()
                })
            });
            stop.store(true, Ordering::Relaxed);
            timed_run
        });
        assert_eq!(
            hits, self.expected_hits,
            "{}: threaded point get hits",
            self.label
        );
        let d = db.stats().optimistic;
        let (hits_d, retries_d, fallbacks_d) = (
            d.hits - before.hits,
            d.retries - before.retries,
            d.fallbacks - before.fallbacks,
        );
        let lock_free = 100.0 * hits_d as f64 / (hits_d + fallbacks_d).max(1) as f64;
        println!(
            "{}/point_get(t{threads}w{writers}) {n:>8} keys  {:>8.3} Mops  \
             ({DB_SHARDS} shards, {lock_free:.2}% lock-free, {retries_d} retries, \
             {fallbacks_d} fallbacks)",
            self.label,
            mops(n, secs)
        );
        let key = if writers == 0 {
            format!("get/{}_point_t{threads}_mops", self.label)
        } else {
            format!("get/{}_point_t{threads}w{writers}_mops", self.label)
        };
        metrics.push((key, mops(n, secs)));
    }

    /// Prints the optimistic-read counters the threaded sweep accumulated on
    /// the sharded front end (lock-free hits vs seqlock retries vs mutex
    /// fallbacks).
    fn report_optimistic(&self) {
        let Some(db) = &self.db else { return };
        let s = db.stats().optimistic;
        println!(
            "{}/optimistic     hits {:>10}  retries {:>6}  fallbacks {:>6}  ({:>5.1}% lock-free)",
            self.label,
            s.hits,
            s.retries,
            s.fallbacks,
            100.0 * s.lock_free_rate(),
        );
    }

    /// Prints the map-level shortcut counters accumulated across the timed
    /// passes (hit rate of the read path, table occupancy, bytes/key).
    fn report_shortcut(&self) {
        let s = self.map.shortcut_stats();
        let probes = s.hits + s.misses;
        let keys = self.oracle.len().max(1);
        println!(
            "{}/shortcut       hits {:>10}  misses {:>10}  ({:>5.1}% of {} probes)  \
             entries {}  slots {}  invalidations {}  ({:.2} B/key)",
            self.label,
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            probes,
            s.entries,
            s.slots,
            s.invalidations,
            (s.slots * 16) as f64 / keys as f64,
        );
    }

    /// Order faithfulness: `results[i]` must be the oracle's answer for
    /// `probes[i]`, including duplicates and misses.
    fn check_results(&self, results: &[Option<u64>], path: &str) {
        assert_eq!(results.len(), self.probes.len(), "{path}: result length");
        for (key, got) in self.probes.iter().zip(results) {
            assert_eq!(
                *got,
                self.oracle.get(key).copied(),
                "{}: {path} mismatch for {:?}",
                self.label,
                String::from_utf8_lossy(key)
            );
        }
    }
}

/// Reader-thread counts for the concurrent point-get sweep. `--threads N`
/// (or a comma list, `--threads 1,2,4,8`) overrides the default sweep.
fn arg_threads() -> Vec<usize> {
    arg_counts("--threads").unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Background writer threads churning the db during the threaded sweep
/// (`--writers W`); defaults to a quiescent, purely read-side sweep.
fn arg_writers() -> usize {
    arg_counts("--writers")
        .and_then(|v| v.first().copied())
        .unwrap_or(0)
}

fn arg_counts(flag: &str) -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            if let Some(v) = args.get(i + 1) {
                let parsed: Vec<usize> =
                    v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                if !parsed.is_empty() {
                    return Some(parsed);
                }
            }
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = arg_json_path();
    let threads = arg_threads();
    let writers = arg_writers();
    let n = if smoke { 20_000 } else { 500_000 };
    println!(
        "get_throughput (n = {n}{})",
        if smoke { ", smoke" } else { "" }
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();

    let workload = random_integer_keys(n, 0xbe7c);
    let bench = Workbench::build(
        "int_random",
        HyperionConfig::for_integers(),
        workload.keys.clone(),
        workload.values.clone(),
        0x9e7,
        true,
    );
    bench.run(smoke, &mut metrics);
    for &t in &threads {
        bench.run_threaded(t, writers, &mut metrics);
    }
    bench.report_optimistic();
    bench.report_shortcut();
    // A/B pair: the same workload with the shortcut disabled, so the JSON
    // carries shortcut-on/off metric pairs and `bench_gate` guards both.
    Workbench::build(
        "int_random_noshortcut",
        HyperionConfig {
            shortcut_capacity: 0,
            ..HyperionConfig::for_integers()
        },
        workload.keys.clone(),
        workload.values.clone(),
        0x9e7,
        false,
    )
    .run_lite(smoke, &mut metrics);
    // Backend A/B pair: the same workload through both container-scan
    // backends on the same commit (`_scalar` vs `_simd` rows), isolating
    // the key-lane scanner on the surfaces it accelerates (point descents
    // and resumed `get_many` walks).
    Workbench::build(
        "int_random_scalar",
        HyperionConfig::for_integers(),
        workload.keys.clone(),
        workload.values.clone(),
        0x9e7,
        false,
    )
    .run_lite(smoke, &mut metrics);
    Workbench::build(
        "int_random_simd",
        HyperionConfig {
            scan_backend: ScanBackend::Simd,
            ..HyperionConfig::for_integers()
        },
        workload.keys,
        workload.values,
        0x9e7,
        false,
    )
    .run_lite(smoke, &mut metrics);

    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: if smoke { n } else { 200_000 },
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0xc0ffee);
    let bench = Workbench::build(
        "str_ngram",
        HyperionConfig::for_strings(),
        workload.keys.clone(),
        workload.values.clone(),
        0x5712,
        true,
    );
    bench.run(smoke, &mut metrics);
    for &t in &threads {
        bench.run_threaded(t, writers, &mut metrics);
    }
    bench.report_optimistic();
    bench.report_shortcut();
    Workbench::build(
        "str_ngram_noshortcut",
        HyperionConfig {
            shortcut_capacity: 0,
            ..HyperionConfig::for_strings()
        },
        workload.keys.clone(),
        workload.values.clone(),
        0x5712,
        false,
    )
    .run_lite(smoke, &mut metrics);
    Workbench::build(
        "str_ngram_scalar",
        HyperionConfig::for_strings(),
        workload.keys.clone(),
        workload.values.clone(),
        0x5712,
        false,
    )
    .run_lite(smoke, &mut metrics);
    Workbench::build(
        "str_ngram_simd",
        HyperionConfig {
            scan_backend: ScanBackend::Simd,
            ..HyperionConfig::for_strings()
        },
        workload.keys,
        workload.values,
        0x5712,
        false,
    )
    .run_lite(smoke, &mut metrics);

    if let Some(path) = json_path {
        merge_into_file(&path, &metrics).expect("writing metric file");
        println!("metrics merged into {}", path.display());
    }
    println!("ok");
}

//! Figure 14: Hyperion's per-superbin memory characteristics (allocated vs.
//! empty chunks) after loading the string data set in ordered and randomized
//! insertion order.

use hyperion_bench::arg_keys;
use hyperion_core::{HyperionConfig, HyperionMap};
use hyperion_workloads::{NgramCorpus, NgramCorpusConfig};

fn run(tag: &str, keys: &[Vec<u8>], values: &[u64]) {
    let mut map = HyperionMap::with_config(HyperionConfig::for_strings());
    for (k, v) in keys.iter().zip(values) {
        map.put(k, *v);
    }
    let stats = map.memory_manager().stats();
    println!("\n-- {tag} --");
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "SB", "chunk B", "allocated", "empty", "alloc MiB", "empty MiB"
    );
    for sb in &stats.superbins {
        if sb.allocated_chunks == 0 && sb.empty_chunks == 0 {
            continue;
        }
        println!(
            "{:>3} {:>10} {:>12} {:>12} {:>14.2} {:>14.2}",
            sb.superbin,
            sb.chunk_size,
            sb.allocated_chunks,
            sb.empty_chunks,
            sb.allocated_bytes as f64 / (1024.0 * 1024.0),
            sb.empty_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "total: {} allocated chunks ({:.2} MiB), {} empty chunks ({:.2} MiB), heap fragmentation {:.2} MiB",
        stats.allocated_chunks(),
        stats.allocated_bytes() as f64 / (1024.0 * 1024.0),
        stats.empty_chunks(),
        stats.empty_bytes() as f64 / (1024.0 * 1024.0),
        stats.over_allocation_bytes() as f64 / (1024.0 * 1024.0),
    );
    let analysis = map.analyze();
    println!(
        "delta-encoded nodes: {}, embedded containers: {}, path-compressed bytes: {}",
        analysis.delta_encoded_nodes, analysis.embedded_containers, analysis.pc_suffix_bytes
    );
}

fn main() {
    let n = arg_keys(200_000);
    println!("Figure 14 reproduction: Hyperion memory characteristics, {n} string keys");
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: n,
        ..Default::default()
    });
    let ordered = &corpus.workload;
    let randomized = ordered.shuffled(0xf14);
    run("ordered string data set", &ordered.keys, &ordered.values);
    run(
        "randomized string data set",
        &randomized.keys,
        &randomized.values,
    );
}

//! Partitioner throughput under skew (EXPERIMENTS.md, "Partitioners under
//! skew").
//!
//! Compares the three `HyperionDb` partitioners on two multi-threaded
//! workloads:
//!
//! * **uniform** — random 8-byte integer keys (every first byte equally
//!   likely), the regime the paper's first-byte arena routing was designed
//!   for;
//! * **hot-prefix** — web-cache style string keys that *all* share the
//!   `user:` prefix, which serialises first-byte routing on a single shard.
//!
//! Writes go through `WriteBatch` (one lock acquisition per shard per batch)
//! and reads through `multi_get`, so the numbers isolate routing/contention
//! rather than per-op lock overhead.
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin partitioners [keys_per_thread]
//! ```

use hyperion_core::db::{
    FibonacciPartitioner, FirstBytePartitioner, HyperionDb, Partitioner, PrefixHashPartitioner,
    RangePartitioner, WriteBatch,
};
use hyperion_core::HyperionConfig;
use hyperion_workloads::Mt19937_64;
use std::sync::Arc;
use std::time::Instant;

const THREADS: u64 = 8;
const SHARDS: usize = 64;
const BATCH: usize = 256;

fn keys_for(workload: &str, thread: u64, n: u64) -> Vec<Vec<u8>> {
    let mut rng = Mt19937_64::new(0xbeef ^ thread);
    (0..n)
        .map(|_| match workload {
            "uniform" => rng.next_u64().to_be_bytes().to_vec(),
            // 100% of keys share one prefix; the tail is still random so the
            // tries stay balanced — only the *routing* is skewed.
            "hot-prefix" => format!("user:{:016x}", rng.next_u64()).into_bytes(),
            other => panic!("unknown workload {other}"),
        })
        .collect()
}

fn run(workload: &'static str, db: Arc<HyperionDb>, keys_per_thread: u64) -> (f64, f64) {
    // Phase 1: batched writes from all threads.
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let keys = keys_for(workload, t, keys_per_thread);
                let mut batch = WriteBatch::with_capacity(BATCH);
                for (i, key) in keys.iter().enumerate() {
                    batch.put(key, i as u64);
                    if batch.len() == BATCH {
                        db.apply(&batch).expect("apply");
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    db.apply(&batch).expect("apply");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let write_mops = (THREADS * keys_per_thread) as f64 / start.elapsed().as_secs_f64() / 1e6;

    // Phase 2: batched lookups of the same keys.
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let keys = keys_for(workload, t, keys_per_thread);
                let mut hits = 0usize;
                for chunk in keys.chunks(BATCH) {
                    let refs: Vec<&[u8]> = chunk.iter().map(|k| k.as_slice()).collect();
                    hits += db
                        .multi_get(&refs)
                        .expect("multi_get")
                        .iter()
                        .flatten()
                        .count();
                }
                assert_eq!(hits, keys.len(), "all keys must be found");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let read_mops = (THREADS * keys_per_thread) as f64 / start.elapsed().as_secs_f64() / 1e6;
    (write_mops, read_mops)
}

fn main() {
    let keys_per_thread: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!(
        "partitioner throughput, {THREADS} threads x {keys_per_thread} keys, \
         {SHARDS} shards, batches of {BATCH}\n"
    );
    println!(
        "{:<12} {:<16} {:>12} {:>12} {:>18}",
        "workload", "partitioner", "write Mops", "read Mops", "shard min/max keys"
    );
    for workload in ["uniform", "hot-prefix"] {
        // The prefix-hash dial: 2 bytes is one full container level — ideal
        // for fixed-width integer keys; 8 bytes reaches past the `user:`
        // prefix of the hot-prefix workload (any shorter prefix-hash
        // serialises it on one shard exactly like first-byte routing).
        let partitioners: Vec<(&'static str, Arc<dyn Partitioner>)> = vec![
            ("first-byte", Arc::new(FirstBytePartitioner)),
            ("fibonacci-hash", Arc::new(FibonacciPartitioner)),
            ("prefix-hash(2)", Arc::new(PrefixHashPartitioner::new(2))),
            ("prefix-hash(8)", Arc::new(PrefixHashPartitioner::new(8))),
            ("range", Arc::new(RangePartitioner)),
        ];
        for (name, partitioner) in partitioners {
            let db = Arc::new(
                HyperionDb::builder()
                    .shards(SHARDS)
                    .config(HyperionConfig::for_strings())
                    .partitioner_arc(partitioner)
                    .build(),
            );
            let (write_mops, read_mops) = run(workload, Arc::clone(&db), keys_per_thread);
            let lens = db.shard_lens();
            println!(
                "{:<12} {:<16} {:>12.2} {:>12.2} {:>8}/{}",
                workload,
                name,
                write_mops,
                read_mops,
                lens.iter().min().unwrap(),
                lens.iter().max().unwrap()
            );
        }
        println!();
    }
}

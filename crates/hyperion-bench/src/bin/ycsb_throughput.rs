//! `ycsb_throughput` — YCSB-style scenario benchmark over the network front
//! end.
//!
//! Drives a real `hyperion-server` (in-process on a loopback socket by
//! default, or an external one via `--addr`) with the classic YCSB mixes:
//!
//! * **A** — 50% reads / 50% updates, zipfian key choice;
//! * **B** — 95% reads / 5% updates, zipfian;
//! * **C** — 100% reads, zipfian;
//! * **D** — 95% read-latest / 5% inserts;
//! * **E** — 95% short range scans / 5% inserts.
//!
//! Each client thread owns a private TCP connection and a disjoint key
//! stripe (`{mix}/u{client}k{rank}`), runs **closed-loop** with a pipeline
//! window of in-flight requests (which is what exercises the server's
//! per-shard coalescing), and mix B additionally runs **open-loop** against
//! a scheduled arrival rate, measuring latency from the *scheduled* send
//! time so queueing delay is not hidden (no coordinated omission).
//!
//! Latencies feed the log-linear histogram of `hyperion_bench::hist`;
//! p50/p95/p99 land in the `--json` metric file next to the throughput rows
//! (`_us` metrics gate as lower-is-better).  With `--smoke` every response
//! is checked against a per-stripe `BTreeMap` oracle — valid even inside a
//! pipeline window because each stripe has a single writer and the server
//! executes same-key operations in arrival order — and the run asserts that
//! the measured coalescing group size stays above 1.
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin ycsb_throughput              # full
//! cargo run --release -p hyperion-bench --bin ycsb_throughput -- --smoke  # CI
//! cargo run --release -p hyperion-bench --bin ycsb_throughput -- \
//!     --addr 127.0.0.1:7401 --clients 16 --window 128 --mix b
//! ```

use hyperion_bench::hist::Hist;
use hyperion_bench::json::{arg_json_path, merge_into_file};
use hyperion_core::db::FibonacciPartitioner;
use hyperion_core::{HyperionConfig, HyperionDb};
use hyperion_server::{Client, Request, Response, Server, ServerConfig, StatsSnapshot};
use hyperion_workloads::{Mt19937_64, Zipf};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mix {
    A,
    B,
    C,
    D,
    E,
}

impl Mix {
    fn tag(self) -> &'static str {
        match self {
            Mix::A => "a",
            Mix::B => "b",
            Mix::C => "c",
            Mix::D => "d",
            Mix::E => "e",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Mix::A => "50% read / 50% update, zipfian",
            Mix::B => "95% read / 5% update, zipfian",
            Mix::C => "100% read, zipfian",
            Mix::D => "95% read-latest / 5% insert",
            Mix::E => "95% scan / 5% insert",
        }
    }

    /// Per-mille threshold below which an op is a *write* (update or
    /// insert); reads/scans above.
    fn write_per_mille(self) -> u64 {
        match self {
            Mix::A => 500,
            Mix::B | Mix::D | Mix::E => 50,
            Mix::C => 0,
        }
    }
}

#[derive(Clone)]
struct Opts {
    smoke: bool,
    addr: Option<String>,
    clients: usize,
    window: usize,
    records: usize,
    ops: usize,
    mixes: Vec<Mix>,
    /// Total scheduled arrival rate of the open-loop pass (ops/s).
    open_rate: u64,
    /// Client counts for the mix C reader-scaling sweep.
    client_sweep: Vec<usize>,
    /// Per-worker queue-depth cap for the embedded server (0 = server
    /// default).  Setting it small turns the open-loop pass into an
    /// overload run: requests over the cap are shed with `Overloaded`, the
    /// oracle is relaxed (shed writes never execute) and the shed rate is
    /// reported instead of asserted to be zero.
    queue_depth: usize,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut opts = Opts {
        smoke,
        addr: None,
        clients: if smoke { 4 } else { 8 },
        window: if smoke { 64 } else { 128 },
        records: if smoke { 2_000 } else { 20_000 },
        ops: if smoke { 4_000 } else { 50_000 },
        mixes: vec![Mix::A, Mix::B, Mix::C, Mix::D, Mix::E],
        open_rate: 40_000,
        client_sweep: vec![1, 2, 4, 8],
        queue_depth: 0,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| panic!("{flag} takes a value"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => opts.addr = Some(value(&args, &mut i, "--addr")),
            "--clients" => opts.clients = value(&args, &mut i, "--clients").parse().unwrap(),
            "--window" => opts.window = value(&args, &mut i, "--window").parse().unwrap(),
            "--records" => opts.records = value(&args, &mut i, "--records").parse().unwrap(),
            "--ops" => opts.ops = value(&args, &mut i, "--ops").parse().unwrap(),
            "--rate" => opts.open_rate = value(&args, &mut i, "--rate").parse().unwrap(),
            "--queue-depth" => {
                opts.queue_depth = value(&args, &mut i, "--queue-depth").parse().unwrap()
            }
            "--client-sweep" => {
                // An empty list ("--client-sweep ''") skips the sweep.
                opts.client_sweep = value(&args, &mut i, "--client-sweep")
                    .split(',')
                    .filter(|n| !n.trim().is_empty())
                    .map(|n| n.trim().parse().expect("--client-sweep takes counts"))
                    .collect();
            }
            "--mix" => {
                opts.mixes = value(&args, &mut i, "--mix")
                    .split(',')
                    .map(|m| match m {
                        "a" => Mix::A,
                        "b" => Mix::B,
                        "c" => Mix::C,
                        "d" => Mix::D,
                        "e" => Mix::E,
                        other => panic!("unknown mix {other:?} (want a,b,c,d,e)"),
                    })
                    .collect();
            }
            "--smoke" | "--json" => {} // --json consumed by arg_json_path
            flag if flag.starts_with("--")
                && args.get(i.saturating_sub(1)).map(|a| a.as_str()) != Some("--json") =>
            {
                panic!("unknown flag {flag}")
            }
            _ => {}
        }
        i += 1;
    }
    assert!(opts.clients >= 1 && opts.window >= 1 && opts.records >= 1);
    opts
}

/// What a pipelined request's response must look like (checked in smoke
/// runs; ignored otherwise).
enum Expected {
    Ok,
    Value(Option<u64>),
    Entries(Vec<(Vec<u8>, u64)>),
    Any,
}

struct Pending {
    issued: Instant,
    expected: Expected,
}

/// Per-client state for one mix run: a disjoint key stripe plus its oracle,
/// updated at *send* time (valid because the stripe has exactly one writer
/// and the server keeps same-key operations in arrival order).
struct Stripe {
    mix: Mix,
    client: usize,
    keys: Vec<Vec<u8>>,
    oracle: BTreeMap<Vec<u8>, u64>,
    seq: u64,
    rng: Mt19937_64,
    zipf: Zipf,
    check: bool,
}

impl Stripe {
    fn new(mix: Mix, client: usize, records: usize, check: bool) -> Stripe {
        let keys = (0..records).map(|r| stripe_key(mix, client, r)).collect();
        Stripe {
            mix,
            client,
            keys,
            oracle: BTreeMap::new(),
            seq: 0,
            rng: Mt19937_64::new(
                0x5c3_ba5e ^ (client as u64) << 8 ^ mix.tag().as_bytes()[0] as u64,
            ),
            zipf: Zipf::new(records, 0.99),
            check,
        }
    }

    fn next_value(&mut self) -> u64 {
        self.seq += 1;
        ((self.client as u64) << 48) | self.seq
    }

    /// Draws the next operation of the mix and updates the oracle for
    /// writes.  Returns the request plus its expected response.
    fn next_op(&mut self) -> (Request, Expected) {
        let roll = self.rng.next_u64() % 1000;
        if roll < self.mix.write_per_mille() {
            match self.mix {
                Mix::D | Mix::E => {
                    // Insert: extend the stripe with a fresh, larger rank.
                    let key = stripe_key(self.mix, self.client, self.keys.len());
                    self.keys.push(key.clone());
                    let value = self.next_value();
                    self.oracle.insert(key.clone(), value);
                    (Request::Put { key, value }, Expected::Ok)
                }
                _ => {
                    // Update in place, zipfian key.
                    let key = self.keys[self.zipf.sample(&mut self.rng)].clone();
                    let value = self.next_value();
                    self.oracle.insert(key.clone(), value);
                    (Request::Put { key, value }, Expected::Ok)
                }
            }
        } else if self.mix == Mix::E {
            // Short ascending scan inside the stripe.
            let at = self.zipf.sample(&mut self.rng) % self.keys.len();
            let start = self.keys[at].clone();
            let end = stripe_upper_bound(self.mix, self.client);
            let limit = 1 + (self.rng.next_u64() % 20) as u32;
            let expected = if self.check {
                Expected::Entries(
                    self.oracle
                        .range(start.clone()..end.clone())
                        .take(limit as usize)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                )
            } else {
                Expected::Any
            };
            (
                Request::Scan {
                    start,
                    end: Some(end),
                    limit,
                    reverse: false,
                },
                expected,
            )
        } else {
            // Read: zipfian over the stripe — for D skewed toward the most
            // recently inserted ranks (read-latest).
            let rank = match self.mix {
                Mix::D => {
                    let back = self.zipf.sample(&mut self.rng) % self.keys.len();
                    self.keys.len() - 1 - back
                }
                _ => self.zipf.sample(&mut self.rng),
            };
            let key = self.keys[rank].clone();
            let expected = if self.check {
                Expected::Value(self.oracle.get(&key).copied())
            } else {
                Expected::Any
            };
            (Request::Get { key }, expected)
        }
    }
}

fn stripe_key(mix: Mix, client: usize, rank: usize) -> Vec<u8> {
    format!("{}/u{client:02}k{rank:08}", mix.tag()).into_bytes()
}

/// Exclusive upper bound of a stripe's key space (`k` -> `l` after the
/// client digits, so inserts with any rank stay inside).
fn stripe_upper_bound(mix: Mix, client: usize) -> Vec<u8> {
    format!("{}/u{client:02}l", mix.tag()).into_bytes()
}

fn check_response(pending: &Pending, resp: &Response, context: &str) {
    match (&pending.expected, resp) {
        (Expected::Any, _) => {}
        (Expected::Ok, Response::Ok) => {}
        (Expected::Value(want), Response::Value(got)) => {
            assert_eq!(got, want, "{context}: stale or wrong read");
        }
        (Expected::Entries(want), Response::Entries(got)) => {
            assert_eq!(got, want, "{context}: scan diverged from oracle");
        }
        (_, other) => panic!("{context}: unexpected response {other:?}"),
    }
}

/// Drains one response, validates it, and records its latency.
fn drain_one(
    client: &mut Client,
    pending: &mut HashMap<u32, Pending>,
    hist: &mut Hist,
    context: &str,
) {
    let (id, resp) = client
        .recv()
        .unwrap_or_else(|e| panic!("{context}: recv: {e}"));
    let entry = pending
        .remove(&id)
        .unwrap_or_else(|| panic!("{context}: response for unknown id {id}"));
    check_response(&entry, &resp, context);
    hist.record(entry.issued.elapsed().as_nanos() as u64);
}

/// Pipelined load phase: populates this client's stripe.  Under an overload
/// configuration (`retry_shed`) the tiny worker queues shed some loads with
/// a retryable error; those puts are re-sent until they land, so the stripe
/// is always fully populated before the run phase.
fn load_stripe(
    client: &mut Client,
    stripe: &mut Stripe,
    window: usize,
    retry_shed: bool,
    context: &str,
) {
    fn drain(
        client: &mut Client,
        pending: &mut HashMap<u32, (Vec<u8>, u64)>,
        retry_shed: bool,
        context: &str,
    ) {
        let (id, resp) = client
            .recv()
            .unwrap_or_else(|e| panic!("{context}: recv: {e}"));
        let (key, value) = pending
            .remove(&id)
            .unwrap_or_else(|| panic!("{context}: response for unknown id {id}"));
        match resp {
            Response::Ok => {}
            Response::Error { code, .. } if retry_shed && code.is_retryable() => {
                std::thread::sleep(Duration::from_micros(200));
                let id = client.send(&Request::Put {
                    key: key.clone(),
                    value,
                });
                pending.insert(id, (key, value));
            }
            other => panic!("{context}: load answered {other:?}"),
        }
    }
    let mut pending: HashMap<u32, (Vec<u8>, u64)> = HashMap::new();
    for rank in 0..stripe.keys.len() {
        let key = stripe.keys[rank].clone();
        let value = stripe.next_value();
        stripe.oracle.insert(key.clone(), value);
        while pending.len() >= window {
            client.flush().expect("flush");
            drain(client, &mut pending, retry_shed, context);
        }
        let id = client.send(&Request::Put {
            key: key.clone(),
            value,
        });
        pending.insert(id, (key, value));
    }
    while !pending.is_empty() {
        client.flush().expect("flush");
        drain(client, &mut pending, retry_shed, context);
    }
}

/// Closed-loop run phase: keeps `window` requests in flight.
fn run_closed(
    client: &mut Client,
    stripe: &mut Stripe,
    ops: usize,
    window: usize,
    context: &str,
) -> Hist {
    let mut pending: HashMap<u32, Pending> = HashMap::new();
    let mut hist = Hist::new();
    for _ in 0..ops {
        let (req, expected) = stripe.next_op();
        // Scans carry no ordering guarantee against requests in flight on
        // other workers — in either direction — so each one runs as a
        // synchronous barrier: drain the window, send the scan alone, and
        // drain it too.  The price of an exact oracle, paid only by mix E.
        let barrier = matches!(req, Request::Scan { .. });
        if barrier && !pending.is_empty() {
            client.flush().expect("flush");
            while !pending.is_empty() {
                drain_one(client, &mut pending, &mut hist, context);
            }
        }
        while pending.len() >= window {
            client.flush().expect("flush");
            drain_one(client, &mut pending, &mut hist, context);
        }
        let id = client.send(&req);
        pending.insert(
            id,
            Pending {
                issued: Instant::now(),
                expected,
            },
        );
        if barrier {
            client.flush().expect("flush");
            while !pending.is_empty() {
                drain_one(client, &mut pending, &mut hist, context);
            }
        }
    }
    client.flush().expect("flush");
    while !pending.is_empty() {
        drain_one(client, &mut pending, &mut hist, context);
    }
    hist
}

/// Open-loop run phase: requests depart on a fixed schedule and latency is
/// measured from the *scheduled* departure, so server-side queueing during
/// overload is charged to the affected requests.
fn run_open(
    client: &mut Client,
    stripe: &mut Stripe,
    ops: usize,
    rate_per_client: f64,
    lenient: bool,
    context: &str,
) -> Hist {
    let mut pending: HashMap<u32, Pending> = HashMap::new();
    let mut hist = Hist::new();
    let interval = Duration::from_secs_f64(1.0 / rate_per_client.max(1.0));
    let start = Instant::now();
    let mut sent = 0usize;
    // Cap in-flight so a stalled server cannot buffer unbounded requests.
    let cap = 4096;
    while sent < ops || !pending.is_empty() {
        let due = sent < ops && start.elapsed() >= interval * sent as u32;
        if due && pending.len() < cap {
            let scheduled = start + interval * sent as u32;
            let (req, expected) = stripe.next_op();
            // Under a deliberate overload (tiny queue depth) any request
            // may come back `Overloaded` instead of its value, and a shed
            // write silently diverges the oracle — drop the exact checks.
            let expected = if lenient { Expected::Any } else { expected };
            // Same scan barrier as the closed loop (mix E only).
            let barrier = matches!(req, Request::Scan { .. });
            if barrier && !pending.is_empty() {
                client.flush().expect("flush");
                while !pending.is_empty() {
                    drain_one(client, &mut pending, &mut hist, context);
                }
            }
            let id = client.send(&req);
            pending.insert(
                id,
                Pending {
                    issued: scheduled,
                    expected,
                },
            );
            sent += 1;
            client.flush().expect("flush");
            if barrier {
                while !pending.is_empty() {
                    drain_one(client, &mut pending, &mut hist, context);
                }
            }
        } else if !pending.is_empty() {
            drain_one(client, &mut pending, &mut hist, context);
        } else {
            let next = start + interval * sent as u32;
            let now = Instant::now();
            if next > now {
                std::thread::sleep((next - now).min(Duration::from_millis(1)));
            }
        }
    }
    hist
}

/// Runs one mix across all client threads; returns the merged latency
/// histogram and the wall-clock seconds of the run phase.
fn run_mix(addr: &str, mix: Mix, opts: &Opts, open_loop: bool) -> (Hist, f64) {
    let rate_per_client = opts.open_rate as f64 / opts.clients as f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|c| {
                scope.spawn(move || {
                    let context = format!("mix {}/client {c}", mix.tag());
                    let mut client = Client::connect(addr).expect("connect");
                    let mut stripe = Stripe::new(mix, c, opts.records, opts.smoke);
                    load_stripe(
                        &mut client,
                        &mut stripe,
                        opts.window,
                        opts.queue_depth > 0,
                        &context,
                    );
                    let started = Instant::now();
                    let hist = if open_loop {
                        run_open(
                            &mut client,
                            &mut stripe,
                            opts.ops,
                            rate_per_client,
                            opts.queue_depth > 0,
                            &context,
                        )
                    } else {
                        run_closed(&mut client, &mut stripe, opts.ops, opts.window, &context)
                    };
                    (hist, started.elapsed().as_secs_f64())
                })
            })
            .collect();
        let mut merged = Hist::new();
        let mut wall: f64 = 0.0;
        for handle in handles {
            let (hist, secs) = handle.join().expect("client thread");
            merged.merge(&hist);
            wall = wall.max(secs);
        }
        (merged, wall)
    })
}

fn delta(after: &StatsSnapshot, before: &StatsSnapshot) -> StatsSnapshot {
    StatsSnapshot {
        requests: after.requests - before.requests,
        errors: after.errors - before.errors,
        read_groups: after.read_groups - before.read_groups,
        read_ops: after.read_ops - before.read_ops,
        read_keys: after.read_keys - before.read_keys,
        write_groups: after.write_groups - before.write_groups,
        write_ops: after.write_ops - before.write_ops,
        write_keys: after.write_keys - before.write_keys,
        scans: after.scans - before.scans,
        shortcut_hits: after.shortcut_hits - before.shortcut_hits,
        shortcut_misses: after.shortcut_misses - before.shortcut_misses,
        shortcut_invalidations: after.shortcut_invalidations - before.shortcut_invalidations,
        // Occupancy is a gauge, not a counter: report the end-of-window value.
        shortcut_entries: after.shortcut_entries,
        optimistic_hits: after.optimistic_hits - before.optimistic_hits,
        optimistic_retries: after.optimistic_retries - before.optimistic_retries,
        optimistic_fallbacks: after.optimistic_fallbacks - before.optimistic_fallbacks,
        shed_requests: after.shed_requests - before.shed_requests,
        evicted_slow_clients: after.evicted_slow_clients - before.evicted_slow_clients,
        deadline_closed_conns: after.deadline_closed_conns - before.deadline_closed_conns,
        rejected_connections: after.rejected_connections - before.rejected_connections,
        failpoint_trips: after.failpoint_trips - before.failpoint_trips,
        poison_recoveries: after.poison_recoveries - before.poison_recoveries,
        // Build-time identity, not a counter: carry the end-of-window value.
        stats_version: after.stats_version,
        scan_kernel: after.scan_kernel,
    }
}

fn main() {
    let opts = parse_opts();
    let json_path = arg_json_path();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    // In-process server on an ephemeral loopback port unless --addr points
    // at an external one.
    let embedded = if opts.addr.is_none() {
        let db = Arc::new(
            HyperionDb::builder()
                .shards(8)
                .config(HyperionConfig::for_strings())
                .partitioner(FibonacciPartitioner)
                .build(),
        );
        let mut config = ServerConfig::default();
        if opts.queue_depth > 0 {
            config.max_queue_depth = opts.queue_depth;
        }
        Some(Server::start(db, "127.0.0.1:0", config).expect("start server"))
    } else {
        None
    };
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => embedded.as_ref().unwrap().local_addr().to_string(),
    };
    let mut control = Client::connect(&addr).expect("connect control client");

    println!(
        "ycsb_throughput against {addr} ({} clients, window {}, {} records x {} ops per client{})",
        opts.clients,
        opts.window,
        opts.records,
        opts.ops,
        if opts.smoke { ", smoke + oracle" } else { "" }
    );

    // An overload run (--queue-depth) is an open-loop shedding experiment:
    // the closed-loop oracles assume no request is ever dropped, so those
    // passes (and the reader sweep) only run at the default queue depth.
    let overload = opts.queue_depth > 0;
    if overload {
        println!(
            "overload mode: per-worker queue depth capped at {}; \
             closed-loop passes skipped",
            opts.queue_depth
        );
    }

    for &mix in opts.mixes.iter().filter(|_| !overload) {
        let before = control.stats().expect("stats");
        let (hist, wall) = run_mix(&addr, mix, &opts, false);
        let after = control.stats().expect("stats");
        let d = delta(&after, &before);
        let total_ops = opts.clients * opts.ops;
        let kops = total_ops as f64 / wall / 1e3;
        println!(
            "mix {} closed  ({:<28}) {:>8.1} kops  {}  read-group {:.2}  write-group {:.2}  \
             optimistic {}/{}/{} (hit/retry/fallback)",
            mix.tag().to_uppercase(),
            mix.describe(),
            kops,
            hist.summary_us(),
            d.avg_read_group(),
            d.avg_write_group(),
            d.optimistic_hits,
            d.optimistic_retries,
            d.optimistic_fallbacks,
        );
        assert_eq!(d.errors, 0, "mix {}: server reported errors", mix.tag());
        let prefix = format!("ycsb/{}_closed", mix.tag());
        metrics.push((format!("{prefix}_mops"), total_ops as f64 / wall / 1e6));
        metrics.extend(hist.percentile_metrics(&prefix));
        // The acceptance bar for the pipelined zipfian read mixes: requests
        // must demonstrably coalesce into multi-key groups.
        if opts.window >= 8 && opts.clients >= 2 && mix == Mix::B {
            assert!(
                d.avg_read_group() > 1.0,
                "mix B: pipelined reads did not coalesce ({d:?})"
            );
        }
    }

    // Open-loop pass: mix B against a scheduled arrival rate.
    if opts.mixes.contains(&Mix::B) {
        let before = control.stats().expect("stats");
        let (hist, wall) = run_mix(&addr, Mix::B, &opts, true);
        let after = control.stats().expect("stats");
        let d = delta(&after, &before);
        let total_ops = opts.clients * opts.ops;
        let shed_rate = if d.requests == 0 {
            0.0
        } else {
            d.shed_requests as f64 / d.requests as f64
        };
        println!(
            "mix B open    ({:>6.0} ops/s scheduled     ) {:>8.1} kops  {}  read-group {:.2}  \
             shed {} ({:.2}%)",
            opts.open_rate as f64,
            total_ops as f64 / wall / 1e3,
            hist.summary_us(),
            d.avg_read_group(),
            d.shed_requests,
            shed_rate * 100.0,
        );
        if opts.queue_depth > 0 {
            // Overload run: the only acceptable errors are typed sheds.
            assert_eq!(
                d.errors, d.shed_requests,
                "open loop: non-shed errors under overload"
            );
            metrics.push(("ycsb/b_open_shed_rate".into(), shed_rate));
        } else {
            assert_eq!(d.errors, 0, "open loop: server reported errors");
        }
        metrics.extend(hist.percentile_metrics("ycsb/b_open"));
    }

    // Reader-scaling sweep: mix C (100% zipfian reads) re-run across client
    // counts, emitting a `ycsb/c_closed_c{N}_mops` curve.  Every GET flows
    // through the optimistic seqlock path on the server, so the per-window
    // STATS delta also shows how many reads validated lock-free versus
    // retried or fell back to the shard mutex.
    if opts.mixes.contains(&Mix::C) && !opts.client_sweep.is_empty() && !overload {
        println!("mix C client sweep (closed loop):");
        for &n in &opts.client_sweep {
            let sweep_opts = Opts {
                clients: n,
                ..opts.clone()
            };
            let before = control.stats().expect("stats");
            let (hist, wall) = run_mix(&addr, Mix::C, &sweep_opts, false);
            let after = control.stats().expect("stats");
            let d = delta(&after, &before);
            let total_ops = n * opts.ops;
            println!(
                "  c{n:<2} {:>8.1} kops  {}  optimistic hits {} retries {} fallbacks {}",
                total_ops as f64 / wall / 1e3,
                hist.summary_us(),
                d.optimistic_hits,
                d.optimistic_retries,
                d.optimistic_fallbacks,
            );
            assert_eq!(d.errors, 0, "mix C sweep (c{n}): server reported errors");
            metrics.push((
                format!("ycsb/c_closed_c{n}_mops"),
                total_ops as f64 / wall / 1e6,
            ));
        }
    }

    if let Some(path) = json_path {
        merge_into_file(&path, &metrics).expect("writing metric file");
        println!("metrics merged into {}", path.display());
    }
    println!("ok");
}

//! Figure 16: allocation distribution of Hyperion vs. Hyperion_p (key
//! pre-processing enabled) after inserting random integer keys.

use hyperion_bench::arg_keys;
use hyperion_core::{HyperionConfig, HyperionMap};
use hyperion_workloads::random_integer_keys;

fn run(tag: &str, config: HyperionConfig, keys: &[Vec<u8>], values: &[u64]) {
    let mut map = HyperionMap::with_config(config);
    for (k, v) in keys.iter().zip(values) {
        map.put(k, *v);
    }
    let stats = map.memory_manager().stats();
    println!("\n-- {tag} --");
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>14}",
        "SB", "chunk B", "allocated", "empty", "alloc MiB"
    );
    for sb in &stats.superbins {
        if sb.allocated_chunks == 0 && sb.empty_chunks == 0 {
            continue;
        }
        println!(
            "{:>3} {:>10} {:>12} {:>12} {:>14.2}",
            sb.superbin,
            sb.chunk_size,
            sb.allocated_chunks,
            sb.empty_chunks,
            sb.allocated_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!(
        "total chunks: {} allocated / {} empty; footprint {:.2} MiB ({:.2} B/key)",
        stats.allocated_chunks(),
        stats.empty_chunks(),
        map.footprint_bytes() as f64 / (1024.0 * 1024.0),
        map.footprint_bytes() as f64 / keys.len() as f64,
    );
}

fn main() {
    let n = arg_keys(400_000);
    println!("Figure 16 reproduction: Hyperion vs Hyperion_p, {n} random integer keys");
    let workload = random_integer_keys(n, 0xf16);
    run(
        "Hyperion (no pre-processing)",
        HyperionConfig::for_integers(),
        &workload.keys,
        &workload.values,
    );
    run(
        "Hyperion_p (zero-bit injection)",
        HyperionConfig::with_preprocessing(),
        &workload.keys,
        &workload.values,
    );
}

//! `put_throughput` — write-path microbenchmark and CI smoke check.
//!
//! Measures Hyperion put throughput on the workloads of Tables 1–2 (random
//! u64 integer keys, n-gram string keys), both as point puts and as sorted
//! batch application, and verifies the single-pass write-engine contract:
//! an adversarial keyset (deep shared prefixes forcing embedded-container
//! ejections and container splits) must complete without the old
//! "put did not converge (structural loop)" abort — structural changes are
//! handled in place by the write cursor, surfaced as a typed error if the
//! engine ever fails to converge.
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin put_throughput            # full
//! cargo run --release -p hyperion-bench --bin put_throughput -- --smoke # CI
//! ```

use hyperion_bench::hist::Hist;
use hyperion_bench::json::{arg_json_path, merge_into_file};
use hyperion_bench::{mops, timed_best_of};
use hyperion_core::{HyperionConfig, HyperionMap};
use hyperion_workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};

/// Each timed closure rebuilds its map from scratch, so the best-of-N
/// noise damping runs twice, not three times.
fn timed<T>(f: impl FnMut() -> T) -> (T, f64) {
    timed_best_of(2, f)
}

/// Builds a fresh map from `pairs` timing every individual put, and merges
/// the p50/p95/p99 of the distribution into `metrics` under `prefix` (`_us`
/// suffix: `bench_gate` treats latency as lower-is-better).  The throughput
/// rows average the whole loop; this is where write-path tail stalls
/// (splits, ejections, slab growth) become visible.
fn latency_pass(
    config: HyperionConfig,
    pairs: &[(&[u8], u64)],
    prefix: &str,
    metrics: &mut Vec<(String, f64)>,
) {
    let mut map = HyperionMap::with_config(config);
    let mut hist = Hist::new();
    for &(k, v) in pairs {
        let start = std::time::Instant::now();
        map.put(k, v);
        hist.record(start.elapsed().as_nanos() as u64);
    }
    assert_eq!(hist.count() as usize, pairs.len());
    println!("{prefix} latency: {}", hist.summary_us());
    metrics.extend(hist.percentile_metrics(prefix));
}

fn bench_integer(n: usize, metrics: &mut Vec<(String, f64)>) {
    let workload = random_integer_keys(n, 0xbe7c);
    let pairs: Vec<(&[u8], u64)> = workload
        .keys
        .iter()
        .map(|k| k.as_slice())
        .zip(workload.values.iter().copied())
        .collect();

    // Point puts, random order.
    let (map, secs) = timed(|| {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        for &(k, v) in &pairs {
            map.put(k, v);
        }
        map
    });
    assert_eq!(map.len(), n);
    println!(
        "int_random/point_put      {n:>8} keys  {:>8.3} Mops",
        mops(n, secs)
    );
    metrics.push(("put/int_random_point_mops".into(), mops(n, secs)));
    metrics.push((
        "put/int_random_bpk".into(),
        map.footprint_bytes() as f64 / n as f64,
    ));

    // Batch puts: one sorted `put_many` application over the same keyset.
    let (map, secs) = timed(|| {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        map.put_many(pairs.iter().copied());
        map
    });
    assert_eq!(map.len(), n);
    println!(
        "int_random/batch_put      {n:>8} keys  {:>8.3} Mops",
        mops(n, secs)
    );
    metrics.push(("put/int_random_batch_mops".into(), mops(n, secs)));

    // Point puts in pre-sorted key order (locality best case).
    let mut sorted = pairs.clone();
    sorted.sort();
    let (map, secs) = timed(|| {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        for &(k, v) in &sorted {
            map.put(k, v);
        }
        map
    });
    assert_eq!(map.len(), n);
    println!(
        "int_sorted/point_put      {n:>8} keys  {:>8.3} Mops",
        mops(n, secs)
    );
    metrics.push(("put/int_sorted_point_mops".into(), mops(n, secs)));

    latency_pass(
        HyperionConfig::for_integers(),
        &pairs,
        "put/int_random_point",
        metrics,
    );
}

fn bench_strings(n: usize, metrics: &mut Vec<(String, f64)>) {
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: n,
        ..Default::default()
    });
    let workload = corpus.workload.shuffled(0xc0ffee);
    let pairs: Vec<(&[u8], u64)> = workload
        .keys
        .iter()
        .map(|k| k.as_slice())
        .zip(workload.values.iter().copied())
        .collect();
    let n = pairs.len();

    let (map, secs) = timed(|| {
        let mut map = HyperionMap::with_config(HyperionConfig::for_strings());
        for &(k, v) in &pairs {
            map.put(k, v);
        }
        map
    });
    let len = map.len();
    println!(
        "str_ngram/point_put       {n:>8} keys  {:>8.3} Mops",
        mops(n, secs)
    );
    metrics.push(("put/str_ngram_point_mops".into(), mops(n, secs)));
    metrics.push((
        "put/str_ngram_bpk".into(),
        map.footprint_bytes() as f64 / len as f64,
    ));

    let (map, secs) = timed(|| {
        let mut map = HyperionMap::with_config(HyperionConfig::for_strings());
        map.put_many(pairs.iter().copied());
        map
    });
    assert_eq!(map.len(), len);
    println!(
        "str_ngram/batch_put       {n:>8} keys  {:>8.3} Mops",
        mops(n, secs)
    );
    metrics.push(("put/str_ngram_batch_mops".into(), mops(n, secs)));

    latency_pass(
        HyperionConfig::for_strings(),
        &pairs,
        "put/str_ngram_point",
        metrics,
    );
}

/// Adversarial keyset: long keys sharing deep prefixes force path-compressed
/// rewrites, embedded-container growth, ejections and splits — the shapes
/// that drove the old write path through its up-to-32-attempt retry loop.
fn smoke_structural(n: usize) {
    let mut map = HyperionMap::new();
    let mut oracle = std::collections::BTreeMap::new();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..n as u64 {
        // Deep shared prefixes with a fanning tail.
        let key = format!(
            "tenant/{:02}/bucket/{:03}/object-{:06}",
            step() % 4,
            step() % 64,
            step() % 50_000
        )
        .into_bytes();
        let v = step();
        // Single-pass engine contract: structural changes (ejects, splits,
        // gap growth) never bubble up as an error on this workload.
        map.try_put(&key, v)
            .expect("write engine failed to converge");
        oracle.insert(key, v);
        if i % 3 == 0 {
            let dead = format!("tenant/{:02}/bucket/{:03}/x", step() % 4, step() % 64);
            map.delete(dead.as_bytes());
            oracle.remove(dead.as_bytes());
        }
    }
    assert_eq!(map.len(), oracle.len(), "length diverged from oracle");
    for (k, v) in &oracle {
        assert_eq!(
            map.get(k),
            Some(*v),
            "lost {:?}",
            String::from_utf8_lossy(k)
        );
    }
    map.validate_structure()
        .expect("container invariants violated");
    let counters = map.counters();
    println!(
        "structural smoke: {} keys, {} ejections, {} splits — single-pass engine converged",
        map.len(),
        counters.ejections,
        counters.splits
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = arg_json_path();
    let n = if smoke { 20_000 } else { 200_000 };
    println!(
        "put_throughput (n = {n}{})",
        if smoke { ", smoke" } else { "" }
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    bench_integer(n, &mut metrics);
    bench_strings(n, &mut metrics);
    smoke_structural(n.min(50_000));
    if let Some(path) = json_path {
        merge_into_file(&path, &metrics).expect("writing metric file");
        println!("metrics merged into {}", path.display());
    }
    println!("ok");
}

//! `scan_throughput` — ordered-traversal microbenchmark and CI smoke check.
//!
//! Measures the cursor engine in both directions on random u64 integer keys:
//!
//! * **forward / reverse full scans** over `HyperionMap` (`iter()` vs
//!   `iter().rev()`, i.e. the frame-stack cursor vs the checkpointing
//!   backward cursor);
//! * **forward / reverse merged scans** over a sharded `HyperionDb`
//!   (`DbScan` min-heap vs max-heap hand-over-hand merge);
//! * **`last` / `pred` point queries** against the red-black tree baseline
//!   (the ordered structure the paper's `std::map` rows stand for);
//! * the **RB-tree full scan** as the ordered-baseline scan reference.
//!
//! With `--smoke` the run shrinks to 100 k keys and every traversal is
//! checked against a `BTreeMap` oracle (full order, bounded ranges, reverse
//! prefixes, two-ended iteration).  With `--json <path>` the Mops and B/key
//! metrics merge into the flat metric file next to `put_throughput` /
//! `get_throughput` (see `hyperion_bench::json`).
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin scan_throughput             # full
//! cargo run --release -p hyperion-bench --bin scan_throughput -- --smoke # CI
//! ```

use hyperion_baselines::RedBlackTree;
use hyperion_bench::json::{arg_json_path, merge_into_file};
use hyperion_bench::{mops, timed_best_of};
use hyperion_core::db::{HyperionDb, RangePartitioner};
use hyperion_core::{HyperionConfig, HyperionMap, OrderedRead, ScanBackend};
use hyperion_workloads::{random_integer_keys, Mt19937_64};
use std::collections::BTreeMap;

const DB_SHARDS: usize = 8;

fn timed<T>(f: impl FnMut() -> T) -> (T, f64) {
    timed_best_of(3, f)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = arg_json_path();
    let n = if smoke { 100_000 } else { 500_000 };
    println!(
        "scan_throughput (n = {n}{})",
        if smoke { ", smoke" } else { "" }
    );

    let workload = random_integer_keys(n, 0x5ca9);
    let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
    map.put_many(
        workload
            .keys
            .iter()
            .map(|k| k.as_slice())
            .zip(workload.values.iter().copied()),
    );
    let db = HyperionDb::builder()
        .shards(DB_SHARDS)
        .config(HyperionConfig::for_integers())
        .partitioner(RangePartitioner)
        .build();
    let mut rb = RedBlackTree::new();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        db.put(k, *v).expect("db put");
        hyperion_core::KvWrite::put(&mut rb, k, *v);
    }
    let oracle: BTreeMap<Vec<u8>, u64> = workload
        .keys
        .iter()
        .cloned()
        .zip(workload.values.iter().copied())
        .collect();
    let n = oracle.len();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let report = |label: &str, keys: usize, secs: f64, metrics: &mut Vec<(String, f64)>| {
        let rate = mops(keys, secs);
        println!("{label:<26} {keys:>8} keys  {rate:>8.3} Mops");
        metrics.push((format!("scan/{label}_mops"), rate));
    };

    // Forward and reverse full scans over the map.
    let (fwd, secs) = timed(|| map.iter().collect::<Vec<_>>());
    assert_eq!(fwd.len(), n);
    report("map_fwd", n, secs, &mut metrics);
    let (rev, secs) = timed(|| map.iter().rev().collect::<Vec<_>>());
    assert_eq!(rev.len(), n);
    report("map_rev", n, secs, &mut metrics);

    // Merged scans over the sharded front end, both directions.
    let (got, secs) = timed(|| db.iter().count());
    assert_eq!(got, n);
    report("db_fwd", n, secs, &mut metrics);
    let (got, secs) = timed(|| db.iter_rev().count());
    assert_eq!(got, n);
    report("db_rev", n, secs, &mut metrics);

    // The RB-tree baseline scan (the paper's std::map stand-in).
    let (got, secs) = timed(|| {
        let mut count = 0usize;
        rb.for_each_from(&[], &mut |_, _| {
            count += 1;
            true
        });
        count
    });
    assert_eq!(got, n);
    report("rbtree_fwd", n, secs, &mut metrics);

    // last/pred point queries: Hyperion reverse cursor vs RB-tree descent.
    let queries = (n / 4).max(1);
    let mut rng = Mt19937_64::new(0x9ed);
    let probes: Vec<Vec<u8>> = (0..queries)
        .map(|_| rng.next_u64().to_be_bytes().to_vec())
        .collect();
    let (hits, secs) = timed(|| probes.iter().filter(|p| map.pred(p).is_some()).count());
    report("map_pred", queries, secs, &mut metrics);
    // Successor-style seeks: cursor repositioning (shortcut-seeded descent
    // when the hashed shortcut layer is enabled) plus one forward step.
    let (seek_hits, secs) = timed(|| {
        let mut cursor = map.cursor();
        probes
            .iter()
            .filter(|p| {
                cursor.seek(p);
                cursor.next().is_some()
            })
            .count()
    });
    assert!(seek_hits <= queries);
    report("map_seek", queries, secs, &mut metrics);
    let (rb_hits, secs) = timed(|| {
        probes
            .iter()
            .filter(|p| OrderedRead::pred(&rb, p).is_some())
            .count()
    });
    assert_eq!(hits, rb_hits, "pred hit counts diverge");
    report("rbtree_pred", queries, secs, &mut metrics);

    // Backend A/B: the same surfaces through both container-scan backends.
    // The unsuffixed `map_*` rows above run the default scalar backend and
    // stay for baseline continuity; the explicit `_scalar`/`_simd` pairs
    // below are measured on same-commit twins so `bench_gate` guards both
    // kernels.  Seeks and reverse scans are where the key lanes act (lane
    // lower-bound seeding, lane-served checkpoint passes); forward full
    // scans walk the stream linearly on both backends.
    let mut simd_map = HyperionMap::with_config(HyperionConfig {
        scan_backend: ScanBackend::Simd,
        ..HyperionConfig::for_integers()
    });
    simd_map.put_many(
        workload
            .keys
            .iter()
            .map(|k| k.as_slice())
            .zip(workload.values.iter().copied()),
    );
    for (backend, m) in [("scalar", &map), ("simd", &simd_map)] {
        let (fwd, secs) = timed(|| m.iter().collect::<Vec<_>>());
        assert_eq!(fwd.len(), n);
        report(&format!("map_fwd_{backend}"), n, secs, &mut metrics);
        let (rev, secs) = timed(|| m.iter().rev().count());
        assert_eq!(rev, n);
        report(&format!("map_rev_{backend}"), n, secs, &mut metrics);
        let (hits_b, secs) = timed(|| probes.iter().filter(|p| m.pred(p).is_some()).count());
        assert_eq!(hits_b, hits, "{backend}: pred hits diverge from scalar");
        report(&format!("map_pred_{backend}"), queries, secs, &mut metrics);
        let (seek_hits_b, secs) = timed(|| {
            let mut cursor = m.cursor();
            probes
                .iter()
                .filter(|p| {
                    cursor.seek(p);
                    cursor.next().is_some()
                })
                .count()
        });
        assert_eq!(seek_hits_b, seek_hits, "{backend}: seek hits diverge");
        report(&format!("map_seek_{backend}"), queries, secs, &mut metrics);
    }

    if smoke {
        // The SIMD twin must serve the identical ordered view.
        let simd_fwd: Vec<_> = simd_map.iter().collect();
        let expected: Vec<_> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(simd_fwd, expected, "simd map full scan diverges");
    }

    if smoke {
        oracle_checks(&map, &db, &rb, &oracle);
        println!("oracle checks passed");
    }

    if let Some(path) = json_path {
        merge_into_file(&path, &metrics).expect("writing metric file");
        println!("metrics merged into {}", path.display());
    }
    println!("ok");
}

/// Every reverse traversal against the `BTreeMap` oracle: full scans, bounded
/// reverse ranges, reverse prefixes, two-ended iteration and `last`/`pred`.
fn oracle_checks(
    map: &HyperionMap,
    db: &HyperionDb,
    rb: &RedBlackTree,
    oracle: &BTreeMap<Vec<u8>, u64>,
) {
    let expected_rev: Vec<(Vec<u8>, u64)> =
        oracle.iter().rev().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(
        map.iter().rev().collect::<Vec<_>>(),
        expected_rev,
        "map reverse scan"
    );
    assert_eq!(
        db.iter_rev().collect::<Vec<_>>(),
        expected_rev,
        "db reverse scan"
    );
    assert_eq!(map.last(), expected_rev.first().cloned(), "map last");
    assert_eq!(
        OrderedRead::last(db),
        expected_rev.first().cloned(),
        "db last"
    );
    assert_eq!(
        OrderedRead::last(rb),
        expected_rev.first().cloned(),
        "rb last"
    );

    // Bounded reverse ranges at the key-space quartiles.
    let bounds: Vec<Vec<u8>> = (0..=4u64)
        .map(|i| (i.wrapping_mul(u64::MAX / 4)).to_be_bytes().to_vec())
        .collect();
    for pair in bounds.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        let expected: Vec<(Vec<u8>, u64)> = oracle
            .range(lo.clone()..hi.clone())
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(
            map.range(&lo[..]..&hi[..]).rev().collect::<Vec<_>>(),
            expected,
            "map reverse range"
        );
        assert_eq!(
            db.range_rev(&lo[..]..&hi[..]).collect::<Vec<_>>(),
            expected,
            "db reverse range"
        );
        // pred at the boundary agrees everywhere.
        let expected_pred = oracle
            .range(..lo.clone())
            .next_back()
            .map(|(k, v)| (k.clone(), *v));
        assert_eq!(map.pred(lo), expected_pred, "map pred");
        assert_eq!(OrderedRead::pred(db, lo), expected_pred, "db pred");
        assert_eq!(OrderedRead::pred(rb, lo), expected_pred, "rb pred");
    }

    // Reverse prefixes on the first byte.
    for first in [0x00u8, 0x42, 0x80, 0xff] {
        let mut expected: Vec<Vec<u8>> = oracle
            .keys()
            .filter(|k| k.first() == Some(&first))
            .cloned()
            .collect();
        expected.reverse();
        assert_eq!(
            map.prefix(&[first])
                .rev()
                .map(|(k, _)| k)
                .collect::<Vec<_>>(),
            expected,
            "map reverse prefix {first:#x}"
        );
        assert_eq!(
            db.prefix_rev(&[first]).map(|(k, _)| k).collect::<Vec<_>>(),
            expected,
            "db reverse prefix {first:#x}"
        );
    }

    // Two-ended iteration covers every key exactly once.
    let mut iter = map.iter();
    let mut front = Vec::new();
    let mut back = Vec::new();
    while let Some(pair) = iter.next() {
        front.push(pair);
        match iter.next_back() {
            Some(pair) => back.push(pair),
            None => break,
        }
    }
    back.reverse();
    front.extend(back);
    let all: Vec<(Vec<u8>, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(front, all, "two-ended iteration");
}

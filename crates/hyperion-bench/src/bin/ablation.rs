//! Ablation study: the contribution of each Hyperion design feature (delta
//! encoding, jump successors, jump tables, container splits, key
//! pre-processing) to throughput and memory consumption, as discussed in
//! Sections 3.3, 4.3 and 4.4 of the paper.

use hyperion_bench::arg_keys;
use hyperion_core::{HyperionConfig, HyperionMap};
use hyperion_workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig, Workload};
use std::time::Instant;

fn run(tag: &str, config: HyperionConfig, workload: &Workload) {
    let mut map = HyperionMap::with_config(config);
    let start = Instant::now();
    for (k, v) in workload.keys.iter().zip(&workload.values) {
        map.put(k, *v);
    }
    let put_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for k in &workload.keys {
        std::hint::black_box(map.get(k));
    }
    let get_secs = start.elapsed().as_secs_f64();
    let n = workload.len() as f64;
    let analysis = map.analyze();
    println!(
        "{:<26} {:>9.3} {:>9.3} {:>10.2} {:>10} {:>8} {:>8}",
        tag,
        n / put_secs / 1e6,
        n / get_secs / 1e6,
        map.footprint_bytes() as f64 / n,
        analysis.delta_encoded_nodes,
        analysis.ejections,
        analysis.splits,
    );
}

fn main() {
    let n = arg_keys(200_000);
    println!("Ablation study over {n} keys per workload");
    println!(
        "{:<26} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "configuration", "puts M/s", "gets M/s", "B/key", "delta", "ejects", "splits"
    );
    let workloads = [
        ("random integers", random_integer_keys(n, 0xab1)),
        (
            "2-gram strings",
            NgramCorpus::generate(&NgramCorpusConfig {
                entries: n,
                ..Default::default()
            })
            .workload
            .shuffled(0xab2),
        ),
    ];
    for (wname, workload) in &workloads {
        println!("--- workload: {wname} ---");
        run("full (default)", HyperionConfig::for_integers(), workload);
        run(
            "no delta encoding",
            HyperionConfig {
                delta_encoding: false,
                ..HyperionConfig::for_integers()
            },
            workload,
        );
        run(
            "no jump successors",
            HyperionConfig {
                jump_successor: false,
                ..HyperionConfig::for_integers()
            },
            workload,
        );
        run(
            "no jump tables",
            HyperionConfig {
                tnode_jump_table: false,
                container_jump_table: false,
                ..HyperionConfig::for_integers()
            },
            workload,
        );
        run(
            "no container splits",
            HyperionConfig {
                container_split: false,
                ..HyperionConfig::for_integers()
            },
            workload,
        );
        run(
            "no optimisations",
            HyperionConfig::baseline_no_optimizations(),
            workload,
        );
        if *wname == "random integers" {
            run(
                "key pre-processing",
                HyperionConfig::with_preprocessing(),
                workload,
            );
        }
    }
}

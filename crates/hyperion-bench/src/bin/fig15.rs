//! Figure 15: put/get throughput as a function of the index size, plus the
//! final memory footprint, for the integer data sets.

use hyperion_bench::{arg_keys, make_store, INTEGER_STORES};
use hyperion_workloads::{random_integer_keys, sequential_integer_keys, Workload};
use std::time::Instant;

fn series(workload: &Workload, tag: &str) {
    const SAMPLES: usize = 10;
    println!("\n-- {tag}: puts per second (millions) vs index size --");
    print!("{:<14}", "store");
    for s in 1..=SAMPLES {
        print!(" {:>9}", format!("{}%", s * 100 / SAMPLES));
    }
    println!(" {:>12}", "memory MiB");
    for name in INTEGER_STORES {
        if *name == "hyperion_p" && !tag.contains("random") {
            continue;
        }
        let mut store = make_store(name);
        let chunk = workload.len() / SAMPLES;
        print!("{:<14}", name);
        for s in 0..SAMPLES {
            let slice = s * chunk..(s + 1) * chunk;
            let start = Instant::now();
            for i in slice {
                store.put(&workload.keys[i], workload.values[i]);
            }
            let secs = start.elapsed().as_secs_f64();
            print!(" {:>9.3}", chunk as f64 / secs / 1e6);
        }
        println!(
            " {:>12.1}",
            store.memory_footprint() as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\n-- {tag}: gets per second (millions) vs retrieved elements --");
    print!("{:<14}", "store");
    for s in 1..=SAMPLES {
        print!(" {:>9}", format!("{}%", s * 100 / SAMPLES));
    }
    println!();
    for name in INTEGER_STORES {
        if *name == "hyperion_p" && !tag.contains("random") {
            continue;
        }
        let mut store = make_store(name);
        for (k, v) in workload.keys.iter().zip(&workload.values) {
            store.put(k, *v);
        }
        let chunk = workload.len() / SAMPLES;
        print!("{:<14}", name);
        for s in 0..SAMPLES {
            let slice = s * chunk..(s + 1) * chunk;
            let start = Instant::now();
            let mut hits = 0;
            for i in slice {
                if store.get(&workload.keys[i]).is_some() {
                    hits += 1;
                }
            }
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(hits, chunk);
            print!(" {:>9.3}", chunk as f64 / secs / 1e6);
        }
        println!();
    }
}

fn main() {
    let n = arg_keys(400_000);
    println!("Figure 15 reproduction: {n} integer keys (paper: 16 / 13 billion)");
    series(&sequential_integer_keys(n), "sequential integers");
    series(&random_integer_keys(n, 0xf15), "random integers");
}

//! Table 1: KPIs of the string data set (synthetic Google-Books-style
//! 2-grams), inserted in sequential (sorted) and randomized order.

use hyperion_bench::{arg_keys, measure_kpi, print_kpi_table, STRING_STORES};
use hyperion_workloads::{NgramCorpus, NgramCorpusConfig};

fn main() {
    let n = arg_keys(200_000);
    println!("Table 1 reproduction: {n} string keys (paper: 7.95 billion)");
    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: n,
        ..Default::default()
    });
    let sequential = &corpus.workload;
    println!(
        "average key length: {:.2} bytes",
        sequential.average_key_len()
    );
    let randomized = sequential.shuffled(0xbadc0de);

    let seq: Vec<_> = STRING_STORES
        .iter()
        .map(|s| measure_kpi(s, sequential))
        .collect();
    print_kpi_table("sequential string keys", &seq);
    let rnd: Vec<_> = STRING_STORES
        .iter()
        .map(|s| measure_kpi(s, &randomized))
        .collect();
    print_kpi_table("randomized string keys", &rnd);
}

//! Figure 13: how many keys each structure can index within a fixed logical
//! memory budget ("unlimited inserts"), for random integers and sequential
//! n-gram strings.

use hyperion_bench::{arg_keys, make_store, INTEGER_STORES, STRING_STORES};
use hyperion_workloads::{random_integer_keys, NgramCorpus, NgramCorpusConfig};

fn main() {
    // Budget in MiB of *logical* structure memory (paper: 978 GiB of RAM).
    let budget_mib = arg_keys(64);
    let budget = budget_mib * 1024 * 1024;
    println!("Figure 13 reproduction: keys indexable within {budget_mib} MiB");

    let integers = random_integer_keys(400_000, 0xf13);
    println!("\n-- random integer keys --");
    println!("{:<14} {:>16}", "store", "keys in budget");
    for name in INTEGER_STORES {
        let mut store = make_store(name);
        let mut count = 0usize;
        for (k, v) in integers.keys.iter().zip(&integers.values) {
            store.put(k, *v);
            count += 1;
            if count % 10_000 == 0 && store.memory_footprint() > budget {
                break;
            }
        }
        println!("{:<14} {:>16}", name, count);
    }

    let corpus = NgramCorpus::generate(&NgramCorpusConfig {
        entries: 400_000,
        min_n: 3,
        max_n: 3,
        ..Default::default()
    });
    println!("\n-- sequential 3-gram string keys --");
    println!("{:<14} {:>16}", "store", "keys in budget");
    for name in STRING_STORES {
        let mut store = make_store(name);
        let mut count = 0usize;
        for (k, v) in corpus.workload.keys.iter().zip(&corpus.workload.values) {
            store.put(k, *v);
            count += 1;
            if count % 10_000 == 0 && store.memory_footprint() > budget {
                break;
            }
        }
        println!("{:<14} {:>16}", name, count);
    }
}

//! Table 2: KPIs of the sequential and randomized 64-bit integer data sets.

use hyperion_bench::{arg_keys, measure_kpi, print_kpi_table, INTEGER_STORES};
use hyperion_workloads::{random_integer_keys, sequential_integer_keys};

fn main() {
    let n = arg_keys(500_000);
    println!("Table 2 reproduction: {n} integer keys (paper: 16 / 13 billion)");
    let sequential = sequential_integer_keys(n);
    let randomized = random_integer_keys(n, 0x5eed);

    let seq: Vec<_> = INTEGER_STORES
        .iter()
        .filter(|s| **s != "hyperion_p")
        .map(|s| measure_kpi(s, &sequential))
        .collect();
    print_kpi_table("sequential integer keys", &seq);
    let rnd: Vec<_> = INTEGER_STORES
        .iter()
        .map(|s| measure_kpi(s, &randomized))
        .collect();
    print_kpi_table("randomized integer keys", &rnd);
}

//! `bench_gate` — the CI perf-trajectory regression gate.
//!
//! Compares two flat metric files produced by the benchmark binaries'
//! `--json` flag (see `hyperion_bench::json`) and exits non-zero when any
//! metric regressed beyond the threshold:
//!
//! ```bash
//! cargo run --release -p hyperion-bench --bin bench_gate -- \
//!     BENCH_baseline.json BENCH_smoke.json --max-regression 25
//! ```
//!
//! Direction comes from the metric name: `*_mops` is higher-is-better (a
//! regression is a drop); `*_bpk` (bytes per key) and `*_us` (latency
//! percentiles) are lower-is-better (a regression is growth).
//! Every baseline metric must be present in the current file — a silently
//! dropped metric would let a regression hide by renaming.  Metrics only in
//! the current file are reported as informational (new benchmarks land
//! before their baseline is re-recorded).

use hyperion_bench::json::parse_flat_json;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read metric file {path}: {e}"));
    parse_flat_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression_pct = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            i += 1;
            max_regression_pct = args
                .get(i)
                .and_then(|v| v.parse().ok())
                .expect("--max-regression takes a percentage");
        } else {
            paths.push(args[i].clone());
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--max-regression <pct>]");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut failures = 0usize;
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "metric", "baseline", "current", "change"
    );
    for (key, base) in &baseline {
        let Some(cur) = current.get(key) else {
            println!("{key:<34} {base:>12.3} {:>12} {:>9}", "MISSING", "FAIL");
            failures += 1;
            continue;
        };
        // Regression fraction, positive = worse.  `_bpk` (bytes per key) and
        // `_us` (latency) metrics regress upward; throughput metrics regress
        // downward.
        let lower_is_better = key.ends_with("_bpk") || key.ends_with("_us");
        let regression = if *base == 0.0 {
            0.0
        } else if lower_is_better {
            (cur - base) / base
        } else {
            (base - cur) / base
        };
        let change_pct = if *base == 0.0 {
            0.0
        } else {
            (cur - base) / base * 100.0
        };
        let verdict = if regression * 100.0 > max_regression_pct {
            failures += 1;
            "  FAIL"
        } else {
            ""
        };
        println!("{key:<34} {base:>12.3} {cur:>12.3} {change_pct:>+8.1}%{verdict}");
    }
    for (key, cur) in &current {
        if !baseline.contains_key(key) {
            println!("{key:<34} {:>12} {cur:>12.3}   (new, no baseline)", "-");
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} metric(s) regressed more than {max_regression_pct}% \
             vs {baseline_path}"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all metrics within {max_regression_pct}% of {baseline_path}");
    ExitCode::SUCCESS
}

//! Minimal flat-JSON metric files — the machine-readable perf trajectory.
//!
//! The benchmark binaries (`put_throughput`, `get_throughput`,
//! `scan_throughput`) accept `--json <path>` and *merge* their metrics into
//! one flat JSON object (`{"workload/metric_mops": 1.234, ...}`), so the CI
//! perf-smoke step can run all three and end up with a single
//! `BENCH_smoke.json` artifact.  `bench_gate` then compares that file against
//! the committed `BENCH_baseline.json` and fails the build on regressions.
//!
//! The build environment has no crates.io access (no `serde`), and the format
//! is deliberately restricted to one flat `string -> number` object so a
//! ~60-line parser is exact: keys contain no escapes, values are plain JSON
//! numbers.  Key naming carries the gate direction: `*_mops` metrics are
//! higher-is-better, `*_bpk` (bytes per key) lower-is-better.

use std::collections::BTreeMap;
use std::path::Path;

/// Parses a flat `{"key": number, ...}` JSON object.  Rejects nesting,
/// strings values and escapes — the format is a contract, not a subset.
pub fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let expect = |pos: &mut usize, c: u8| -> Result<(), String> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of metric file",
                c as char, *pos
            ))
        }
    };
    skip_ws(&mut pos);
    expect(&mut pos, b'{')?;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        skip_ws(&mut pos);
        expect(&mut pos, b'"')?;
        let key_start = pos;
        while pos < bytes.len() && bytes[pos] != b'"' {
            if bytes[pos] == b'\\' {
                return Err(format!("escape in key at byte {pos} (unsupported)"));
            }
            pos += 1;
        }
        let key = text[key_start..pos].to_string();
        expect(&mut pos, b'"')?;
        skip_ws(&mut pos);
        expect(&mut pos, b':')?;
        skip_ws(&mut pos);
        let num_start = pos;
        while pos < bytes.len()
            && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            pos += 1;
        }
        let value: f64 = text[num_start..pos]
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        out.insert(key, value);
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(&b',') => pos += 1,
            Some(&b'}') => {
                pos += 1;
                break;
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {pos}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(out)
}

/// Serialises a flat metric map (sorted keys, one entry per line, stable
/// formatting so baseline diffs are reviewable).
pub fn format_flat_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value:.4}"));
        out.push_str(if i + 1 == metrics.len() { "\n" } else { ",\n" });
    }
    out.push('}');
    out.push('\n');
    out
}

/// Merges `metrics` into the flat JSON file at `path` (created if absent):
/// the mechanism that lets three benchmark binaries build one
/// `BENCH_smoke.json`.
pub fn merge_into_file(path: &Path, metrics: &[(String, f64)]) -> Result<(), String> {
    let mut map = match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_json(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    for (key, value) in metrics {
        map.insert(key.clone(), *value);
    }
    std::fs::write(path, format_flat_json(&map))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

/// The `--json <path>` argument shared by the benchmark binaries.
pub fn arg_json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut map = BTreeMap::new();
        map.insert("a/b_mops".to_string(), 1.25);
        map.insert("c_bpk".to_string(), 21.0);
        let text = format_flat_json(&map);
        let parsed = parse_flat_json(&text).unwrap();
        assert_eq!(parsed, map);
    }

    #[test]
    fn parses_empty_and_whitespace() {
        assert!(parse_flat_json("{}").unwrap().is_empty());
        assert_eq!(
            parse_flat_json(" {\n \"k\" : -1.5e2 } ").unwrap()["k"],
            -150.0
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_flat_json("{\"k\": \"str\"}").is_err());
        assert!(parse_flat_json("{\"k\": 1} x").is_err());
        assert!(parse_flat_json("[1]").is_err());
    }

    #[test]
    fn merge_updates_existing_keys() {
        let dir = std::env::temp_dir().join(format!("hyperion-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        merge_into_file(&path, &[("a_mops".into(), 1.0), ("b_bpk".into(), 2.0)]).unwrap();
        merge_into_file(&path, &[("a_mops".into(), 3.0), ("c_mops".into(), 4.0)]).unwrap();
        let map = parse_flat_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(map["a_mops"], 3.0);
        assert_eq!(map["b_bpk"], 2.0);
        assert_eq!(map["c_mops"], 4.0);
        std::fs::remove_file(&path).unwrap();
    }
}

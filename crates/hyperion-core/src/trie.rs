//! The Hyperion trie: a carefully growing 65,536-ary trie stored in
//! exact-fit containers (paper Section 3).
//!
//! Every container encodes a 16-bit partial key as a two-level internal trie
//! of T-nodes (first 8 bits) and S-nodes (second 8 bits).  Children are
//! referenced through 5-byte Hyperion Pointers, embedded directly into the
//! parent container, or stored as path-compressed suffixes.  All updates keep
//! the siblings ordered, which enables delta encoding, early miss detection
//! and fast ordered range queries.

use crate::builder::StreamBuilder;
use crate::config::HyperionConfig;
use crate::container::{ContainerHandle, ContainerRef, CJT_GROUP, CJT_MAX_GROUPS, HEADER_SIZE};
use crate::keys::{postprocess_key, preprocess_key};
use crate::node::{
    delta_for, delta_of, is_invalid, is_t_node, parse_pc_node, parse_s_node, parse_t_node,
    ChildKind, NodeType, SNode, TNode, HP_SIZE, JS_SIZE, TNODE_JT_ENTRIES, TNODE_JT_SIZE,
    VALUE_SIZE,
};
use crate::scan::{collect_s_records, collect_t_records, s_scan, skip_t_children, t_scan};
use crate::stats::{TrieAnalysis, TrieCounters};
use crate::{Entries, KvRead, KvWrite, OrderedRead};
use hyperion_mem::{HyperionPointer, MemoryManager};
use std::borrow::Cow;

/// A memory-efficient ordered map from byte-string keys to `u64` values.
///
/// This is the single-threaded core of Hyperion; [`crate::ConcurrentHyperion`]
/// shards keys over multiple `HyperionMap` arenas for thread-safe access.
pub struct HyperionMap {
    mm: MemoryManager,
    config: HyperionConfig,
    root: Option<HyperionPointer>,
    empty_key_value: Option<u64>,
    len: usize,
    counters: TrieCounters,
}

/// Result of one structural attempt inside a container.
enum StepResult {
    Done { inserted: bool, scanned_top: usize },
    Restart,
}

/// Result of a read inside one container.
enum RegionGet {
    NotFound,
    Value(u64),
    Descend {
        hp: HyperionPointer,
        consumed: usize,
    },
}

/// Location of the outermost embedded container on the current put path; used
/// to eject it when it can no longer grow in place.
#[derive(Clone, Copy)]
struct EmbedContext {
    s_flag_offset: usize,
    child_offset: usize,
}

/// One pending offset-field adjustment gathered before a byte shift.
enum Fix {
    /// Add `delta` to the u16 at `pos` (jump successor / T-node jump table).
    U16 { pos: usize, delta: i64 },
    /// Zero the u16 at `pos` (the target was removed).
    U16Clear { pos: usize },
    /// Add `delta` to the offset part of the container-jump-table entry at `pos`.
    Cjt { pos: usize, delta: i64 },
    /// Zero the container-jump-table entry at `pos`.
    CjtClear { pos: usize },
}

impl HyperionMap {
    /// Creates an empty map with the default configuration.
    pub fn new() -> Self {
        Self::with_config(HyperionConfig::default())
    }

    /// Creates an empty map with the given configuration.
    pub fn with_config(config: HyperionConfig) -> Self {
        HyperionMap {
            mm: MemoryManager::new(),
            config,
            root: None,
            empty_key_value: None,
            len: 0,
            counters: TrieCounters::default(),
        }
    }

    /// The configuration this map was created with.
    pub fn config(&self) -> &HyperionConfig {
        &self.config
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Structural counters (ejections, splits, ...).
    pub fn counters(&self) -> TrieCounters {
        self.counters
    }

    /// Access to the underlying memory manager (read-only), e.g. for
    /// collecting the per-superbin statistics of Figures 14 and 16.
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    /// Logical memory footprint in bytes (segments + heap held by the
    /// allocator, plus the map header itself).
    pub fn footprint_bytes(&self) -> usize {
        self.mm.footprint_bytes() as usize + std::mem::size_of::<Self>()
    }

    fn transform<'k>(&self, key: &'k [u8]) -> Cow<'k, [u8]> {
        if self.config.key_preprocessing {
            Cow::Owned(preprocess_key(key))
        } else {
            Cow::Borrowed(key)
        }
    }

    fn restore_key(&self, key: &[u8]) -> Vec<u8> {
        if self.config.key_preprocessing {
            postprocess_key(key).unwrap_or_else(|| key.to_vec())
        } else {
            key.to_vec()
        }
    }

    /// The root pointer of the trie (crate-internal: cursor entry point).
    pub(crate) fn root_pointer(&self) -> Option<HyperionPointer> {
        self.root
    }

    /// The value stored under the empty key, if any (crate-internal).
    pub(crate) fn empty_key_value(&self) -> Option<u64> {
        self.empty_key_value
    }

    /// Applies the configured key pre-processing (crate-internal).
    pub(crate) fn transform_key<'k>(&self, key: &'k [u8]) -> Cow<'k, [u8]> {
        self.transform(key)
    }

    /// Undoes the configured key pre-processing (crate-internal).
    pub(crate) fn restore_key_bytes(&self, key: &[u8]) -> Vec<u8> {
        self.restore_key(key)
    }

    fn resolve_handle(&self, hp: HyperionPointer, hint: u8) -> ContainerHandle {
        if hp.superbin() == 0 && self.mm.is_chained(hp) {
            let (index, _, _) = self
                .mm
                .resolve_chained(hp, hint)
                .expect("chained pointer without valid slot");
            ContainerHandle::ChainSlot { head: hp, index }
        } else {
            ContainerHandle::Standalone(hp)
        }
    }

    // =====================================================================
    // get
    // =====================================================================

    /// Looks up a key and returns its value, if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let key = self.transform(key);
        if key.is_empty() {
            return self.empty_key_value;
        }
        let mut hp = self.root?;
        let mut rest: &[u8] = &key;
        loop {
            let handle = self.resolve_handle(hp, rest[0]);
            let c = ContainerRef::open(&self.mm, handle);
            match self.get_in_region(&c, c.stream_start(), c.stream_end(), rest) {
                RegionGet::NotFound => return None,
                RegionGet::Value(v) => return Some(v),
                RegionGet::Descend {
                    hp: child,
                    consumed,
                } => {
                    hp = child;
                    rest = &rest[consumed..];
                }
            }
        }
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    fn get_in_region(&self, c: &ContainerRef, start: usize, end: usize, key: &[u8]) -> RegionGet {
        let is_top = start == c.stream_start();
        let ts = t_scan(c, start, end, key[0], is_top);
        let Some(t) = ts.found else {
            return RegionGet::NotFound;
        };
        if key.len() == 1 {
            return match t.value_offset {
                Some(off) if t.node_type == NodeType::LeafWithValue => {
                    RegionGet::Value(c.read_u64(off))
                }
                _ => RegionGet::NotFound,
            };
        }
        let ss = s_scan(c, &t, end, key[1]);
        let Some(s) = ss.found else {
            return RegionGet::NotFound;
        };
        if key.len() == 2 {
            return match s.value_offset {
                Some(off) if s.node_type == NodeType::LeafWithValue => {
                    RegionGet::Value(c.read_u64(off))
                }
                _ => RegionGet::NotFound,
            };
        }
        let remaining = &key[2..];
        match s.child {
            ChildKind::None => RegionGet::NotFound,
            ChildKind::Pointer => RegionGet::Descend {
                hp: c.read_hp(s.child_offset.expect("pointer child offset")),
                consumed: 2,
            },
            ChildKind::Embedded => {
                let child_off = s.child_offset.expect("embedded child offset");
                let size = c.bytes()[child_off] as usize;
                match self.get_in_region(c, child_off + 1, child_off + size, remaining) {
                    RegionGet::Descend { hp, consumed } => RegionGet::Descend {
                        hp,
                        consumed: consumed + 2,
                    },
                    other => other,
                }
            }
            ChildKind::PathCompressed => {
                let child_off = s.child_offset.expect("pc child offset");
                let (has_value, value, range) = parse_pc_node(c.bytes(), child_off);
                if has_value && &c.bytes()[range] == remaining {
                    RegionGet::Value(value)
                } else {
                    RegionGet::NotFound
                }
            }
        }
    }

    // =====================================================================
    // put
    // =====================================================================

    /// Inserts or updates a key.  Returns `true` if the key was not present
    /// before.
    pub fn put(&mut self, key: &[u8], value: u64) -> bool {
        let key = self.transform(key).into_owned();
        if key.is_empty() {
            let inserted = self.empty_key_value.is_none();
            self.empty_key_value = Some(value);
            if inserted {
                self.len += 1;
            }
            return inserted;
        }
        match self.root {
            None => {
                let stream = {
                    let mut b = StreamBuilder::new(&mut self.mm, &self.config);
                    b.build_stream(None, &[(key.clone(), value)])
                };
                let c = ContainerRef::create(&mut self.mm, &stream);
                self.root = Some(c.handle().stored_pointer());
                self.len += 1;
                true
            }
            Some(root) => {
                let (new_root, inserted) = self.put_into_pointer(root, &key, value);
                if new_root != root {
                    self.root = Some(new_root);
                }
                if inserted {
                    self.len += 1;
                }
                inserted
            }
        }
    }

    fn put_into_pointer(
        &mut self,
        hp: HyperionPointer,
        key: &[u8],
        value: u64,
    ) -> (HyperionPointer, bool) {
        let handle = self.resolve_handle(hp, key[0]);
        let mut c = ContainerRef::open(&self.mm, handle);
        let mut attempts = 0;
        let (inserted, scanned) = loop {
            attempts += 1;
            assert!(attempts <= 32, "put did not converge (structural loop)");
            let start = c.stream_start();
            let end = c.stream_end();
            match self.put_in_region(&mut c, start, end, &[], None, key, value) {
                StepResult::Done {
                    inserted,
                    scanned_top,
                } => break (inserted, scanned_top),
                StepResult::Restart => continue,
            }
        };
        if self.config.container_jump_table
            && scanned >= self.config.container_jump_table_scan_limit
        {
            self.rebuild_container_jump_table(&mut c);
        }
        let stored = if self.config.container_split {
            match self.maybe_split(&mut c) {
                Some(new_stored) => new_stored,
                None => c.handle().stored_pointer(),
            }
        } else {
            c.handle().stored_pointer()
        };
        (stored, inserted)
    }

    #[allow(clippy::too_many_arguments)]
    fn put_in_region(
        &mut self,
        c: &mut ContainerRef,
        region_start: usize,
        region_end: usize,
        embed_chain: &[usize],
        outer_embed: Option<EmbedContext>,
        key: &[u8],
        value: u64,
    ) -> StepResult {
        let is_top = embed_chain.is_empty();
        let ts = t_scan(c, region_start, region_end, key[0], is_top);
        let scanned_top = if is_top { ts.scanned } else { 0 };
        let done = |inserted| StepResult::Done {
            inserted,
            scanned_top,
        };

        let Some(t) = ts.found else {
            // Insert a brand-new T record (plus everything below it).
            let estimate = 2 * key.len() + 48;
            if self.needs_eject(c, outer_embed, embed_chain, estimate) {
                return StepResult::Restart;
            }
            let stream = {
                let mut b = StreamBuilder::new(&mut self.mm, &self.config);
                b.build_stream(ts.prev_key, &[(key.to_vec(), value)])
            };
            self.grow_stream(c, embed_chain, ts.insert_at, stream.len(), true);
            let at = ts.insert_at;
            c.bytes_mut()[at..at + stream.len()].copy_from_slice(&stream);
            if let Some(succ) = ts.successor {
                self.fix_sibling_delta(
                    c,
                    embed_chain,
                    succ.offset + stream.len(),
                    succ.key,
                    Some(key[0]),
                );
            }
            return done(true);
        };

        if key.len() == 1 {
            if let Some(off) = t.value_offset {
                c.write_u64(off, value);
                return done(false);
            }
            if self.needs_eject(c, outer_embed, embed_chain, VALUE_SIZE) {
                return StepResult::Restart;
            }
            let value_pos = t.offset + 1 + t.explicit_key as usize;
            self.grow_stream(c, embed_chain, value_pos, VALUE_SIZE, false);
            c.write_u64(value_pos, value);
            let flag = c.bytes()[t.offset];
            c.bytes_mut()[t.offset] = (flag & !0b11) | NodeType::LeafWithValue as u8;
            return done(true);
        }

        let ss = s_scan(c, &t, region_end, key[1]);
        let Some(s) = ss.found else {
            // Insert a new S record below the existing T-node.
            let estimate = 2 * key.len() + 48;
            if self.needs_eject(c, outer_embed, embed_chain, estimate) {
                return StepResult::Restart;
            }
            let stream = {
                let mut b = StreamBuilder::new(&mut self.mm, &self.config);
                b.build_s_records(ss.prev_key, &[(key[1..].to_vec(), value)])
            };
            self.grow_stream(c, embed_chain, ss.insert_at, stream.len(), false);
            let at = ss.insert_at;
            c.bytes_mut()[at..at + stream.len()].copy_from_slice(&stream);
            if let Some(succ) = ss.successor {
                self.fix_sibling_delta(
                    c,
                    embed_chain,
                    succ.offset + stream.len(),
                    succ.key,
                    Some(key[1]),
                );
            }
            if is_top {
                self.maintain_t_jumps(c, t.offset, ss.visited + 1);
            }
            return done(true);
        };

        if key.len() == 2 {
            if let Some(off) = s.value_offset {
                c.write_u64(off, value);
                return done(false);
            }
            if self.needs_eject(c, outer_embed, embed_chain, VALUE_SIZE) {
                return StepResult::Restart;
            }
            let value_pos = s.offset + 1 + s.explicit_key as usize;
            self.grow_stream(c, embed_chain, value_pos, VALUE_SIZE, false);
            c.write_u64(value_pos, value);
            let flag = c.bytes()[s.offset];
            c.bytes_mut()[s.offset] = (flag & !0b11) | NodeType::LeafWithValue as u8;
            return done(true);
        }

        let remaining = &key[2..];
        match s.child {
            ChildKind::None => {
                let estimate = 2 * remaining.len() + 48;
                if self.needs_eject(c, outer_embed, embed_chain, estimate) {
                    return StepResult::Restart;
                }
                let (kind, bytes) = {
                    let mut b = StreamBuilder::new(&mut self.mm, &self.config);
                    b.encode_child(&[(remaining.to_vec(), value)])
                };
                self.grow_stream(c, embed_chain, s.end, bytes.len(), false);
                c.bytes_mut()[s.end..s.end + bytes.len()].copy_from_slice(&bytes);
                self.set_child_kind(c, s.offset, kind);
                done(true)
            }
            ChildKind::Pointer => {
                let hp_pos = s.child_offset.expect("pointer child offset");
                let child_hp = c.read_hp(hp_pos);
                let (new_hp, inserted) = self.put_into_pointer(child_hp, remaining, value);
                if new_hp != child_hp {
                    c.write_hp(hp_pos, new_hp);
                }
                done(inserted)
            }
            ChildKind::Embedded => {
                let child_off = s.child_offset.expect("embedded child offset");
                let emb_size = c.bytes()[child_off] as usize;
                let estimate = 2 * remaining.len() + 48;
                let ctx = if is_top {
                    EmbedContext {
                        s_flag_offset: s.offset,
                        child_offset: child_off,
                    }
                } else {
                    outer_embed.expect("nested embedded without outer context")
                };
                let overflow = emb_size + estimate > self.config.embedded_max
                    || embed_chain
                        .iter()
                        .any(|&off| c.bytes()[off] as usize + estimate > self.config.embedded_max)
                    || c.size() + estimate > self.config.eject_threshold;
                if overflow {
                    self.eject_embedded(c, ctx);
                    return StepResult::Restart;
                }
                let mut chain = embed_chain.to_vec();
                chain.push(child_off);
                match self.put_in_region(
                    c,
                    child_off + 1,
                    child_off + emb_size,
                    &chain,
                    Some(ctx),
                    remaining,
                    value,
                ) {
                    StepResult::Done { inserted, .. } => done(inserted),
                    StepResult::Restart => StepResult::Restart,
                }
            }
            ChildKind::PathCompressed => {
                let child_off = s.child_offset.expect("pc child offset");
                let (has_value, pc_value, range) = parse_pc_node(c.bytes(), child_off);
                let suffix: Vec<u8> = c.bytes()[range].to_vec();
                let total = (c.bytes()[child_off] & 0x7f) as usize;
                if has_value && suffix.as_slice() == remaining {
                    c.write_u64(child_off + 1, value);
                    return done(false);
                }
                let mut entries: Vec<(Vec<u8>, u64)> = vec![(remaining.to_vec(), value)];
                if suffix.as_slice() != remaining {
                    entries.push((suffix.clone(), if has_value { pc_value } else { 0 }));
                }
                entries.sort();
                let estimate: usize =
                    entries.iter().map(|(k, _)| 2 * k.len() + 32).sum::<usize>() + 16;
                if self.needs_eject(c, outer_embed, embed_chain, estimate) {
                    return StepResult::Restart;
                }
                let (kind, bytes) = {
                    let mut b = StreamBuilder::new(&mut self.mm, &self.config);
                    b.encode_child(&entries)
                };
                if bytes.len() > total {
                    self.grow_stream(
                        c,
                        embed_chain,
                        child_off + total,
                        bytes.len() - total,
                        false,
                    );
                } else if bytes.len() < total {
                    self.shrink_stream(
                        c,
                        embed_chain,
                        child_off + bytes.len(),
                        total - bytes.len(),
                    );
                }
                c.bytes_mut()[child_off..child_off + bytes.len()].copy_from_slice(&bytes);
                self.set_child_kind(c, s.offset, kind);
                done(true)
            }
        }
    }

    fn set_child_kind(&mut self, c: &mut ContainerRef, s_flag_offset: usize, kind: ChildKind) {
        let flag = c.bytes()[s_flag_offset];
        c.bytes_mut()[s_flag_offset] = (flag & 0b0011_1111) | ((kind as u8) << 6);
    }

    /// Checks whether adding `add` bytes would overflow an enclosing embedded
    /// container or push the real container past the eject threshold.  If so,
    /// the outermost embedded container on the path is ejected and the caller
    /// must restart the operation.
    fn needs_eject(
        &mut self,
        c: &mut ContainerRef,
        outer_embed: Option<EmbedContext>,
        embed_chain: &[usize],
        add: usize,
    ) -> bool {
        if embed_chain.is_empty() {
            return false;
        }
        let overflow = embed_chain
            .iter()
            .any(|&off| c.bytes()[off] as usize + add > self.config.embedded_max)
            || c.size() + add > self.config.eject_threshold;
        if overflow {
            let ctx = outer_embed.expect("embedded path without outer context");
            self.eject_embedded(c, ctx);
            return true;
        }
        false
    }

    /// Ejects a top-level embedded container into a standalone container
    /// referenced by a Hyperion Pointer (paper Figure 8).
    fn eject_embedded(&mut self, c: &mut ContainerRef, ctx: EmbedContext) {
        let size = c.bytes()[ctx.child_offset] as usize;
        let body: Vec<u8> = c.bytes()[ctx.child_offset + 1..ctx.child_offset + size].to_vec();
        let child = ContainerRef::create(&mut self.mm, &body);
        let hp = child.handle().stored_pointer();
        if size > HP_SIZE {
            self.shrink_stream(c, &[], ctx.child_offset + HP_SIZE, size - HP_SIZE);
        } else if size < HP_SIZE {
            self.grow_stream(c, &[], ctx.child_offset + size, HP_SIZE - size, false);
        }
        c.write_hp(ctx.child_offset, hp);
        self.set_child_kind(c, ctx.s_flag_offset, ChildKind::Pointer);
        self.counters.ejections += 1;
    }

    // =====================================================================
    // byte-shift plumbing: offset fix-ups for js / jt / container jump table
    // =====================================================================

    fn collect_fixes(
        &self,
        c: &ContainerRef,
        at: usize,
        len: usize,
        is_insert: bool,
        t_record_inserted: bool,
    ) -> Vec<Fix> {
        let mut fixes = Vec::new();
        let stream_start = c.stream_start();
        let delta = if is_insert { len as i64 } else { -(len as i64) };
        // Container jump table entries.
        for i in 0..c.jt_groups() * CJT_GROUP {
            let pos = HEADER_SIZE + i * 4;
            let raw = u32::from_le_bytes(c.bytes()[pos..pos + 4].try_into().unwrap());
            if raw == 0 {
                continue;
            }
            let target = stream_start + (raw >> 8) as usize;
            if is_insert {
                if target >= at {
                    fixes.push(Fix::Cjt { pos, delta });
                }
            } else if target >= at + len {
                fixes.push(Fix::Cjt { pos, delta });
            } else if target >= at {
                fixes.push(Fix::CjtClear { pos });
            }
        }
        // Per-T-node jump successors and jump tables.
        for t in collect_t_records(c, stream_start, c.stream_end()) {
            if t.offset >= at {
                continue;
            }
            if let Some(js_off) = t.js_offset {
                let v = c.read_u16(js_off) as usize;
                if v != 0 {
                    let target = t.offset + v;
                    if is_insert {
                        let shift = target > at || (target == at && !t_record_inserted);
                        if shift {
                            fixes.push(Fix::U16 { pos: js_off, delta });
                        }
                    } else if target >= at + len {
                        fixes.push(Fix::U16 { pos: js_off, delta });
                    } else if target > at {
                        fixes.push(Fix::U16Clear { pos: js_off });
                    }
                }
            }
            if let Some(jt_off) = t.jt_offset {
                for slot in 0..TNODE_JT_ENTRIES {
                    let pos = jt_off + slot * 2;
                    let v = c.read_u16(pos) as usize;
                    if v == 0 {
                        continue;
                    }
                    let target = t.offset + v;
                    if is_insert {
                        if target >= at {
                            fixes.push(Fix::U16 { pos, delta });
                        }
                    } else if target >= at + len {
                        fixes.push(Fix::U16 { pos, delta });
                    } else if target >= at {
                        fixes.push(Fix::U16Clear { pos });
                    }
                }
            }
        }
        fixes
    }

    fn apply_fixes(
        &self,
        c: &mut ContainerRef,
        fixes: &[Fix],
        at: usize,
        len: usize,
        is_insert: bool,
    ) {
        let adjust = |pos: usize| -> usize {
            if is_insert {
                if pos >= at {
                    pos + len
                } else {
                    pos
                }
            } else if pos >= at + len {
                pos - len
            } else {
                pos
            }
        };
        for fix in fixes {
            match fix {
                Fix::U16 { pos, delta } => {
                    let pos = adjust(*pos);
                    let v = c.read_u16(pos) as i64 + delta;
                    if v > 0 && v <= u16::MAX as i64 {
                        c.write_u16(pos, v as u16);
                    } else {
                        // The jump no longer fits into 16 bits: disable it (0
                        // means "walk the records"), never store a wrong jump.
                        c.write_u16(pos, 0);
                    }
                }
                Fix::U16Clear { pos } => {
                    let pos = adjust(*pos);
                    c.write_u16(pos, 0);
                }
                Fix::Cjt { pos, delta } => {
                    let pos = adjust(*pos);
                    let raw = u32::from_le_bytes(c.bytes()[pos..pos + 4].try_into().unwrap());
                    let key = raw & 0xff;
                    let offset = (raw >> 8) as i64 + delta;
                    debug_assert!(offset >= 0);
                    let new_raw = key | ((offset as u32) << 8);
                    c.bytes_mut()[pos..pos + 4].copy_from_slice(&new_raw.to_le_bytes());
                }
                Fix::CjtClear { pos } => {
                    let pos = adjust(*pos);
                    c.bytes_mut()[pos..pos + 4].copy_from_slice(&0u32.to_le_bytes());
                }
            }
        }
    }

    fn grow_stream(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        at: usize,
        len: usize,
        t_record_inserted: bool,
    ) {
        // The "a new T sibling now starts at the insertion point" special case
        // only applies when the record is inserted at the top level of the
        // container; a T record inserted inside an embedded body still lives
        // within some top-level T's child region, so jump successors pointing
        // at the insertion point must shift.
        let top_level_t_insert = t_record_inserted && embed_chain.is_empty();
        let fixes = self.collect_fixes(c, at, len, true, top_level_t_insert);
        c.insert_gap(&mut self.mm, at, len);
        for &off in embed_chain {
            let b = c.bytes()[off] as usize;
            debug_assert!(b + len <= 255, "embedded container size overflow");
            c.bytes_mut()[off] = (b + len) as u8;
        }
        self.apply_fixes(c, &fixes, at, len, true);
    }

    fn shrink_stream(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        at: usize,
        len: usize,
    ) {
        let fixes = self.collect_fixes(c, at, len, false, false);
        c.remove_range(at, len);
        for &off in embed_chain {
            let b = c.bytes()[off] as usize;
            debug_assert!(b >= len);
            c.bytes_mut()[off] = (b - len) as u8;
        }
        self.apply_fixes(c, &fixes, at, len, false);
    }

    /// Re-encodes the delta field of the sibling at `offset` after its
    /// predecessor changed to `new_prev_key` (or disappeared).
    fn fix_sibling_delta(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        offset: usize,
        node_key: u8,
        new_prev_key: Option<u8>,
    ) {
        let flag = c.bytes()[offset];
        if delta_of(flag) == 0 {
            return;
        }
        match delta_for(new_prev_key, node_key, self.config.delta_encoding) {
            Some(d) => {
                c.bytes_mut()[offset] = (flag & !(0b111 << 3)) | (d << 3);
            }
            None => {
                // The delta no longer fits: materialise an explicit key byte.
                self.grow_stream(c, embed_chain, offset + 1, 1, false);
                let flag = c.bytes()[offset];
                c.bytes_mut()[offset] = flag & !(0b111 << 3);
                c.bytes_mut()[offset + 1] = node_key;
            }
        }
    }

    // =====================================================================
    // jump successor / jump table maintenance
    // =====================================================================

    fn maintain_t_jumps(&mut self, c: &mut ContainerRef, t_offset: usize, child_count: usize) {
        if self.config.jump_successor && child_count >= self.config.jump_successor_threshold {
            let t = parse_t_node(c.bytes(), t_offset, None).expect("T record for js maintenance");
            if !t.has_js {
                let js_pos = t
                    .value_offset
                    .map(|v| v + VALUE_SIZE)
                    .unwrap_or(t.offset + 1 + t.explicit_key as usize);
                let next_t = skip_t_children(c, &t, c.stream_end());
                self.grow_stream(c, &[], js_pos, JS_SIZE, false);
                let flag = c.bytes()[t_offset];
                c.bytes_mut()[t_offset] = flag | (1 << 6);
                let js_value = next_t + JS_SIZE - t.offset;
                if js_value <= u16::MAX as usize {
                    c.write_u16(js_pos, js_value as u16);
                }
            }
        }
        if self.config.tnode_jump_table && child_count >= self.config.tnode_jump_table_threshold {
            let t = parse_t_node(c.bytes(), t_offset, None).expect("T record for jt maintenance");
            if !t.has_jt {
                let jt_pos = t
                    .js_offset
                    .map(|o| o + JS_SIZE)
                    .or(t.value_offset.map(|v| v + VALUE_SIZE))
                    .unwrap_or(t.offset + 1 + t.explicit_key as usize);
                self.grow_stream(c, &[], jt_pos, TNODE_JT_SIZE, false);
                let flag = c.bytes()[t_offset];
                c.bytes_mut()[t_offset] = flag | (1 << 7);
                // Fill the entries: slot i references the greatest explicit-key
                // S child with key <= 16 * (i + 1).
                let t = parse_t_node(c.bytes(), t_offset, None).expect("T record after jt insert");
                let jt_off = t.jt_offset.expect("jt offset just created");
                let children = collect_s_records(c, &t, c.stream_end());
                let mut entries = [0u16; TNODE_JT_ENTRIES];
                for s in &children {
                    if !s.explicit_key {
                        continue;
                    }
                    let rel = (s.offset - t.offset) as u16;
                    let first_slot = (s.key as usize).div_ceil(16).saturating_sub(1);
                    for entry in entries.iter_mut().skip(first_slot) {
                        *entry = rel;
                    }
                }
                for (i, v) in entries.iter().enumerate() {
                    c.write_u16(jt_off + i * 2, *v);
                }
            }
        }
    }

    fn rebuild_container_jump_table(&mut self, c: &mut ContainerRef) {
        let stream_start = c.stream_start();
        let records = collect_t_records(c, stream_start, c.stream_end());
        let explicit: Vec<&TNode> = records.iter().filter(|t| t.explicit_key).collect();
        if explicit.len() < CJT_GROUP {
            return;
        }
        let max_entries = CJT_MAX_GROUPS * CJT_GROUP;
        let take = explicit.len().min(max_entries);
        let mut entries = Vec::with_capacity(take);
        for i in 0..take {
            let idx = i * explicit.len() / take;
            let t = explicit[idx];
            entries.push((t.key, (t.offset - stream_start) as u32));
        }
        entries.dedup_by_key(|(k, _)| *k);
        c.set_cjt_entries(&mut self.mm, &entries);
        self.counters.cjt_rebuilds += 1;
    }

    // =====================================================================
    // vertical container splits (paper Figure 11)
    // =====================================================================

    fn maybe_split(&mut self, c: &mut ContainerRef) -> Option<HyperionPointer> {
        let threshold = self.config.split_threshold(c.split_delay());
        if c.size() < threshold {
            return None;
        }
        let stream_start = c.stream_start();
        let stream_end = c.stream_end();
        let records = collect_t_records(c, stream_start, stream_end);
        if records.len() < 2 {
            return self.abort_split(c);
        }
        let (range_start, range_end) = match c.handle() {
            ContainerHandle::Standalone(_) => (0usize, 256usize),
            ContainerHandle::ChainSlot { head, index } => {
                let valid = self.mm.chained_valid_slots(head);
                let next = valid
                    .iter()
                    .copied()
                    .filter(|&i| i > index)
                    .min()
                    .unwrap_or(8);
                (index * 32, next * 32)
            }
        };
        // Find the multiple-of-32 cut that best balances the two halves.
        let mut best: Option<(usize, usize)> = None; // (cut_block, cut_record_idx)
        let mut best_imbalance = usize::MAX;
        for cut_block in 1..8usize {
            let cut_key = cut_block * 32;
            if cut_key <= range_start || cut_key >= range_end {
                continue;
            }
            let Some(idx) = records.iter().position(|t| (t.key as usize) >= cut_key) else {
                continue;
            };
            if idx == 0 {
                continue;
            }
            let cut_offset = records[idx].offset;
            let left = cut_offset - stream_start;
            let right = stream_end - cut_offset;
            if left < self.config.split_min_part || right < self.config.split_min_part {
                continue;
            }
            let imbalance = left.abs_diff(right);
            if imbalance < best_imbalance {
                best_imbalance = imbalance;
                best = Some((cut_block, idx));
            }
        }
        let Some((cut_block, cut_idx)) = best else {
            return self.abort_split(c);
        };
        let cut_offset = records[cut_idx].offset;
        let left: Vec<u8> = c.bytes()[stream_start..cut_offset].to_vec();
        let mut right: Vec<u8> = c.bytes()[cut_offset..stream_end].to_vec();
        // The first record of the right half may no longer have a predecessor:
        // force an explicit key byte.  The record grows by one byte, so its
        // own jump-successor / jump-table offsets (which point past its
        // children, relative to the record start) must grow by one as well.
        if delta_of(right[0]) != 0 {
            let first = &records[cut_idx];
            right[0] &= !(0b111 << 3);
            right.insert(1, first.key);
            if let Some(js_off) = first.js_offset {
                let pos = js_off - cut_offset + 1;
                let v = u16::from_le_bytes([right[pos], right[pos + 1]]);
                if v != 0 {
                    let bumped = v.checked_add(1).unwrap_or(0).to_le_bytes();
                    right[pos..pos + 2].copy_from_slice(&bumped);
                }
            }
            if let Some(jt_off) = first.jt_offset {
                for slot in 0..TNODE_JT_ENTRIES {
                    let pos = jt_off - cut_offset + 1 + slot * 2;
                    let v = u16::from_le_bytes([right[pos], right[pos + 1]]);
                    if v != 0 {
                        let bumped = v.checked_add(1).unwrap_or(0).to_le_bytes();
                        right[pos..pos + 2].copy_from_slice(&bumped);
                    }
                }
            }
        }
        self.counters.splits += 1;
        match c.handle() {
            ContainerHandle::Standalone(old_hp) => {
                let head = self.mm.allocate_chained();
                let slot_a = range_start / 32;
                ContainerRef::create_chain_slot(&mut self.mm, head, slot_a, &left);
                ContainerRef::create_chain_slot(&mut self.mm, head, cut_block, &right);
                self.mm.free(old_hp);
                Some(head)
            }
            ContainerHandle::ChainSlot { head, index } => {
                ContainerRef::create_chain_slot(&mut self.mm, head, index, &left);
                ContainerRef::create_chain_slot(&mut self.mm, head, cut_block, &right);
                None
            }
        }
    }

    fn abort_split(&mut self, c: &mut ContainerRef) -> Option<HyperionPointer> {
        let delay = c.split_delay();
        if delay < 3 {
            c.set_split_delay(delay + 1);
        }
        self.counters.split_aborts += 1;
        None
    }

    // =====================================================================
    // delete
    // =====================================================================

    /// Removes a key.  Returns `true` if the key was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let key = self.transform(key).into_owned();
        if key.is_empty() {
            let removed = self.empty_key_value.take().is_some();
            if removed {
                self.len -= 1;
            }
            return removed;
        }
        let Some(root) = self.root else {
            return false;
        };
        let (new_root, removed, now_empty) = self.delete_in_pointer(root, &key);
        if removed {
            self.len -= 1;
        }
        if now_empty {
            self.mm.free(new_root);
            self.root = None;
        } else if new_root != root {
            self.root = Some(new_root);
        }
        removed
    }

    fn delete_in_pointer(
        &mut self,
        hp: HyperionPointer,
        key: &[u8],
    ) -> (HyperionPointer, bool, bool) {
        let handle = self.resolve_handle(hp, key[0]);
        let mut c = ContainerRef::open(&self.mm, handle);
        let start = c.stream_start();
        let end = c.stream_end();
        let removed = self.delete_in_region(&mut c, start, end, &[], key);
        let empty = c.stream_end() == c.stream_start()
            && matches!(c.handle(), ContainerHandle::Standalone(_));
        (c.handle().stored_pointer(), removed, empty)
    }

    fn delete_in_region(
        &mut self,
        c: &mut ContainerRef,
        region_start: usize,
        region_end: usize,
        embed_chain: &[usize],
        key: &[u8],
    ) -> bool {
        let is_top = embed_chain.is_empty();
        let ts = t_scan(c, region_start, region_end, key[0], is_top);
        let Some(t) = ts.found else {
            return false;
        };
        let region_end_now = |c: &ContainerRef, chain: &[usize]| -> usize {
            if let Some(&outer) = chain.last() {
                outer + c.bytes()[outer] as usize
            } else {
                c.stream_end()
            }
        };
        if key.len() == 1 {
            if t.node_type != NodeType::LeafWithValue {
                return false;
            }
            let has_children = {
                let end = region_end_now(c, embed_chain);
                t.header_end < end
                    && !is_invalid(c.bytes()[t.header_end])
                    && !is_t_node(c.bytes()[t.header_end])
            };
            if has_children {
                self.shrink_stream(c, embed_chain, t.value_offset.unwrap(), VALUE_SIZE);
                let flag = c.bytes()[t.offset];
                c.bytes_mut()[t.offset] = (flag & !0b11) | NodeType::Inner as u8;
            } else {
                self.remove_t_record(c, embed_chain, &t, ts.prev_key);
            }
            return true;
        }
        let ss = s_scan(c, &t, region_end, key[1]);
        let Some(s) = ss.found else {
            return false;
        };
        if key.len() == 2 {
            if s.node_type != NodeType::LeafWithValue {
                return false;
            }
            if s.child != ChildKind::None {
                self.shrink_stream(c, embed_chain, s.value_offset.unwrap(), VALUE_SIZE);
                let flag = c.bytes()[s.offset];
                c.bytes_mut()[s.offset] = (flag & !0b11) | NodeType::Inner as u8;
            } else {
                self.remove_s_record(c, embed_chain, &t, &s, ts.prev_key, ss.prev_key);
            }
            return true;
        }
        let remaining = &key[2..];
        match s.child {
            ChildKind::None => false,
            ChildKind::PathCompressed => {
                let child_off = s.child_offset.unwrap();
                let (has_value, _, range) = parse_pc_node(c.bytes(), child_off);
                if !has_value || &c.bytes()[range] != remaining {
                    return false;
                }
                let total = (c.bytes()[child_off] & 0x7f) as usize;
                self.shrink_stream(c, embed_chain, child_off, total);
                self.set_child_kind(c, s.offset, ChildKind::None);
                self.cleanup_childless_s(c, embed_chain, &t, s.offset, ts.prev_key, ss.prev_key);
                true
            }
            ChildKind::Pointer => {
                let hp_pos = s.child_offset.unwrap();
                let child_hp = c.read_hp(hp_pos);
                let (new_hp, removed, child_empty) = self.delete_in_pointer(child_hp, remaining);
                if !removed {
                    return false;
                }
                if child_empty {
                    self.mm.free(new_hp);
                    self.shrink_stream(c, embed_chain, hp_pos, HP_SIZE);
                    self.set_child_kind(c, s.offset, ChildKind::None);
                    self.cleanup_childless_s(
                        c,
                        embed_chain,
                        &t,
                        s.offset,
                        ts.prev_key,
                        ss.prev_key,
                    );
                } else if new_hp != child_hp {
                    c.write_hp(hp_pos, new_hp);
                }
                true
            }
            ChildKind::Embedded => {
                let child_off = s.child_offset.unwrap();
                let emb_size = c.bytes()[child_off] as usize;
                let mut chain = embed_chain.to_vec();
                chain.push(child_off);
                let removed = self.delete_in_region(
                    c,
                    child_off + 1,
                    child_off + emb_size,
                    &chain,
                    remaining,
                );
                if !removed {
                    return false;
                }
                if c.bytes()[child_off] as usize <= 1 {
                    self.shrink_stream(c, embed_chain, child_off, c.bytes()[child_off] as usize);
                    self.set_child_kind(c, s.offset, ChildKind::None);
                    self.cleanup_childless_s(
                        c,
                        embed_chain,
                        &t,
                        s.offset,
                        ts.prev_key,
                        ss.prev_key,
                    );
                }
                true
            }
        }
    }

    /// Removes an S record that has become value-less and child-less; cascades
    /// to the owning T record if it, too, becomes useless.
    fn cleanup_childless_s(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        s_offset: usize,
        t_prev_key: Option<u8>,
        s_prev_key: Option<u8>,
    ) {
        let s = parse_s_node(c.bytes(), s_offset, s_prev_key.or(Some(0)))
            .expect("S record for cleanup");
        // Recompute the key from the original scan (prev may be None for the
        // first child); parse_s_node only needs prev for the key value.
        if s.node_type == NodeType::LeafWithValue || s.child != ChildKind::None {
            return;
        }
        self.remove_s_record(c, embed_chain, t, &s, t_prev_key, s_prev_key);
    }

    fn remove_s_record(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        s: &SNode,
        t_prev_key: Option<u8>,
        s_prev_key: Option<u8>,
    ) {
        // Successor S sibling (if any) needs its delta re-encoded.  The check
        // must stop at the end of the *current region*: the byte after an
        // embedded container's body belongs to the enclosing scope.
        let region_limit = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        let succ_key = if s.end < region_limit
            && !is_invalid(c.bytes()[s.end])
            && !is_t_node(c.bytes()[s.end])
        {
            parse_s_node(c.bytes(), s.end, Some(s.key)).map(|n| n.key)
        } else {
            None
        };
        self.shrink_stream(c, embed_chain, s.offset, s.end - s.offset);
        if let Some(sk) = succ_key {
            self.fix_sibling_delta(c, embed_chain, s.offset, sk, s_prev_key);
        }
        // Remove the T record if it has no children and no value left.
        let region_end = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        // Re-parse with the *true* predecessor key: a delta-encoded T record
        // parsed with `None` would report its raw delta as the key, and that
        // wrong key would cascade into the successor's delta re-encoding in
        // `remove_t_record`, corrupting the stream.
        let t = parse_t_node(c.bytes(), t.offset, t_prev_key).expect("T record for cleanup");
        let has_children = t.header_end < region_end
            && !is_invalid(c.bytes()[t.header_end])
            && !is_t_node(c.bytes()[t.header_end]);
        if !has_children && t.node_type != NodeType::LeafWithValue {
            self.remove_t_record(c, embed_chain, &t, t_prev_key);
        }
    }

    fn remove_t_record(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        prev_key: Option<u8>,
    ) {
        let region_end = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        let succ = if t.header_end < region_end && !is_invalid(c.bytes()[t.header_end]) {
            parse_t_node(c.bytes(), t.header_end, Some(t.key))
        } else {
            None
        };
        let succ_key = succ.map(|n| n.key);
        self.shrink_stream(c, embed_chain, t.offset, t.header_end - t.offset);
        if let Some(sk) = succ_key {
            self.fix_sibling_delta(c, embed_chain, t.offset, sk, prev_key);
        }
    }

    // =====================================================================
    // ordered iteration / range queries
    // =====================================================================
    //
    // The traversal engine lives in `crate::iter`: a stateful cursor walks
    // the container byte stream incrementally.  The lazy iterator entry
    // points (`iter`, `range`, `prefix`, `cursor`) are defined next to it;
    // the callback helpers below are thin adapters over the same cursor.

    /// Invokes `f(key, value)` for every key greater than or equal to `start`
    /// in ascending order, until `f` returns `false` (paper Section 3.1,
    /// "Operations").  Returns `false` if the callback stopped the scan.
    ///
    /// Thin adapter over [`HyperionMap::cursor`].
    pub fn range_from<F: FnMut(&[u8], u64) -> bool>(&self, start: &[u8], f: &mut F) -> bool {
        let mut cursor = self.cursor();
        cursor.seek(start);
        while let Some((key, value)) = cursor.next() {
            if !f(&key, value) {
                return false;
            }
        }
        true
    }

    /// Invokes `f` for every key/value pair in ascending key order.
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        self.range_from(&[], f)
    }

    /// Counts the keys in `[low, high)`.
    pub fn range_count(&self, low: &[u8], high: &[u8]) -> usize {
        self.range(low..high).count()
    }

    /// Collects all key/value pairs (mostly useful in tests).
    pub fn to_vec(&self) -> Vec<(Vec<u8>, u64)> {
        self.iter().collect()
    }

    // =====================================================================
    // structural analysis (memory-efficiency statistics)
    // =====================================================================

    /// Walks the whole trie and gathers the structural statistics the paper
    /// reports in Section 4.3 (delta-encoded nodes, embedded containers,
    /// path-compressed bytes, container sizes).
    pub fn analyze(&self) -> TrieAnalysis {
        let mut a = TrieAnalysis::default();
        if let Some(root) = self.root {
            self.analyze_pointer(root, &mut a);
        }
        a.ejections = self.counters.ejections;
        a.splits = self.counters.splits;
        a
    }

    fn analyze_pointer(&self, hp: HyperionPointer, a: &mut TrieAnalysis) {
        if hp.superbin() == 0 && self.mm.is_chained(hp) {
            a.chained_groups += 1;
            for index in self.mm.chained_valid_slots(hp) {
                let c =
                    ContainerRef::open(&self.mm, ContainerHandle::ChainSlot { head: hp, index });
                a.containers += 1;
                a.container_used_bytes += c.size() as u64;
                a.container_capacity_bytes += c.capacity() as u64;
                self.analyze_region(&c, c.stream_start(), c.stream_end(), a);
            }
        } else {
            let c = ContainerRef::open(&self.mm, ContainerHandle::Standalone(hp));
            a.containers += 1;
            a.container_used_bytes += c.size() as u64;
            a.container_capacity_bytes += c.capacity() as u64;
            self.analyze_region(&c, c.stream_start(), c.stream_end(), a);
        }
    }

    fn analyze_region(&self, c: &ContainerRef, start: usize, end: usize, a: &mut TrieAnalysis) {
        for t in collect_t_records(c, start, end) {
            a.t_nodes += 1;
            if !t.explicit_key {
                a.delta_encoded_nodes += 1;
            }
            if t.value_offset.is_some() {
                a.values += 1;
            }
            if t.has_js {
                a.jump_successors += 1;
            }
            if t.has_jt {
                a.tnode_jump_tables += 1;
            }
            for s in collect_s_records(c, &t, end) {
                a.s_nodes += 1;
                if !s.explicit_key {
                    a.delta_encoded_nodes += 1;
                }
                if s.value_offset.is_some() {
                    a.values += 1;
                }
                match s.child {
                    ChildKind::None => {}
                    ChildKind::PathCompressed => {
                        let (has_value, _, range) =
                            parse_pc_node(c.bytes(), s.child_offset.unwrap());
                        a.pc_nodes += 1;
                        a.pc_suffix_bytes += range.len() as u64;
                        if has_value {
                            a.values += 1;
                        }
                    }
                    ChildKind::Embedded => {
                        a.embedded_containers += 1;
                        let child_off = s.child_offset.unwrap();
                        let size = c.bytes()[child_off] as usize;
                        self.analyze_region(c, child_off + 1, child_off + size, a);
                    }
                    ChildKind::Pointer => {
                        self.analyze_pointer(c.read_hp(s.child_offset.unwrap()), a);
                    }
                }
            }
        }
    }
}

impl Default for HyperionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl KvRead for HyperionMap {
    fn get(&self, key: &[u8]) -> Option<u64> {
        HyperionMap::get(self, key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_footprint(&self) -> usize {
        self.footprint_bytes()
    }

    fn name(&self) -> &'static str {
        if self.config.key_preprocessing {
            "hyperion_p"
        } else {
            "hyperion"
        }
    }
}

impl KvWrite for HyperionMap {
    fn put(&mut self, key: &[u8], value: u64) -> bool {
        HyperionMap::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        HyperionMap::delete(self, key)
    }
}

impl OrderedRead for HyperionMap {
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool) {
        let mut wrapper = |k: &[u8], v: u64| f(k, v);
        self.range_from(start, &mut wrapper);
    }

    /// Overrides the eager default with the native lazy cursor.
    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        let mut cursor = self.cursor();
        cursor.seek(start);
        Entries::from_lazy(cursor)
    }

    /// Overrides the bounded default with the native lazy cursor.
    fn range_iter(&self, start: &[u8], end: &[u8]) -> Entries<'_> {
        self.iter_from(start).below(end.to_vec())
    }
}

impl std::fmt::Debug for HyperionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl Extend<(Vec<u8>, u64)> for HyperionMap {
    fn extend<I: IntoIterator<Item = (Vec<u8>, u64)>>(&mut self, iter: I) {
        for (key, value) in iter {
            self.put(&key, value);
        }
    }
}

impl<'k> Extend<(&'k [u8], u64)> for HyperionMap {
    fn extend<I: IntoIterator<Item = (&'k [u8], u64)>>(&mut self, iter: I) {
        for (key, value) in iter {
            self.put(key, value);
        }
    }
}

impl FromIterator<(Vec<u8>, u64)> for HyperionMap {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, u64)>>(iter: I) -> Self {
        let mut map = HyperionMap::new();
        map.extend(iter);
        map
    }
}

impl<'k> FromIterator<(&'k [u8], u64)> for HyperionMap {
    fn from_iter<I: IntoIterator<Item = (&'k [u8], u64)>>(iter: I) -> Self {
        let mut map = HyperionMap::new();
        map.extend(iter);
        map
    }
}

impl<'a> IntoIterator for &'a HyperionMap {
    type Item = (Vec<u8>, u64);
    type IntoIter = crate::iter::Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for HyperionMap {
    type Item = (Vec<u8>, u64);
    type IntoIter = std::vec::IntoIter<(Vec<u8>, u64)>;

    /// Consumes the map.  The containers are drained into a sorted `Vec`
    /// first; the underlying arena memory is released with the map.
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl HyperionMap {
    /// Test-only consistency check: verifies that every jump-successor offset
    /// points exactly at the next T sibling (or the end of the used region).
    /// Returns a description of the first violation found.
    #[doc(hidden)]
    pub fn validate_jump_offsets(&self) -> Result<(), String> {
        let Some(root) = self.root else { return Ok(()) };
        let mut pending = vec![root];
        while let Some(hp) = pending.pop() {
            let handles: Vec<ContainerHandle> = if hp.superbin() == 0 && self.mm.is_chained(hp) {
                self.mm
                    .chained_valid_slots(hp)
                    .into_iter()
                    .map(|index| ContainerHandle::ChainSlot { head: hp, index })
                    .collect()
            } else {
                vec![ContainerHandle::Standalone(hp)]
            };
            for handle in handles {
                let c = ContainerRef::open(&self.mm, handle);
                let end = c.stream_end();
                let records = collect_t_records(&c, c.stream_start(), end);
                for t in &records {
                    if let Some(js_off) = t.js_offset {
                        let v = c.read_u16(js_off) as usize;
                        if v != 0 {
                            // Re-derive the true next sibling by record walking.
                            let mut p = t.header_end;
                            let bytes = c.bytes();
                            while p < end && !is_invalid(bytes[p]) && !is_t_node(bytes[p]) {
                                let s = parse_s_node(bytes, p, None).unwrap();
                                p = s.end;
                            }
                            if t.offset + v != p {
                                return Err(format!(
                                    "{handle:?}: T at {} key {} js target {} but true next {}",
                                    t.offset,
                                    t.key,
                                    t.offset + v,
                                    p
                                ));
                            }
                        }
                    }
                    for s in collect_s_records(&c, t, end) {
                        if s.child == ChildKind::Pointer {
                            pending.push(c.read_hp(s.child_offset.unwrap()));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test: removing a *delta-encoded* T record used to re-parse
    /// it with no predecessor context, report the raw delta as its key, and
    /// re-encode the successor sibling's delta against that wrong key —
    /// silently corrupting the byte stream (wrong/garbage key bytes surfaced
    /// by `get` misses and impossible keys in iteration).  Found by the
    /// `HyperionDb` stress test; fixed in `remove_s_record`.
    #[test]
    fn delete_reencodes_successor_of_delta_encoded_sibling() {
        let mut map = HyperionMap::new();
        let mut reference = std::collections::BTreeMap::new();
        let mut x: u64 = 0x9e3779b9;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        // Interleaved short prefixes create sibling T records one delta
        // apart; the delete mix removes middle siblings of delta chains.
        for round in 0..20_000u64 {
            let key = format!("t{}:{:06}", step() % 8, step() % 4000).into_bytes();
            if step() % 4 == 0 {
                map.delete(&key);
                reference.remove(&key);
            } else {
                let v = step();
                map.put(&key, v);
                reference.insert(key, v);
            }
            if round % 997 == 0 {
                let got: Vec<_> = map.iter().collect();
                let expected: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
                assert_eq!(got, expected, "stream corrupt after round {round}");
            }
        }
        for (k, v) in &reference {
            assert_eq!(
                map.get(k),
                Some(*v),
                "lost {:?}",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn put_get_small_words() {
        // The running example from the paper (Figure 1).
        let words: &[&[u8]] = &[b"a", b"and", b"be", b"that", b"the", b"to"];
        let mut map = HyperionMap::new();
        for (i, w) in words.iter().enumerate() {
            assert!(map.put(w, i as u64), "{:?} should be new", w);
        }
        assert_eq!(map.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(map.get(w), Some(i as u64), "lookup {:?}", w);
        }
        assert_eq!(map.get(b"th"), None);
        assert_eq!(map.get(b"toa"), None);
        assert_eq!(map.get(b""), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut map = HyperionMap::new();
        assert!(map.put(b"key", 1));
        assert!(!map.put(b"key", 2));
        assert_eq!(map.get(b"key"), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn empty_key_is_supported() {
        let mut map = HyperionMap::new();
        assert!(map.put(b"", 42));
        assert_eq!(map.get(b""), Some(42));
        assert_eq!(map.len(), 1);
        assert!(map.delete(b""));
        assert_eq!(map.get(b""), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn ordered_iteration_matches_sorted_input() {
        let mut map = HyperionMap::new();
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("key-{:05}", i * 7919 % 1000).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            map.put(k, i as u64);
        }
        let mut expected: Vec<Vec<u8>> = keys.clone();
        expected.sort();
        expected.dedup();
        let got: Vec<Vec<u8>> = map.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut map = HyperionMap::new();
        map.put(b"a", 1);
        map.put(b"ab", 2);
        map.put(b"abc", 3);
        map.put(b"abcd", 4);
        map.put(b"abcdefghij", 5);
        for (k, v) in [
            (&b"a"[..], 1),
            (b"ab", 2),
            (b"abc", 3),
            (b"abcd", 4),
            (b"abcdefghij", 5),
        ] {
            assert_eq!(map.get(k), Some(v), "{:?}", k);
        }
        assert_eq!(map.get(b"abcde"), None);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn delete_removes_only_target() {
        let mut map = HyperionMap::new();
        map.put(b"alpha", 1);
        map.put(b"alphabet", 2);
        map.put(b"beta", 3);
        assert!(map.delete(b"alpha"));
        assert!(!map.delete(b"alpha"));
        assert_eq!(map.get(b"alpha"), None);
        assert_eq!(map.get(b"alphabet"), Some(2));
        assert_eq!(map.get(b"beta"), Some(3));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn range_from_respects_start_and_stop() {
        let mut map = HyperionMap::new();
        for i in 0..100u64 {
            map.put(format!("k{:03}", i).as_bytes(), i);
        }
        let mut seen = Vec::new();
        map.range_from(b"k050", &mut |k, v| {
            seen.push((k.to_vec(), v));
            seen.len() < 10
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0].0, b"k050".to_vec());
        assert_eq!(seen[9].0, b"k059".to_vec());
    }

    #[test]
    fn preprocessing_round_trips_keys() {
        let mut map = HyperionMap::with_config(HyperionConfig::with_preprocessing());
        let keys: Vec<[u8; 8]> = (0..500u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_be_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            map.put(k, i as u64);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(map.get(k), Some(i as u64));
        }
        // Iteration must return the original (un-transformed) keys in order.
        let mut sorted = keys.clone();
        sorted.sort();
        let got: Vec<Vec<u8>> = map.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, sorted.iter().map(|k| k.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn many_random_integer_keys() {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        let mut reference = std::collections::BTreeMap::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x.to_be_bytes();
            map.put(&key, i);
            reference.insert(key.to_vec(), i);
        }
        assert_eq!(map.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(map.get(k), Some(*v));
        }
        let got = map.to_vec();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sequential_integers_trigger_ejections() {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        for i in 0..50_000u64 {
            map.put(&i.to_be_bytes(), i);
        }
        for i in (0..50_000u64).step_by(997) {
            assert_eq!(map.get(&i.to_be_bytes()), Some(i));
        }
        let analysis = map.analyze();
        assert!(analysis.containers >= 1);
        assert!(
            analysis.delta_encoded_nodes > 0,
            "sequential keys must delta-encode"
        );
        assert_eq!(map.len(), 50_000);
    }

    #[test]
    fn analysis_counts_are_consistent() {
        let mut map = HyperionMap::new();
        for i in 0..2000u64 {
            map.put(format!("prefix-{:08}", i).as_bytes(), i);
        }
        let a = map.analyze();
        assert_eq!(a.values, 2000);
        assert!(a.t_nodes > 0 && a.s_nodes > 0);
        assert!(a.container_used_bytes <= a.container_capacity_bytes);
    }
}

//! The Hyperion trie: a carefully growing 65,536-ary trie stored in
//! exact-fit containers (paper Section 3).
//!
//! Every container encodes a 16-bit partial key as a two-level internal trie
//! of T-nodes (first 8 bits) and S-nodes (second 8 bits).  Children are
//! referenced through 5-byte Hyperion Pointers, embedded directly into the
//! parent container, or stored as path-compressed suffixes.  All updates keep
//! the siblings ordered, which enables delta encoding, early miss detection
//! and fast ordered range queries.
//!
//! Point reads go through the single-pass read engine in [`crate::read`]
//! ([`HyperionMap::get`], [`HyperionMap::contains_key`], and the batched
//! [`HyperionMap::get_many`]); ordered reads live in [`crate::iter`] (the
//! cursor / lazy iterators).  Every mutation — [`HyperionMap::put`], the
//! sorted batch path [`HyperionMap::put_many`], [`HyperionMap::delete`] —
//! delegates to the single-pass write engine in [`crate::write`], which
//! documents the descent, split and gap-coalescing protocol the read engine
//! mirrors.

use crate::config::HyperionConfig;
use crate::container::{ContainerHandle, ContainerRef};
use crate::keys::{postprocess_key, preprocess_key, TransformedKey};
use crate::node::{
    is_invalid, is_t_node, parse_pc_node, parse_s_node, parse_t_node, ChildKind, NodeType,
    TNODE_JT_ENTRIES, TNODE_JT_STRIDE,
};
use crate::scan::{collect_s_records, collect_t_records};
use crate::seqlock::MapSeq;
use crate::shortcut::Shortcut;
use crate::stats::{ShortcutStats, TrieAnalysis, TrieCounters};
use crate::write::{WriteEngine, WriteError};
use crate::{Entries, KvRead, KvWrite, OrderedRead};
use hyperion_mem::{HyperionPointer, MemoryManager};
use std::borrow::Cow;

/// A memory-efficient ordered map from byte-string keys to `u64` values.
///
/// This is the single-threaded core of Hyperion; [`crate::ConcurrentHyperion`]
/// shards keys over multiple `HyperionMap` arenas for thread-safe access.
pub struct HyperionMap {
    mm: MemoryManager,
    config: HyperionConfig,
    root: Option<HyperionPointer>,
    empty_key_value: Option<u64>,
    len: usize,
    counters: TrieCounters,
    pub(crate) shortcut: Shortcut,
    /// Seqlock version word read by the optimistic readers of
    /// [`crate::HyperionDb`]; bumped odd/even around every mutation below.
    pub(crate) seq: MapSeq,
}

impl HyperionMap {
    /// Creates an empty map with the default configuration.
    pub fn new() -> Self {
        Self::with_config(HyperionConfig::default())
    }

    /// Creates an empty map with the given configuration.
    pub fn with_config(config: HyperionConfig) -> Self {
        HyperionMap {
            mm: MemoryManager::new(),
            config,
            root: None,
            empty_key_value: None,
            len: 0,
            counters: TrieCounters::default(),
            shortcut: Shortcut::new(config.shortcut_capacity),
            seq: MapSeq::new(),
        }
    }

    /// The configuration this map was created with.
    pub fn config(&self) -> &HyperionConfig {
        &self.config
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Structural counters (ejections, splits, ...).
    pub fn counters(&self) -> TrieCounters {
        self.counters
    }

    /// Counter snapshot of the hashed shortcut layer (all zeros when the
    /// shortcut is disabled via [`HyperionConfig::shortcut_capacity`]).
    pub fn shortcut_stats(&self) -> ShortcutStats {
        self.shortcut.stats()
    }

    /// Structural events (splits, ejections, aborted splits) the write engine
    /// noted on this map's seqlock — the torn-read hazard rate optimistic
    /// readers' retry counters are measured against.
    pub fn structural_events(&self) -> u64 {
        self.seq.structural_events()
    }

    /// Access to the underlying memory manager (read-only), e.g. for
    /// collecting the per-superbin statistics of Figures 14 and 16.
    pub fn memory_manager(&self) -> &MemoryManager {
        &self.mm
    }

    /// Logical memory footprint in bytes (segments + heap held by the
    /// allocator, plus the map header itself).
    pub fn footprint_bytes(&self) -> usize {
        self.mm.footprint_bytes() as usize
            + self.shortcut.footprint_bytes()
            + std::mem::size_of::<Self>()
    }

    fn transform<'k>(&self, key: &'k [u8]) -> Cow<'k, [u8]> {
        if self.config.key_preprocessing {
            Cow::Owned(preprocess_key(key))
        } else {
            Cow::Borrowed(key)
        }
    }

    fn restore_key(&self, key: &[u8]) -> Vec<u8> {
        if self.config.key_preprocessing {
            postprocess_key(key).unwrap_or_else(|| key.to_vec())
        } else {
            key.to_vec()
        }
    }

    /// The root pointer of the trie (cursor entry point; also used by
    /// external structure diagnostics together with
    /// [`HyperionMap::memory_manager`]).
    pub fn root_pointer(&self) -> Option<HyperionPointer> {
        self.root
    }

    /// The value stored under the empty key, if any (crate-internal).
    pub(crate) fn empty_key_value(&self) -> Option<u64> {
        self.empty_key_value
    }

    /// Applies the configured key pre-processing (crate-internal).
    pub(crate) fn transform_key<'k>(&self, key: &'k [u8]) -> Cow<'k, [u8]> {
        self.transform(key)
    }

    /// Undoes the configured key pre-processing (crate-internal).
    pub(crate) fn restore_key_bytes(&self, key: &[u8]) -> Vec<u8> {
        self.restore_key(key)
    }

    // =====================================================================
    // get (delegates to the single-pass read engine in `crate::read`)
    // =====================================================================

    /// Looks up a key and returns its value, if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let key = TransformedKey::new(key, self.config.key_preprocessing);
        if key.is_empty() {
            return self.empty_key_value;
        }
        self.lookup_transformed(&key, true)
    }

    /// `true` if the key is present.
    ///
    /// Shares the read engine's fast path with [`HyperionMap::get`] but stops
    /// at the record match without reading the value word.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        let key = TransformedKey::new(key, self.config.key_preprocessing);
        if key.is_empty() {
            return self.empty_key_value.is_some();
        }
        self.lookup_transformed(&key, false).is_some()
    }

    // =====================================================================
    // put (delegates to the single-pass write engine in `crate::write`)
    // =====================================================================

    /// Inserts or updates a key.  Returns `true` if the key was not present
    /// before.
    ///
    /// # Panics
    /// Panics if the write engine fails to converge (a broken structural
    /// invariant; see [`WriteError::StructuralLoop`]).  Use
    /// [`HyperionMap::try_put`] for a typed error instead.
    pub fn put(&mut self, key: &[u8], value: u64) -> bool {
        self.try_put(key, value)
            .expect("write engine failed to converge")
    }

    /// Inserts or updates a key, surfacing engine failures as a typed error
    /// instead of panicking.  Returns `Ok(true)` if the key was not present
    /// before.
    pub fn try_put(&mut self, key: &[u8], value: u64) -> Result<bool, WriteError> {
        let _span = self.seq.mutation();
        // Declared after the span so it drops first: a deferred failpoint
        // trip firing at op end still unwinds inside the mutation span.
        #[cfg(feature = "failpoints")]
        let _fp_op = hyperion_mem::failpoint::op_guard();
        let key = self.transform(key).into_owned();
        if key.is_empty() {
            let inserted = self.empty_key_value.is_none();
            self.empty_key_value = Some(value);
            if inserted {
                self.len += 1;
            }
            return Ok(inserted);
        }
        Ok(self.write_transformed(vec![(key, value)])? == 1)
    }

    /// Inserts or updates many keys in one locality-aware pass.
    ///
    /// The pairs may arrive in any order and may contain duplicate keys (the
    /// last value wins, like sequential puts).  Internally the keys are
    /// sorted (in transformed key space) so the write engine descends once
    /// per shared prefix, resumes its container scans across consecutive
    /// keys, and splices runs of new records through one coalesced gap per
    /// edit site instead of one memmove per key.  Returns the number of keys
    /// that were not present before.
    ///
    /// # Panics
    /// Panics if the write engine fails to converge; use
    /// [`HyperionMap::try_put_many`] for a typed error.
    pub fn put_many<'k, I>(&mut self, pairs: I) -> usize
    where
        I: IntoIterator<Item = (&'k [u8], u64)>,
    {
        self.try_put_many(pairs)
            .expect("write engine failed to converge")
    }

    /// [`HyperionMap::put_many`] with a typed error surface.
    pub fn try_put_many<'k, I>(&mut self, pairs: I) -> Result<usize, WriteError>
    where
        I: IntoIterator<Item = (&'k [u8], u64)>,
    {
        let _span = self.seq.mutation();
        #[cfg(feature = "failpoints")]
        let _fp_op = hyperion_mem::failpoint::op_guard();
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut empty_key: Option<u64> = None;
        for (key, value) in pairs {
            let key = self.transform(key).into_owned();
            if key.is_empty() {
                empty_key = Some(value);
            } else {
                entries.push((key, value));
            }
        }
        let mut inserted = 0usize;
        if let Some(value) = empty_key {
            if self.empty_key_value.is_none() {
                self.len += 1;
                inserted += 1;
            }
            self.empty_key_value = Some(value);
        }
        // Stable sort + last-wins dedup: equal keys keep arrival order, so
        // keeping the final element of each run matches sequential puts.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut deduped: Vec<(Vec<u8>, u64)> = Vec::with_capacity(entries.len());
        for entry in entries {
            match deduped.last_mut() {
                Some(last) if last.0 == entry.0 => *last = entry,
                _ => deduped.push(entry),
            }
        }
        inserted += self.write_transformed(deduped)?;
        Ok(inserted)
    }

    /// Applies strictly ascending, de-duplicated transformed-key entries
    /// through the write engine and maintains `root` / `len`.
    fn write_transformed(&mut self, entries: Vec<(Vec<u8>, u64)>) -> Result<usize, WriteError> {
        if entries.is_empty() {
            return Ok(0);
        }
        let root = match self.root {
            Some(root) => root,
            None => {
                let c = ContainerRef::create(&mut self.mm, &[]);
                let hp = c.handle().stored_pointer();
                self.root = Some(hp);
                hp
            }
        };
        let mut new_root = root;
        let mut inserted = 0usize;
        let run = |this: &mut HyperionMap, new_root: &mut HyperionPointer, inserted: &mut usize| {
            let HyperionMap {
                mm,
                config,
                counters,
                shortcut,
                seq,
                ..
            } = this;
            let mut engine = WriteEngine::new(mm, config, counters, shortcut, seq);
            engine.write_into_pointer(new_root, 0, &entries, inserted)
        };
        #[cfg(not(feature = "failpoints"))]
        let result = run(self, &mut new_root, &mut inserted);
        // A deferred failpoint trip unwinds out of the engine at a top-level
        // visit boundary.  The out-parameters are current there, so commit
        // them exactly like the Err path before re-raising — the completed
        // visits are real and the old root allocation may be freed.
        #[cfg(feature = "failpoints")]
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(self, &mut new_root, &mut inserted)
        })) {
            Ok(result) => result,
            Err(payload) => {
                if new_root != root {
                    self.root = Some(new_root);
                }
                self.len += inserted;
                self.shortcut.clear();
                std::panic::resume_unwind(payload);
            }
        };
        // Commit progress even on failure: a split may have freed the old
        // root allocation, and the inserts applied before the failure are
        // real.  On `StructuralLoop` the failing container's own tally is
        // indeterminate and the map must be treated as corrupt, but the
        // committed state keeps reads from walking freed memory.
        if new_root != root {
            self.root = Some(new_root);
        }
        self.len += inserted;
        if let Err(err) = result {
            // The failed write may have freed or moved containers without
            // unwinding to the hooks that keep the shortcut coherent —
            // invalidate everything rather than trust any entry.
            self.shortcut.clear();
            return Err(err);
        }
        Ok(inserted)
    }

    // =====================================================================
    // delete
    // =====================================================================

    /// Removes a key.  Returns `true` if the key was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let _span = self.seq.mutation();
        #[cfg(feature = "failpoints")]
        let _fp_op = hyperion_mem::failpoint::op_guard();
        let key = self.transform(key).into_owned();
        if key.is_empty() {
            let removed = self.empty_key_value.take().is_some();
            if removed {
                self.len -= 1;
            }
            return removed;
        }
        let Some(root) = self.root else {
            return false;
        };
        let (new_root, removed, now_empty) = {
            let HyperionMap {
                mm,
                config,
                counters,
                shortcut,
                seq,
                ..
            } = self;
            let mut engine = WriteEngine::new(mm, config, counters, shortcut, seq);
            engine.delete_in_pointer(root, &key, 0)
        };
        if removed {
            self.len -= 1;
        }
        if now_empty {
            self.mm.free(new_root);
            self.root = None;
            // The freed root is the last container: no prefix remains valid.
            self.shortcut.clear();
        } else if new_root != root {
            self.root = Some(new_root);
        }
        removed
    }

    /// Removes many keys in one locality-aware pass.  `results[i]` is `true`
    /// iff `keys[i]` was present when its delete applied; duplicate keys are
    /// fine (the first occurrence removes, later ones report `false`, exactly
    /// like sequential deletes).
    ///
    /// The deletions are applied in sorted key order (stable, so duplicates
    /// keep arrival order) — consecutive deletes then revisit the same
    /// containers while they are still cache-hot, the read-side mirror of
    /// the [`HyperionMap::put_many`] / [`HyperionMap::get_many`] sort.  Each
    /// delete still descends on its own: a structural delete (record removal,
    /// gap shrink) invalidates any resume point a batched walk could carry.
    pub fn delete_many(&mut self, keys: &[&[u8]]) -> Vec<bool> {
        let _span = self.seq.mutation();
        #[cfg(feature = "failpoints")]
        let _fp_op = hyperion_mem::failpoint::op_guard();
        let mut results = vec![false; keys.len()];
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_by(|&a, &b| keys[a as usize].cmp(keys[b as usize]));
        for &i in &order {
            results[i as usize] = self.delete(keys[i as usize]);
        }
        results
    }

    // =====================================================================
    // ordered iteration / range queries
    // =====================================================================
    //
    // The traversal engine lives in `crate::iter`: a stateful cursor walks
    // the container byte stream incrementally.  The lazy iterator entry
    // points (`iter`, `range`, `prefix`, `cursor`) are defined next to it;
    // the callback helpers below are thin adapters over the same cursor.

    /// Invokes `f(key, value)` for every key greater than or equal to `start`
    /// in ascending order, until `f` returns `false` (paper Section 3.1,
    /// "Operations").  Returns `false` if the callback stopped the scan.
    ///
    /// Thin adapter over [`HyperionMap::cursor`].
    pub fn range_from<F: FnMut(&[u8], u64) -> bool>(&self, start: &[u8], f: &mut F) -> bool {
        let mut cursor = self.cursor();
        cursor.seek(start);
        while let Some((key, value)) = cursor.next() {
            if !f(&key, value) {
                return false;
            }
        }
        true
    }

    /// Invokes `f` for every key/value pair in ascending key order.
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        self.range_from(&[], f)
    }

    /// Counts the keys in `[low, high)`.
    pub fn range_count(&self, low: &[u8], high: &[u8]) -> usize {
        self.range(low..high).count()
    }

    /// Collects all key/value pairs (mostly useful in tests).
    pub fn to_vec(&self) -> Vec<(Vec<u8>, u64)> {
        self.iter().collect()
    }

    // =====================================================================
    // structural analysis (memory-efficiency statistics)
    // =====================================================================

    /// Walks the whole trie and gathers the structural statistics the paper
    /// reports in Section 4.3 (delta-encoded nodes, embedded containers,
    /// path-compressed bytes, container sizes).
    pub fn analyze(&self) -> TrieAnalysis {
        let mut a = TrieAnalysis::default();
        if let Some(root) = self.root {
            self.analyze_pointer(root, &mut a);
        }
        a.ejections = self.counters.ejections;
        a.splits = self.counters.splits;
        a
    }

    fn analyze_pointer(&self, hp: HyperionPointer, a: &mut TrieAnalysis) {
        if hp.superbin() == 0 && self.mm.is_chained(hp) {
            a.chained_groups += 1;
            for index in self.mm.chained_valid_slots(hp) {
                let c =
                    ContainerRef::open(&self.mm, ContainerHandle::ChainSlot { head: hp, index });
                a.containers += 1;
                a.container_used_bytes += c.size() as u64;
                a.container_capacity_bytes += c.capacity() as u64;
                self.analyze_region(&c, c.stream_start(), c.stream_end(), a);
            }
        } else {
            let c = ContainerRef::open(&self.mm, ContainerHandle::Standalone(hp));
            a.containers += 1;
            a.container_used_bytes += c.size() as u64;
            a.container_capacity_bytes += c.capacity() as u64;
            self.analyze_region(&c, c.stream_start(), c.stream_end(), a);
        }
    }

    fn analyze_region(&self, c: &ContainerRef, start: usize, end: usize, a: &mut TrieAnalysis) {
        for t in collect_t_records(c, start, end) {
            a.t_nodes += 1;
            if !t.explicit_key {
                a.delta_encoded_nodes += 1;
            }
            if t.value_offset.is_some() {
                a.values += 1;
            }
            if t.has_js {
                a.jump_successors += 1;
            }
            if t.has_jt {
                a.tnode_jump_tables += 1;
            }
            for s in collect_s_records(c, &t, end) {
                a.s_nodes += 1;
                if !s.explicit_key {
                    a.delta_encoded_nodes += 1;
                }
                if s.value_offset.is_some() {
                    a.values += 1;
                }
                match s.child {
                    ChildKind::None => {}
                    ChildKind::PathCompressed => {
                        let (has_value, _, range) =
                            parse_pc_node(c.bytes(), s.child_offset.unwrap());
                        a.pc_nodes += 1;
                        a.pc_suffix_bytes += range.len() as u64;
                        if has_value {
                            a.values += 1;
                        }
                    }
                    ChildKind::Embedded => {
                        a.embedded_containers += 1;
                        let child_off = s.child_offset.unwrap();
                        let size = c.bytes()[child_off] as usize;
                        self.analyze_region(c, child_off + 1, child_off + size, a);
                    }
                    ChildKind::Pointer => {
                        self.analyze_pointer(c.read_hp(s.child_offset.unwrap()), a);
                    }
                }
            }
        }
    }
}

impl Default for HyperionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl KvRead for HyperionMap {
    fn get(&self, key: &[u8]) -> Option<u64> {
        HyperionMap::get(self, key)
    }

    /// Overrides the `get`-based default with the value-free fast path.
    fn contains(&self, key: &[u8]) -> bool {
        HyperionMap::contains_key(self, key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_footprint(&self) -> usize {
        self.footprint_bytes()
    }

    fn name(&self) -> &'static str {
        if self.config.key_preprocessing {
            "hyperion_p"
        } else {
            "hyperion"
        }
    }
}

impl KvWrite for HyperionMap {
    fn put(&mut self, key: &[u8], value: u64) -> bool {
        HyperionMap::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        HyperionMap::delete(self, key)
    }
}

impl OrderedRead for HyperionMap {
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool) {
        let mut wrapper = |k: &[u8], v: u64| f(k, v);
        self.range_from(start, &mut wrapper);
    }

    /// Overrides the eager default with the native lazy cursor; the wrapped
    /// [`crate::Range`] is double-ended, so `next_back` stays lazy too.
    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        Entries::from_bidi(self.range(start..))
    }

    /// Overrides the bounded default with the native lazy cursor.
    fn range_iter(&self, start: &[u8], end: &[u8]) -> Entries<'_> {
        Entries::from_bidi(self.range(start..end))
    }

    /// Overrides the full forward walk with the reverse cursor.
    fn last(&self) -> Option<(Vec<u8>, u64)> {
        HyperionMap::last(self)
    }

    /// Overrides the forward walk-to-bound with the reverse cursor.
    fn pred(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        HyperionMap::pred(self, key)
    }
}

impl std::fmt::Debug for HyperionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl Extend<(Vec<u8>, u64)> for HyperionMap {
    /// Routes through [`HyperionMap::put_many`]: the keys are sorted and
    /// applied in one locality-aware pass of the write engine.
    fn extend<I: IntoIterator<Item = (Vec<u8>, u64)>>(&mut self, iter: I) {
        let pairs: Vec<(Vec<u8>, u64)> = iter.into_iter().collect();
        self.put_many(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
    }
}

impl<'k> Extend<(&'k [u8], u64)> for HyperionMap {
    /// Routes through [`HyperionMap::put_many`]: the keys are sorted and
    /// applied in one locality-aware pass of the write engine.
    fn extend<I: IntoIterator<Item = (&'k [u8], u64)>>(&mut self, iter: I) {
        self.put_many(iter);
    }
}

impl FromIterator<(Vec<u8>, u64)> for HyperionMap {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, u64)>>(iter: I) -> Self {
        let mut map = HyperionMap::new();
        map.extend(iter);
        map
    }
}

impl<'k> FromIterator<(&'k [u8], u64)> for HyperionMap {
    fn from_iter<I: IntoIterator<Item = (&'k [u8], u64)>>(iter: I) -> Self {
        let mut map = HyperionMap::new();
        map.extend(iter);
        map
    }
}

impl<'a> IntoIterator for &'a HyperionMap {
    type Item = (Vec<u8>, u64);
    type IntoIter = crate::iter::Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for HyperionMap {
    type Item = (Vec<u8>, u64);
    type IntoIter = std::vec::IntoIter<(Vec<u8>, u64)>;

    /// Consumes the map.  The containers are drained into a sorted `Vec`
    /// first; the underlying arena memory is released with the map.
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl HyperionMap {
    /// Test-only structural invariant check: walks every container and
    /// verifies header consistency (size / free fields), record ordering and
    /// delta encoding, region containment of every record, jump-successor
    /// and jump-table targets, container-jump-table entries, and that the
    /// total number of stored values matches [`HyperionMap::len`].  Returns
    /// a description of the first violation found.
    #[doc(hidden)]
    pub fn validate_structure(&self) -> Result<(), String> {
        let mut values: usize = usize::from(self.empty_key_value.is_some());
        let Some(root) = self.root else {
            return if values == self.len {
                Ok(())
            } else {
                Err(format!("empty trie but len is {}", self.len))
            };
        };
        let mut pending = vec![root];
        while let Some(hp) = pending.pop() {
            let handles: Vec<ContainerHandle> = if hp.superbin() == 0 && self.mm.is_chained(hp) {
                self.mm
                    .chained_valid_slots(hp)
                    .into_iter()
                    .map(|index| ContainerHandle::ChainSlot { head: hp, index })
                    .collect()
            } else {
                vec![ContainerHandle::Standalone(hp)]
            };
            for handle in handles {
                let c = ContainerRef::open(&self.mm, handle);
                if c.size() > c.capacity() {
                    return Err(format!(
                        "{handle:?}: size {} exceeds capacity {}",
                        c.size(),
                        c.capacity()
                    ));
                }
                if c.stream_start() > c.size() {
                    return Err(format!(
                        "{handle:?}: stream start {} past size {}",
                        c.stream_start(),
                        c.size()
                    ));
                }
                let expected_free = (c.capacity() - c.size()).min(127);
                if c.free_field() != expected_free {
                    return Err(format!(
                        "{handle:?}: free field {} but capacity-size is {expected_free}",
                        c.free_field()
                    ));
                }
                if c.has_key_lane() {
                    crate::scan_kernel::validate_lane(&c)
                        .map_err(|e| format!("{handle:?}: {e}"))?;
                }
                let mut prev_cjt_key: Option<u8> = None;
                for (key, off) in c.cjt_entries() {
                    let target = c.stream_start() + off as usize;
                    if target >= c.stream_end() {
                        return Err(format!("{handle:?}: CJT entry {key} past stream end"));
                    }
                    match parse_t_node(c.bytes(), target, None) {
                        Some(t) if t.explicit_key && t.key == key => {}
                        other => {
                            return Err(format!(
                                "{handle:?}: CJT entry {key}@{target} does not reference an \
                                 explicit T record with that key ({other:?})"
                            ));
                        }
                    }
                    if prev_cjt_key.is_some_and(|p| key <= p) {
                        return Err(format!("{handle:?}: CJT keys not ascending at {key}"));
                    }
                    prev_cjt_key = Some(key);
                }
                self.validate_region(
                    &c,
                    c.stream_start(),
                    c.stream_end(),
                    &handle,
                    &mut pending,
                    &mut values,
                )?;
            }
        }
        if values != self.len {
            return Err(format!(
                "trie stores {values} values but len is {}",
                self.len
            ));
        }
        Ok(())
    }

    fn validate_region(
        &self,
        c: &ContainerRef,
        start: usize,
        end: usize,
        handle: &ContainerHandle,
        pending: &mut Vec<HyperionPointer>,
        values: &mut usize,
    ) -> Result<(), String> {
        let bytes = c.bytes();
        let mut pos = start;
        let mut prev_t: Option<u8> = None;
        while pos < end && !is_invalid(bytes[pos]) {
            if !is_t_node(bytes[pos]) {
                return Err(format!("{handle:?}: S record at T position {pos}"));
            }
            let Some(t) = parse_t_node(bytes, pos, prev_t) else {
                return Err(format!("{handle:?}: unparsable T record at {pos}"));
            };
            if prev_t.is_none() && !t.explicit_key {
                return Err(format!(
                    "{handle:?}: first T record of region {start} is delta-encoded"
                ));
            }
            if t.explicit_key && prev_t.is_some_and(|p| t.key <= p) {
                return Err(format!(
                    "{handle:?}: T records out of order at {pos} (key {})",
                    t.key
                ));
            }
            if t.header_end > end {
                return Err(format!("{handle:?}: T record at {pos} spills past region"));
            }
            if t.node_type == NodeType::LeafWithValue {
                *values += 1;
            }
            let mut spos = t.header_end;
            let mut prev_s: Option<u8> = None;
            while spos < end && !is_invalid(bytes[spos]) && !is_t_node(bytes[spos]) {
                let Some(s) = parse_s_node(bytes, spos, prev_s) else {
                    return Err(format!("{handle:?}: unparsable S record at {spos}"));
                };
                if prev_s.is_none() && !s.explicit_key {
                    return Err(format!(
                        "{handle:?}: first S child of T@{pos} is delta-encoded"
                    ));
                }
                if s.explicit_key && prev_s.is_some_and(|p| s.key <= p) {
                    return Err(format!(
                        "{handle:?}: S records out of order at {spos} (key {})",
                        s.key
                    ));
                }
                if s.end > end {
                    return Err(format!("{handle:?}: S record at {spos} spills past region"));
                }
                if s.node_type == NodeType::LeafWithValue {
                    *values += 1;
                }
                match s.child {
                    ChildKind::None => {}
                    ChildKind::PathCompressed => {
                        let child_off = s.child_offset.expect("pc child offset");
                        let (has_value, _, range) = parse_pc_node(bytes, child_off);
                        if range.end > s.end {
                            return Err(format!(
                                "{handle:?}: PC node at {child_off} spills past its S record"
                            ));
                        }
                        if has_value {
                            *values += 1;
                        }
                    }
                    ChildKind::Embedded => {
                        let child_off = s.child_offset.expect("embedded child offset");
                        let size = bytes[child_off] as usize;
                        if size < 2 {
                            return Err(format!(
                                "{handle:?}: empty embedded container at {child_off}"
                            ));
                        }
                        if child_off + size > s.end {
                            return Err(format!(
                                "{handle:?}: embedded container at {child_off} spills past its \
                                 S record"
                            ));
                        }
                        self.validate_region(
                            c,
                            child_off + 1,
                            child_off + size,
                            handle,
                            pending,
                            values,
                        )?;
                    }
                    ChildKind::Pointer => {
                        pending.push(c.read_hp(s.child_offset.expect("pointer child offset")));
                    }
                }
                prev_s = Some(s.key);
                spos = s.end;
            }
            // Jump successor must point exactly at the next T sibling (or the
            // end of the walked run).
            if let Some(js_off) = t.js_offset {
                let v = c.read_u16(js_off) as usize;
                if v != 0 && t.offset + v != spos {
                    return Err(format!(
                        "{handle:?}: T@{} js target {} but true next sibling {spos}",
                        t.offset,
                        t.offset + v
                    ));
                }
            }
            // Jump-table entries must reference explicit-key S children of
            // this T record with keys within the slot bound.
            if let Some(jt_off) = t.jt_offset {
                for slot in 0..TNODE_JT_ENTRIES {
                    let v = c.read_u16(jt_off + slot * 2) as usize;
                    if v == 0 {
                        continue;
                    }
                    let target = t.offset + v;
                    if target <= t.offset || target >= spos {
                        return Err(format!(
                            "{handle:?}: T@{} jt slot {slot} target {target} outside children",
                            t.offset
                        ));
                    }
                    match parse_s_node(bytes, target, None) {
                        Some(s)
                            if s.explicit_key
                                && (s.key as usize) <= TNODE_JT_STRIDE * (slot + 1) => {}
                        other => {
                            return Err(format!(
                                "{handle:?}: T@{} jt slot {slot} bad target ({other:?})",
                                t.offset
                            ));
                        }
                    }
                }
            }
            prev_t = Some(t.key);
            pos = spos;
        }
        if pos != end && !(pos < end && is_invalid(bytes[pos]) && start == c.stream_start()) {
            // Embedded bodies are exact-fit; the top-level stream may only
            // stop early at zeroed (never-written) bytes, which `stream_end`
            // should already exclude.
            return Err(format!(
                "{handle:?}: region [{start}, {end}) ends early at {pos}"
            ));
        }
        Ok(())
    }

    /// Test-only consistency check: verifies that every jump-successor offset
    /// points exactly at the next T sibling (or the end of the used region).
    /// Returns a description of the first violation found.
    #[doc(hidden)]
    pub fn validate_jump_offsets(&self) -> Result<(), String> {
        let Some(root) = self.root else { return Ok(()) };
        let mut pending = vec![root];
        while let Some(hp) = pending.pop() {
            let handles: Vec<ContainerHandle> = if hp.superbin() == 0 && self.mm.is_chained(hp) {
                self.mm
                    .chained_valid_slots(hp)
                    .into_iter()
                    .map(|index| ContainerHandle::ChainSlot { head: hp, index })
                    .collect()
            } else {
                vec![ContainerHandle::Standalone(hp)]
            };
            for handle in handles {
                let c = ContainerRef::open(&self.mm, handle);
                let end = c.stream_end();
                let records = collect_t_records(&c, c.stream_start(), end);
                for t in &records {
                    if let Some(js_off) = t.js_offset {
                        let v = c.read_u16(js_off) as usize;
                        if v != 0 {
                            // Re-derive the true next sibling by record walking.
                            let mut p = t.header_end;
                            let bytes = c.bytes();
                            while p < end && !is_invalid(bytes[p]) && !is_t_node(bytes[p]) {
                                let s = parse_s_node(bytes, p, None).unwrap();
                                p = s.end;
                            }
                            if t.offset + v != p {
                                return Err(format!(
                                    "{handle:?}: T at {} key {} js target {} but true next {}",
                                    t.offset,
                                    t.key,
                                    t.offset + v,
                                    p
                                ));
                            }
                        }
                    }
                    for s in collect_s_records(&c, t, end) {
                        if s.child == ChildKind::Pointer {
                            pending.push(c.read_hp(s.child_offset.unwrap()));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test: removing a *delta-encoded* T record used to re-parse
    /// it with no predecessor context, report the raw delta as its key, and
    /// re-encode the successor sibling's delta against that wrong key —
    /// silently corrupting the byte stream (wrong/garbage key bytes surfaced
    /// by `get` misses and impossible keys in iteration).  Found by the
    /// `HyperionDb` stress test; fixed in `remove_s_record`.
    #[test]
    fn delete_reencodes_successor_of_delta_encoded_sibling() {
        let mut map = HyperionMap::new();
        let mut reference = std::collections::BTreeMap::new();
        let mut x: u64 = 0x9e3779b9;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        // Interleaved short prefixes create sibling T records one delta
        // apart; the delete mix removes middle siblings of delta chains.
        for round in 0..20_000u64 {
            let key = format!("t{}:{:06}", step() % 8, step() % 4000).into_bytes();
            if step() % 4 == 0 {
                map.delete(&key);
                reference.remove(&key);
            } else {
                let v = step();
                map.put(&key, v);
                reference.insert(key, v);
            }
            if round % 997 == 0 {
                let got: Vec<_> = map.iter().collect();
                let expected: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
                assert_eq!(got, expected, "stream corrupt after round {round}");
            }
        }
        for (k, v) in &reference {
            assert_eq!(
                map.get(k),
                Some(*v),
                "lost {:?}",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn put_get_small_words() {
        // The running example from the paper (Figure 1).
        let words: &[&[u8]] = &[b"a", b"and", b"be", b"that", b"the", b"to"];
        let mut map = HyperionMap::new();
        for (i, w) in words.iter().enumerate() {
            assert!(map.put(w, i as u64), "{:?} should be new", w);
        }
        assert_eq!(map.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(map.get(w), Some(i as u64), "lookup {:?}", w);
        }
        assert_eq!(map.get(b"th"), None);
        assert_eq!(map.get(b"toa"), None);
        assert_eq!(map.get(b""), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut map = HyperionMap::new();
        assert!(map.put(b"key", 1));
        assert!(!map.put(b"key", 2));
        assert_eq!(map.get(b"key"), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn empty_key_is_supported() {
        let mut map = HyperionMap::new();
        assert!(map.put(b"", 42));
        assert_eq!(map.get(b""), Some(42));
        assert_eq!(map.len(), 1);
        assert!(map.delete(b""));
        assert_eq!(map.get(b""), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn ordered_iteration_matches_sorted_input() {
        let mut map = HyperionMap::new();
        let keys: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("key-{:05}", i * 7919 % 1000).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            map.put(k, i as u64);
        }
        let mut expected: Vec<Vec<u8>> = keys.clone();
        expected.sort();
        expected.dedup();
        let got: Vec<Vec<u8>> = map.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut map = HyperionMap::new();
        map.put(b"a", 1);
        map.put(b"ab", 2);
        map.put(b"abc", 3);
        map.put(b"abcd", 4);
        map.put(b"abcdefghij", 5);
        for (k, v) in [
            (&b"a"[..], 1),
            (b"ab", 2),
            (b"abc", 3),
            (b"abcd", 4),
            (b"abcdefghij", 5),
        ] {
            assert_eq!(map.get(k), Some(v), "{:?}", k);
        }
        assert_eq!(map.get(b"abcde"), None);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn delete_removes_only_target() {
        let mut map = HyperionMap::new();
        map.put(b"alpha", 1);
        map.put(b"alphabet", 2);
        map.put(b"beta", 3);
        assert!(map.delete(b"alpha"));
        assert!(!map.delete(b"alpha"));
        assert_eq!(map.get(b"alpha"), None);
        assert_eq!(map.get(b"alphabet"), Some(2));
        assert_eq!(map.get(b"beta"), Some(3));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn range_from_respects_start_and_stop() {
        let mut map = HyperionMap::new();
        for i in 0..100u64 {
            map.put(format!("k{:03}", i).as_bytes(), i);
        }
        let mut seen = Vec::new();
        map.range_from(b"k050", &mut |k, v| {
            seen.push((k.to_vec(), v));
            seen.len() < 10
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0].0, b"k050".to_vec());
        assert_eq!(seen[9].0, b"k059".to_vec());
    }

    #[test]
    fn preprocessing_round_trips_keys() {
        let mut map = HyperionMap::with_config(HyperionConfig::with_preprocessing());
        let keys: Vec<[u8; 8]> = (0..500u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_be_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            map.put(k, i as u64);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(map.get(k), Some(i as u64));
        }
        // Iteration must return the original (un-transformed) keys in order.
        let mut sorted = keys.clone();
        sorted.sort();
        let got: Vec<Vec<u8>> = map.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, sorted.iter().map(|k| k.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn many_random_integer_keys() {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        let mut reference = std::collections::BTreeMap::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x.to_be_bytes();
            map.put(&key, i);
            reference.insert(key.to_vec(), i);
        }
        assert_eq!(map.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(map.get(k), Some(*v));
        }
        let got = map.to_vec();
        let expected: Vec<(Vec<u8>, u64)> = reference.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sequential_integers_trigger_ejections() {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        for i in 0..50_000u64 {
            map.put(&i.to_be_bytes(), i);
        }
        for i in (0..50_000u64).step_by(997) {
            assert_eq!(map.get(&i.to_be_bytes()), Some(i));
        }
        let analysis = map.analyze();
        assert!(analysis.containers >= 1);
        assert!(
            analysis.delta_encoded_nodes > 0,
            "sequential keys must delta-encode"
        );
        assert_eq!(map.len(), 50_000);
    }

    #[test]
    fn analysis_counts_are_consistent() {
        let mut map = HyperionMap::new();
        for i in 0..2000u64 {
            map.put(format!("prefix-{:08}", i).as_bytes(), i);
        }
        let a = map.analyze();
        assert_eq!(a.values, 2000);
        assert!(a.t_nodes > 0 && a.s_nodes > 0);
        assert!(a.container_used_bytes <= a.container_capacity_bytes);
    }
}

//! The single-pass read engine.
//!
//! Every point lookup ([`HyperionMap::get`], [`HyperionMap::contains_key`])
//! and every batched lookup ([`HyperionMap::get_many`], and through it
//! [`crate::HyperionDb::multi_get`]) goes through this module.  It mirrors
//! the shape of the write engine in [`crate::write`]: one descent per key
//! group, container scans seeded by the acceleration structures and *resumed*
//! across consecutive sorted keys.
//!
//! # The point-get fast path
//!
//! A point lookup costs, per container: one container-jump-table probe, a
//! T-record walk, an S-record walk, and a child hop.  The fast path strips
//! all of it to the bone:
//!
//! * **No allocation.**  The key transform uses [`TransformedKey`]
//!   (borrowed bytes, or an inline stack buffer under key pre-processing)
//!   instead of an owned `Vec` per lookup.
//! * **No recursion.**  Embedded containers narrow the `[start, end)` window
//!   of the *same* byte stream, so the descent is a loop, not a call chain.
//! * **One-pass CJT probe.**  [`crate::scan::cjt_seed`] stops at the first
//!   entry past the target instead of reading every slot of every group
//!   (live entries are ascending; cleared slots are zero).
//! * **Scanner-dispatched finds.**  Every record search goes through
//!   [`ContainerScanner`] ([`crate::scan_kernel`]): laned containers are
//!   searched data-parallel over their contiguous key bytes, everything
//!   else runs the scalar loops, which delta-decode only the key byte per
//!   record and parse the full record header exactly once — at the match.
//!
//! # The resume protocol (shared with `write`)
//!
//! [`HyperionMap::get_many`] sorts its probes in transformed key space and
//! then descends exactly like [`HyperionMap::put_many`]: the T-level loop
//! ([`ContainerScanner::find_t_from`]) continues from the *previous* probe's
//! position carrying its delta-decoding predecessor, the S-level loop
//! ([`ContainerScanner::find_s_from`]) resumes the same way, and probes
//! sharing a 2-byte prefix descend into their child exactly once.  The resume is *adaptive*: the jump-table probes only
//! accept seeds past the current position, so a sparse batch jumps between
//! probes like a point get while a dense batch walks each record at most
//! once.  Misses simply leave their `None` in place and hand the scan
//! position to the next probe.
//!
//! Pointer hops are not taken inline: each level's descents are gathered
//! into a frontier and processed in windows of `DESCENT_WINDOW` descents, each
//! window touching all its target containers (the cache misses overlap in
//! the memory subsystem) before running the dependent record walks.  A
//! point get serialises one miss per level; a batch pays a whole window's
//! misses concurrently.
//!
//! `DbScan` chunk refills and the `Range`/`Prefix` iterators share the seek
//! side of this protocol through [`crate::Cursor::seek`]/`seek_exclusive`
//! (CJT-seeded T-walks, jump-table seeded S-walks on the seek path, and an
//! exclusive-bound resume that replaced the skip-equal re-yield filter).

use crate::container::{ContainerHandle, ContainerRef};
use crate::keys::TransformedKey;
use crate::node::{parse_pc_node, NodeType, SNode, TNode, VALUE_SIZE};
use crate::scan_kernel::{ContainerScanner, Resume};
use crate::trie::HyperionMap;
use hyperion_mem::HyperionPointer;

/// A deferred pointer descent of the batched read: the probes
/// `order[lo..hi]` continue below container pointer `hp` at key depth
/// `depth`.
struct Descent {
    hp: HyperionPointer,
    depth: usize,
    lo: usize,
    hi: usize,
}

/// Shared immutable context of one `get_many` batch.
struct BatchCtx<'a> {
    /// Probe indices sorted by transformed key.
    order: &'a [u32],
    /// Transformed probe keys, indexed by original position.
    probes: &'a [&'a [u8]],
}

/// Descents per prefetch window: each window's containers are touched
/// (memory-level parallel) before the dependent record walks run, without
/// prefetching so far ahead that the lines age out of L1/L2 again.
const DESCENT_WINDOW: usize = 64;

/// The first eight key bytes as a big-endian integer (zero-padded), so that
/// `u64` order equals memcmp order on the prefix.
#[inline]
fn prefix8(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// Hints the CPU to pull the first two cache lines of a container into
/// cache.  Advisory only; a no-op target never affects correctness.
#[inline(always)]
fn prefetch(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr as *const i8, _MM_HINT_T0);
        // Prefetch is a hint: touching past a small container is harmless
        // (`wrapping_add` keeps the address computation defined).
        _mm_prefetch(ptr.wrapping_add(64) as *const i8, _MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        // `PRFM PLDL1KEEP` is the AArch64 analogue of `_mm_prefetch(T0)`:
        // load prefetch into L1 with temporal reuse.  There is no stable
        // aarch64 prefetch intrinsic, so the instruction is emitted directly;
        // like its x86 counterpart it never faults on bad addresses.
        std::arch::asm!(
            "prfm pldl1keep, [{line0}]",
            "prfm pldl1keep, [{line1}]",
            line0 = in(reg) ptr,
            line1 = in(reg) ptr.wrapping_add(64),
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = ptr;
}

impl HyperionMap {
    /// The point-lookup fast path over a transformed, non-empty key.
    ///
    /// With `read_value` unset the lookup answers presence only: it stops at
    /// the record match and returns a dummy `Some(0)` without touching the
    /// value word (the [`HyperionMap::contains_key`] path).
    pub(crate) fn lookup_transformed(&self, key: &[u8], read_value: bool) -> Option<u64> {
        debug_assert!(!key.is_empty());
        let mm = self.memory_manager();
        // Consult the hashed shortcut first: a hit jumps straight to the
        // deepest cached container on the key's path, skipping the upper
        // levels of the descent (one dependent cache miss each).
        let (mut hp, mut rest): (_, &[u8]) = match self.shortcut.probe(key) {
            Some((d, cached)) => (cached, &key[d..]),
            None => (self.root_pointer()?, key),
        };
        'containers: loop {
            let (slot, ptr, capacity) = mm
                .resolve_for_read(hp, rest[0])
                .expect("chained pointer without valid slot");
            let handle = match slot {
                Some(index) => ContainerHandle::ChainSlot { head: hp, index },
                None => ContainerHandle::Standalone(hp),
            };
            let c = ContainerRef::from_parts(handle, ptr, capacity);
            let mut scanner = ContainerScanner::new(&c);
            let mut start = c.stream_start();
            let mut end = c.stream_end();
            let mut top = true;
            // Embedded containers narrow the window on the same byte stream:
            // the descent is iterative, not recursive.
            loop {
                let t = scanner.find_t(start, end, rest[0], top)?;
                if rest.len() == 1 {
                    return match t.node_type {
                        NodeType::LeafWithValue if read_value => {
                            Some(c.read_u64(t.value_offset.expect("leaf value offset")))
                        }
                        NodeType::LeafWithValue => Some(0),
                        _ => None,
                    };
                }
                let s = scanner.find_s(&t, end, rest[1])?;
                if rest.len() == 2 {
                    return match s.node_type {
                        NodeType::LeafWithValue if read_value => {
                            Some(c.read_u64(s.value_offset.expect("leaf value offset")))
                        }
                        NodeType::LeafWithValue => Some(0),
                        _ => None,
                    };
                }
                match s.child {
                    crate::node::ChildKind::None => return None,
                    crate::node::ChildKind::Pointer => {
                        hp = c.read_hp(s.child_offset.expect("pointer child offset"));
                        rest = &rest[2..];
                        // Completed hop: remember it so the next point get
                        // for this prefix skips everything above.
                        self.shortcut.publish(&key[..key.len() - rest.len()], hp);
                        continue 'containers;
                    }
                    crate::node::ChildKind::Embedded => {
                        let child_off = s.child_offset.expect("embedded child offset");
                        let size = c.bytes()[child_off] as usize;
                        start = child_off + 1;
                        end = child_off + size;
                        rest = &rest[2..];
                        top = false;
                    }
                    crate::node::ChildKind::PathCompressed => {
                        let child_off = s.child_offset.expect("pc child offset");
                        let bytes = c.bytes();
                        let header = bytes[child_off];
                        if header & 0x80 == 0 {
                            return None;
                        }
                        let total = (header & 0x7f) as usize;
                        let suffix = &bytes[child_off + 1 + VALUE_SIZE..child_off + total];
                        if suffix != &rest[2..] {
                            return None;
                        }
                        return Some(if read_value {
                            c.read_u64(child_off + 1)
                        } else {
                            0
                        });
                    }
                }
            }
        }
    }

    /// Looks up many keys in one locality-aware pass.  `results[i]`
    /// corresponds to `keys[i]`; duplicate keys, missing keys and the empty
    /// key are all fine.
    ///
    /// Probes are sorted in transformed key space and applied through the
    /// resume protocol shared with [`HyperionMap::put_many`] (see the
    /// [module documentation](self)): one descent per shared prefix, one
    /// container-record walk per batch per container instead of one per key.
    pub fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<u64>> {
        let mut results = vec![None; keys.len()];
        if keys.is_empty() {
            return results;
        }
        let preprocess = self.config().key_preprocessing;
        let transformed: Vec<TransformedKey> = keys
            .iter()
            .map(|k| TransformedKey::new(k, preprocess))
            .collect();
        let probes: Vec<&[u8]> = transformed.iter().map(|t| t.as_slice()).collect();
        // Sort probes in transformed key space.  Comparing boxed key slices
        // through two indirections per comparison dominated large batches;
        // tagging each probe with its first eight bytes (big-endian, so
        // integer order equals memcmp order) turns almost the whole sort
        // into branch-free u64 comparisons — only runs that tie on the full
        // eight-byte prefix fall back to slice comparison.
        let mut tagged: Vec<(u64, u32)> = probes
            .iter()
            .enumerate()
            .map(|(i, p)| (prefix8(p), i as u32))
            .collect();
        tagged.sort_unstable();
        let mut i = 0usize;
        while i < tagged.len() {
            let mut j = i + 1;
            while j < tagged.len() && tagged[j].0 == tagged[i].0 {
                j += 1;
            }
            if j - i > 1 {
                tagged[i..j].sort_by(|&(_, a), &(_, b)| probes[a as usize].cmp(probes[b as usize]));
            }
            i = j;
        }
        let order: Vec<u32> = tagged.into_iter().map(|(_, i)| i).collect();
        // Empty keys sort first and live out-of-line.
        let mut first = 0;
        while first < order.len() && probes[order[first] as usize].is_empty() {
            results[order[first] as usize] = self.empty_key_value();
            first += 1;
        }
        if let Some(root) = self.root_pointer() {
            let ctx = BatchCtx {
                order: &order,
                probes: &probes,
            };
            // Level-by-level descent: each level's pointer hops are gathered
            // into a frontier and processed in windows — every window first
            // touches all its containers (the loads overlap in the memory
            // subsystem), then runs the dependent record walks.  A point
            // get serialises one cache miss per level; the batch pays the
            // same misses for a whole window concurrently.
            // Seed the initial frontier from the shortcut: each sorted run
            // of probes whose cached prefix matches starts its descent at
            // the deep container instead of the root.  Runs without a cache
            // hit coalesce into root descents exactly as before.
            let mut frontier: Vec<Descent> = Vec::new();
            let mut lo = first;
            while lo < order.len() {
                let k = probes[order[lo] as usize];
                if let Some((d, hp)) = self.shortcut.probe(k) {
                    let mut hi = lo + 1;
                    while hi < order.len() {
                        let k2 = probes[order[hi] as usize];
                        if k2.len() > d && k2[..d] == k[..d] {
                            hi += 1;
                        } else {
                            break;
                        }
                    }
                    frontier.push(Descent {
                        hp,
                        depth: d,
                        lo,
                        hi,
                    });
                    lo = hi;
                } else {
                    // Skip to the end of this two-byte prefix run — every
                    // key in it would probe the same table slots — and fold
                    // adjacent missing runs into one root descent.
                    let mut hi = lo + 1;
                    if k.len() >= 2 {
                        while hi < order.len() {
                            let k2 = probes[order[hi] as usize];
                            if k2.len() >= 2 && k2[..2] == k[..2] {
                                hi += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    match frontier.last_mut() {
                        Some(run) if run.depth == 0 && run.hi == lo => run.hi = hi,
                        _ => frontier.push(Descent {
                            hp: root,
                            depth: 0,
                            lo,
                            hi,
                        }),
                    }
                    lo = hi;
                }
            }
            let mut next: Vec<Descent> = Vec::new();
            let mm = self.memory_manager();
            while !frontier.is_empty() {
                for window in frontier.chunks(DESCENT_WINDOW) {
                    if window.len() > 1 {
                        for d in window {
                            let hint = probes[order[d.lo] as usize][d.depth];
                            if let Some((_, ptr, _)) = mm.resolve_for_read(d.hp, hint) {
                                prefetch(ptr);
                            }
                        }
                    }
                    for d in window {
                        self.read_pointer(d, &ctx, &mut results, &mut next);
                    }
                }
                frontier.clear();
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        results
    }

    /// Resolves the container(s) behind one [`Descent`] and dispatches its
    /// sorted probe range to them.  Chained extended bins route whole runs
    /// per slot with one valid-slot lookup and a binary search, like the
    /// write engine.
    fn read_pointer(
        &self,
        d: &Descent,
        ctx: &BatchCtx,
        results: &mut [Option<u64>],
        next: &mut Vec<Descent>,
    ) {
        let mm = self.memory_manager();
        let (depth, mut lo, hi) = (d.depth, d.lo, d.hi);
        while lo < hi {
            let hint = ctx.probes[ctx.order[lo] as usize][depth];
            // One allocation-free metadata pass resolves the container (and,
            // for chained heads, the slot owning `hint`); the run boundary
            // comes from the next valid slot above it.
            let (slot, ptr, capacity) = mm
                .resolve_for_read(d.hp, hint)
                .expect("chained pointer without valid slot");
            let (handle, cut) = match slot {
                Some(index) => {
                    let hint_block = (hint >> 5) as usize;
                    let cut = match mm.chained_next_valid_slot(d.hp, hint_block) {
                        Some(next_slot) => {
                            let boundary = (next_slot * 32) as u8;
                            lo + ctx.order[lo..hi]
                                .partition_point(|&i| ctx.probes[i as usize][depth] < boundary)
                        }
                        None => hi,
                    };
                    (ContainerHandle::ChainSlot { head: d.hp, index }, cut)
                }
                None => (ContainerHandle::Standalone(d.hp), hi),
            };
            let c = ContainerRef::from_parts(handle, ptr, capacity);
            self.read_region(
                &c,
                c.stream_start(),
                c.stream_end(),
                true,
                depth,
                lo,
                cut,
                ctx,
                results,
                next,
            );
            lo = cut;
        }
    }

    /// The T-level resume loop: walks one region's T records once, handing
    /// each group of probes sharing `key[depth]` to its T record.  Misses
    /// leave their results `None` and donate their scan position to the next
    /// probe.
    #[allow(clippy::too_many_arguments)]
    fn read_region(
        &self,
        c: &ContainerRef,
        start: usize,
        end: usize,
        top: bool,
        depth: usize,
        lo: usize,
        hi: usize,
        ctx: &BatchCtx,
        results: &mut [Option<u64>],
        next: &mut Vec<Descent>,
    ) {
        let mut scanner = ContainerScanner::new(c);
        let mut state = Resume {
            pos: start,
            prev: None,
        };
        let mut i = lo;
        while i < hi {
            let target = ctx.probes[ctx.order[i] as usize][depth];
            let mut j = i + 1;
            while j < hi && ctx.probes[ctx.order[j] as usize][depth] == target {
                j += 1;
            }
            if let Some(t) = scanner.find_t_from(&mut state, end, target, top) {
                self.read_t_group(c, &mut scanner, &t, end, depth, i, j, ctx, results, next);
            }
            i = j;
        }
    }

    /// Applies a group of probes sharing `key[depth]` below the T record `t`:
    /// probes terminating here read the T value, the rest resume-scan the S
    /// children.
    #[allow(clippy::too_many_arguments)]
    fn read_t_group(
        &self,
        c: &ContainerRef,
        scanner: &mut ContainerScanner,
        t: &TNode,
        end: usize,
        depth: usize,
        lo: usize,
        hi: usize,
        ctx: &BatchCtx,
        results: &mut [Option<u64>],
        next: &mut Vec<Descent>,
    ) {
        let mut i = lo;
        // Sorted probes put the (possibly duplicated) exact-prefix key first.
        while i < hi && ctx.probes[ctx.order[i] as usize].len() == depth + 1 {
            if t.node_type == NodeType::LeafWithValue {
                results[ctx.order[i] as usize] =
                    Some(c.read_u64(t.value_offset.expect("leaf value")));
            }
            i += 1;
        }
        let jt = (t.offset, t.jt_offset);
        let mut state = Resume {
            pos: t.header_end,
            prev: None,
        };
        while i < hi {
            let target = ctx.probes[ctx.order[i] as usize][depth + 1];
            let mut j = i + 1;
            while j < hi && ctx.probes[ctx.order[j] as usize][depth + 1] == target {
                j += 1;
            }
            if let Some(s) = scanner.find_s_from(&mut state, end, target, jt) {
                self.read_s_group(c, &s, depth, i, j, ctx, results, next);
            }
            i = j;
        }
    }

    /// Applies a group of probes sharing `key[..depth + 2]` below the S
    /// record `s`: value reads here, then one deferred descent (or inline
    /// embedded/path-compressed handling) for the whole rest of the group.
    #[allow(clippy::too_many_arguments)]
    fn read_s_group(
        &self,
        c: &ContainerRef,
        s: &SNode,
        depth: usize,
        lo: usize,
        hi: usize,
        ctx: &BatchCtx,
        results: &mut [Option<u64>],
        next: &mut Vec<Descent>,
    ) {
        let mut i = lo;
        while i < hi && ctx.probes[ctx.order[i] as usize].len() == depth + 2 {
            if s.node_type == NodeType::LeafWithValue {
                results[ctx.order[i] as usize] =
                    Some(c.read_u64(s.value_offset.expect("leaf value")));
            }
            i += 1;
        }
        if i == hi {
            return;
        }
        match s.child {
            crate::node::ChildKind::None => {}
            crate::node::ChildKind::PathCompressed => {
                let child_off = s.child_offset.expect("pc child offset");
                let (has_value, value, range) = parse_pc_node(c.bytes(), child_off);
                if has_value {
                    let suffix = &c.bytes()[range];
                    for &idx in &ctx.order[i..hi] {
                        if &ctx.probes[idx as usize][depth + 2..] == suffix {
                            results[idx as usize] = Some(value);
                        }
                    }
                }
            }
            crate::node::ChildKind::Embedded => {
                let child_off = s.child_offset.expect("embedded child offset");
                let size = c.bytes()[child_off] as usize;
                self.read_region(
                    c,
                    child_off + 1,
                    child_off + size,
                    false,
                    depth + 2,
                    i,
                    hi,
                    ctx,
                    results,
                    next,
                );
            }
            crate::node::ChildKind::Pointer => {
                let hp = c.read_hp(s.child_offset.expect("pointer child offset"));
                // Batched reads warm the shortcut for later point gets.
                self.shortcut
                    .publish(&ctx.probes[ctx.order[i] as usize][..depth + 2], hp);
                next.push(Descent {
                    hp,
                    depth: depth + 2,
                    lo: i,
                    hi,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyperionConfig;
    use crate::container::{CJT_ENTRY_SIZE, HEADER_SIZE};
    use crate::node::parse_t_node;
    use crate::scan::cjt_seed;
    use std::collections::BTreeMap;

    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn sample(config: HyperionConfig, n: u64, seed: u64) -> (HyperionMap, BTreeMap<Vec<u8>, u64>) {
        let mut map = HyperionMap::with_config(config);
        let mut reference = BTreeMap::new();
        let mut x = seed;
        for i in 0..n {
            let key = if i % 2 == 0 {
                xorshift(&mut x).to_be_bytes().to_vec()
            } else {
                format!("k{:06}", xorshift(&mut x) % 200_000).into_bytes()
            };
            map.put(&key, i);
            reference.insert(key, i);
        }
        (map, reference)
    }

    #[test]
    fn fast_path_agrees_with_oracle_on_hits_and_misses() {
        let (map, reference) = sample(HyperionConfig::default(), 30_000, 0x9e3779b9);
        let mut x = 0xdecafu64;
        for (k, v) in reference.iter().step_by(7) {
            assert_eq!(map.get(k), Some(*v));
            assert!(map.contains_key(k));
            // Perturbed keys: misses through every exit of the fast path.
            let mut longer = k.clone();
            longer.push((xorshift(&mut x) & 0xff) as u8);
            assert_eq!(map.get(&longer), reference.get(&longer).copied());
            let shorter = &k[..k.len() - 1];
            assert_eq!(map.get(shorter), reference.get(shorter).copied());
        }
    }

    #[test]
    fn get_many_is_order_faithful_with_duplicates_and_misses() {
        let (map, reference) = sample(HyperionConfig::default(), 20_000, 0xfeed);
        let mut x = 0xabcdu64;
        let mut probes: Vec<Vec<u8>> = Vec::new();
        for (k, _) in reference.iter().step_by(13) {
            probes.push(k.clone());
            probes.push(k.clone()); // duplicate probe
            let mut miss = k.clone();
            miss.push(0xff);
            probes.push(miss);
        }
        probes.push(Vec::new()); // empty key (absent)
                                 // Shuffle so the engine has to restore input order itself.
        for i in (1..probes.len()).rev() {
            let j = (xorshift(&mut x) as usize) % (i + 1);
            probes.swap(i, j);
        }
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let got = map.get_many(&refs);
        assert_eq!(got.len(), probes.len());
        for (probe, result) in probes.iter().zip(&got) {
            assert_eq!(*result, reference.get(probe).copied(), "probe {probe:x?}");
        }
    }

    #[test]
    fn get_many_under_preprocessing() {
        let mut map = HyperionMap::with_config(HyperionConfig::with_preprocessing());
        let mut reference = BTreeMap::new();
        let mut x = 0x1234_5678u64;
        for i in 0..10_000u64 {
            let key = xorshift(&mut x).to_be_bytes();
            map.put(&key, i);
            reference.insert(key.to_vec(), i);
        }
        let probes: Vec<Vec<u8>> = reference
            .keys()
            .step_by(3)
            .cloned()
            .chain((0..64u64).map(|i| i.to_be_bytes().to_vec()))
            .collect();
        let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
        let got = map.get_many(&refs);
        for (probe, result) in probes.iter().zip(&got) {
            assert_eq!(*result, reference.get(probe).copied());
        }
    }

    /// Reference implementation of the old exhaustive CJT probe, for
    /// differential testing of the early-exit rewrite.
    fn cjt_seed_exhaustive(
        c: &ContainerRef,
        target: u8,
        after: usize,
        end: usize,
    ) -> Option<usize> {
        if c.jt_groups() == 0 {
            return None;
        }
        let bytes = c.bytes();
        let mut best: Option<(u8, u32)> = None;
        for i in 0..c.jt_groups() * crate::container::CJT_GROUP {
            let off = HEADER_SIZE + i * CJT_ENTRY_SIZE;
            let raw = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if raw == 0 {
                continue;
            }
            let key = (raw & 0xff) as u8;
            if key <= target && best.map(|(k, _)| key >= k).unwrap_or(true) {
                best = Some((key, raw >> 8));
            }
        }
        let (_, offset) = best?;
        let candidate = c.stream_start() + offset as usize;
        (candidate > after && candidate < end).then_some(candidate)
    }

    /// Regression: after container-jump-table rebuilds (and the offset
    /// fix-ups that deletes apply to surviving entries), the one-pass
    /// `cjt_seed` must return exactly what the exhaustive probe returns for
    /// every possible target byte, and every entry must still reference an
    /// explicit T record with its own key.
    #[test]
    fn cjt_seed_is_exact_after_rebuilds() {
        let mut map = HyperionMap::with_config(HyperionConfig::for_integers());
        let mut x = 0xc1a0u64;
        // Enough keys to force CJT rebuilds in the root-level containers,
        // with interleaved deletes so cleared/fixed-up entries appear too.
        for i in 0..60_000u64 {
            let key = xorshift(&mut x).to_be_bytes();
            map.put(&key, i);
            if i % 5 == 0 {
                map.delete(&xorshift(&mut x).to_be_bytes());
            }
        }
        assert!(
            map.counters().cjt_rebuilds > 0,
            "workload must trigger jump-table rebuilds"
        );
        let mm = map.memory_manager();
        let root = map.root_pointer().expect("non-empty trie");
        let handles: Vec<ContainerHandle> = if root.superbin() == 0 && mm.is_chained(root) {
            mm.chained_valid_slots(root)
                .into_iter()
                .map(|index| ContainerHandle::ChainSlot { head: root, index })
                .collect()
        } else {
            vec![ContainerHandle::Standalone(root)]
        };
        let mut seen_entries = 0usize;
        for handle in handles {
            let c = ContainerRef::open(mm, handle);
            let (start, end) = (c.stream_start(), c.stream_end());
            for target in 0..=255u8 {
                assert_eq!(
                    cjt_seed(&c, target, start, end),
                    cjt_seed_exhaustive(&c, target, start, end),
                    "{handle:?}: target {target}"
                );
            }
            for (key, off) in c.cjt_entries() {
                seen_entries += 1;
                // `after` one below the stream start so the first entry (at
                // relative offset 0) is not suppressed by the bound check.
                let seeded = cjt_seed(&c, key, start - 1, end);
                assert_eq!(
                    seeded,
                    Some(start + off as usize),
                    "{handle:?}: entry {key} must seed its own exact offset"
                );
                let t =
                    parse_t_node(c.bytes(), start + off as usize, None).expect("CJT target parses");
                assert!(t.explicit_key, "{handle:?}: CJT target must be explicit");
                assert_eq!(t.key, key, "{handle:?}: CJT target key");
            }
        }
        assert!(seen_entries > 0, "root containers must carry CJT entries");
    }
}

//! Construction of fresh node streams.
//!
//! When a put operation has to materialise a brand-new subtree (first key of a
//! container, conversion of a path-compressed node that gained a sibling,
//! attachment of a child below an existing S-node), the bytes for that subtree
//! are built here and then spliced into the container in one go.
//!
//! The builder consumes two key bytes per level (T key + S key), stores values
//! inline, encodes unique suffixes as path-compressed nodes, nests small
//! subtrees as embedded containers and falls back to allocating real child
//! containers (referenced by Hyperion Pointers) when a subtree outgrows the
//! one-byte embedded size field.

use crate::config::HyperionConfig;
use crate::container::ContainerRef;
use crate::node::{
    delta_for, encode_pc_node, make_s_flag, make_t_flag, pc_fits, ChildKind, NodeType,
    TNODE_JT_ENTRIES, TNODE_JT_SIZE, TNODE_JT_STRIDE,
};
use crate::scan_kernel::ScanBackend;
use crate::shortcut::Shortcut;
use hyperion_mem::MemoryManager;

/// One entry to encode: the remaining key suffix and its value.
pub type Entry = (Vec<u8>, u64);

/// Parent size beyond which even single-suffix children are spilled into
/// real containers instead of path-compressed nodes (see
/// [`StreamBuilder::with_parent_size`]).  A PC node costs up to 127 bytes of
/// parent; a Hyperion Pointer costs 5, so spilling *shrinks* the parent.
const PC_SPILL_SIZE: usize = 128 * 1024;

/// Builds node streams, allocating real child containers when necessary.
pub struct StreamBuilder<'a> {
    mm: &'a mut MemoryManager,
    config: &'a HyperionConfig,
    /// Size of the container the stream will be spliced into; 0 when unknown
    /// (fresh containers).  See [`StreamBuilder::with_parent_size`].
    parent_size: usize,
    /// When set, every real child container allocated by [`encode_child`](
    /// StreamBuilder::encode_child) is published to the hashed shortcut
    /// layer under its absolute transformed-key prefix, so bulk loads warm
    /// the cache as they build.  See [`StreamBuilder::with_shortcut`].
    shortcut: Option<&'a Shortcut>,
    /// Absolute transformed-key bytes consumed above the stream being built;
    /// grows by one byte per T/S level descended.
    prefix: Vec<u8>,
    /// Whether T records emitted at the current level may carry jump
    /// successors / jump tables.  Only top-level T records of *real*
    /// containers may: the write engine's offset fix-up after byte-shifting
    /// edits ([`crate::write`]'s `collect_fixes`) walks top-level records
    /// exclusively, so jumps inside embedded bodies would go stale on the
    /// first edit.  Defaults to off; [`StreamBuilder::with_jumps`] enables it
    /// for top-level splices, and [`StreamBuilder::encode_child`] re-derives
    /// it per child body.
    emit_jumps: bool,
    /// Whether any T record of the stream currently being built carries a
    /// jump.  [`StreamBuilder::encode_child`] scopes this per body: a body
    /// that received jumps must not be embedded even when it fits, because
    /// nested subtrees collapsing into 5-byte pointers can shrink a
    /// predicted-standalone body back under the embed limit.
    jumps_emitted: bool,
}

impl<'a> StreamBuilder<'a> {
    /// Creates a builder borrowing the trie's memory manager and configuration.
    pub fn new(mm: &'a mut MemoryManager, config: &'a HyperionConfig) -> Self {
        StreamBuilder {
            mm,
            config,
            parent_size: 0,
            shortcut: None,
            prefix: Vec::new(),
            emit_jumps: false,
            jumps_emitted: false,
        }
    }

    /// Allows jump successors / jump tables on the T records of the stream
    /// built by [`StreamBuilder::build_stream`].  Pass `true` only when the
    /// stream is spliced at the top level of a real container (see the field
    /// note on `emit_jumps`).
    pub fn with_jumps(mut self, on: bool) -> Self {
        self.emit_jumps = on;
        self
    }

    /// Publishes allocated child containers to `shortcut`.  `prefix` is the
    /// absolute transformed-key prefix the entries handed to
    /// [`StreamBuilder::build_stream`] (or the S-record/child entry points)
    /// were stripped of.
    pub fn with_shortcut(mut self, shortcut: &'a Shortcut, prefix: &[u8]) -> Self {
        if shortcut.is_enabled() {
            self.shortcut = Some(shortcut);
            self.prefix = prefix.to_vec();
        }
        self
    }

    /// Declares the current size of the destination container so child
    /// encoding can respond to eject pressure.
    ///
    /// Embedded containers are only ever *ejected* when a write descends
    /// through them ([`crate::write`]'s `make_room`), so a container that
    /// keeps receiving brand-new subtrees — and cannot split, like a chain
    /// slot already covering a single 32-key block — would grow embeds
    /// without bound and overflow the 19-bit container size field.  Past the
    /// eject threshold the builder therefore stops nesting: multi-key
    /// children go straight into real child containers (5-byte pointers in
    /// the parent), and past `PC_SPILL_SIZE` (128 KiB) even unique suffixes
    /// do.
    pub fn with_parent_size(mut self, size: usize) -> Self {
        self.parent_size = size;
        self
    }

    /// Builds a node stream (starting at the T level) for the given sorted,
    /// de-duplicated entries.  `prev_t_key` is the key of the T sibling that
    /// will precede the stream at its destination (for delta encoding).
    ///
    /// Entry suffixes must be non-empty and strictly ascending.
    pub fn build_stream(&mut self, prev_t_key: Option<u8>, entries: &[Entry]) -> Vec<u8> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|(k, _)| !k.is_empty()));
        let mut out = Vec::new();
        let mut prev_t = prev_t_key;
        let mut i = 0;
        while i < entries.len() {
            let t_key = entries[i].0[0];
            let mut j = i;
            while j < entries.len() && entries[j].0[0] == t_key {
                j += 1;
            }
            let group = &entries[i..j];
            self.emit_t_group(&mut out, prev_t, t_key, group);
            prev_t = Some(t_key);
            i = j;
        }
        out
    }

    /// Builds one or more S-node records for entries that all live below an
    /// existing T-node.  Entry suffixes start with the S key byte.
    /// `prev_s_key` is the key of the S sibling preceding the insertion point.
    pub fn build_s_records(&mut self, prev_s_key: Option<u8>, entries: &[Entry]) -> Vec<u8> {
        self.build_s_records_inner(prev_s_key, entries, false).0
    }

    /// Shared S-record emission.  With `seed_explicit` set, the last record
    /// at or below each jump-table slot bound (a seed target) is emitted with
    /// an explicit key byte — jump-table entries may only reference
    /// explicit-key records, because a seeded scan has no predecessor
    /// context — and reported back as `(key, start offset)`.
    fn build_s_records_inner(
        &mut self,
        prev_s_key: Option<u8>,
        entries: &[Entry],
        seed_explicit: bool,
    ) -> (Vec<u8>, Vec<(u8, usize)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|(k, _)| !k.is_empty()));
        let mut out = Vec::new();
        let mut seeds = Vec::new();
        let mut prev_s = prev_s_key;
        let mut i = 0;
        while i < entries.len() {
            let s_key = entries[i].0[0];
            let mut j = i;
            while j < entries.len() && entries[j].0[0] == s_key {
                j += 1;
            }
            let group = &entries[i..j];
            // A record is a seed target when some slot bound (a multiple of
            // the stride) separates it from its successor: it is then the
            // greatest record at or below that bound.
            let is_seed = seed_explicit && {
                let bound = ((s_key as usize).div_ceil(TNODE_JT_STRIDE) * TNODE_JT_STRIDE)
                    .max(TNODE_JT_STRIDE);
                bound <= TNODE_JT_STRIDE * TNODE_JT_ENTRIES
                    && entries.get(j).map_or(true, |e| (e.0[0] as usize) > bound)
            };
            if is_seed {
                seeds.push((s_key, out.len()));
            }
            self.emit_s_record(&mut out, if is_seed { None } else { prev_s }, s_key, group);
            prev_s = Some(s_key);
            i = j;
        }
        (out, seeds)
    }

    fn emit_t_group(&mut self, out: &mut Vec<u8>, prev_t: Option<u8>, t_key: u8, group: &[Entry]) {
        // A suffix of length 1 terminates at the T-node itself.
        let t_value = group.iter().find(|(k, _)| k.len() == 1).map(|(_, v)| *v);
        let s_entries: Vec<Entry> = group
            .iter()
            .filter(|(k, _)| k.len() >= 2)
            .map(|(k, v)| (k[1..].to_vec(), *v))
            .collect();
        let node_type = if t_value.is_some() {
            NodeType::LeafWithValue
        } else if s_entries.is_empty() {
            NodeType::LeafNoValue
        } else {
            NodeType::Inner
        };
        // Emit the jump structures straight from the builder when the child
        // count warrants them: retrofitting them through the write engine's
        // lazy maintenance only happens on later write descents, so purely
        // bulk-loaded containers would serve every read with a linear
        // S-record walk until then.
        let s_child_count = {
            let mut count = 0usize;
            let mut last: Option<u8> = None;
            for (k, _) in &s_entries {
                if last != Some(k[0]) {
                    count += 1;
                    last = Some(k[0]);
                }
            }
            count
        };
        let has_js = self.emit_jumps
            && self.config.jump_successor
            && s_child_count >= self.config.jump_successor_threshold;
        let has_jt = self.emit_jumps
            && self.config.tnode_jump_table
            && s_child_count >= self.config.tnode_jump_table_threshold;
        if has_js || has_jt {
            self.jumps_emitted = true;
        }
        let t_start = out.len();
        let delta = delta_for(prev_t, t_key, self.config.delta_encoding);
        out.push(make_t_flag(node_type, delta.unwrap_or(0), has_js, has_jt));
        if delta.is_none() {
            out.push(t_key);
        }
        if let Some(v) = t_value {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let js_pos = out.len();
        if has_js {
            out.extend_from_slice(&[0; 2]);
        }
        let jt_pos = out.len();
        if has_jt {
            out.resize(out.len() + TNODE_JT_SIZE, 0);
        }
        let header_len = out.len() - t_start;
        // S children in order.
        self.prefix.push(t_key);
        let (s_stream, seeds) = self.build_s_records_inner(None, &s_entries, has_jt);
        self.prefix.pop();
        out.extend_from_slice(&s_stream);
        if has_js {
            // The jump successor points from the T record past its whole
            // subtree; 0 stays if the span exceeds 16 bits ("walk instead").
            let js_value = out.len() - t_start;
            if js_value <= u16::MAX as usize {
                out[js_pos..js_pos + 2].copy_from_slice(&(js_value as u16).to_le_bytes());
            }
        }
        if has_jt {
            // Slot i references the greatest explicit-key child with key
            // <= stride * (i + 1); ascending overwrite mirrors the write
            // engine's fill.
            let mut slots = [0u16; TNODE_JT_ENTRIES];
            for (key, off) in &seeds {
                let rel = header_len + off;
                if rel > u16::MAX as usize {
                    break;
                }
                let first_slot = (*key as usize).div_ceil(TNODE_JT_STRIDE).saturating_sub(1);
                for slot in slots.iter_mut().skip(first_slot) {
                    *slot = rel as u16;
                }
            }
            for (i, v) in slots.iter().enumerate() {
                out[jt_pos + i * 2..jt_pos + i * 2 + 2].copy_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn emit_s_record(&mut self, out: &mut Vec<u8>, prev_s: Option<u8>, s_key: u8, group: &[Entry]) {
        let s_value = group.iter().find(|(k, _)| k.len() == 1).map(|(_, v)| *v);
        let children: Vec<Entry> = group
            .iter()
            .filter(|(k, _)| k.len() >= 2)
            .map(|(k, v)| (k[1..].to_vec(), *v))
            .collect();
        let node_type = if s_value.is_some() {
            NodeType::LeafWithValue
        } else if children.is_empty() {
            NodeType::LeafNoValue
        } else {
            NodeType::Inner
        };
        self.prefix.push(s_key);
        let (child_kind, child_bytes) = self.encode_child(&children);
        self.prefix.pop();
        let delta = delta_for(prev_s, s_key, self.config.delta_encoding);
        out.push(make_s_flag(node_type, delta.unwrap_or(0), child_kind));
        if delta.is_none() {
            out.push(s_key);
        }
        if let Some(v) = s_value {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&child_bytes);
    }

    /// Encodes the child payload for the given child entries (suffixes below
    /// an S-node).  Chooses, in order of preference: no child, a
    /// path-compressed node, an embedded container, a real child container —
    /// degrading towards real containers when the destination is under eject
    /// pressure (see [`StreamBuilder::with_parent_size`]).
    pub fn encode_child(&mut self, children: &[Entry]) -> (ChildKind, Vec<u8>) {
        if children.is_empty() {
            return (ChildKind::None, Vec::new());
        }
        let pressure = self.parent_size >= self.config.eject_threshold;
        if children.len() == 1 && pc_fits(children[0].0.len()) && self.parent_size < PC_SPILL_SIZE {
            let (suffix, value) = &children[0];
            return (
                ChildKind::PathCompressed,
                encode_pc_node(suffix, Some(*value)),
            );
        }
        // Jumps are only legal in real containers; enable them for the child
        // body when it looks destined for the Pointer branch below (every
        // entry needs its 8-byte value plus at least one structure byte, so
        // `9 * len` lower-bounding past `embedded_max` usually settles it).
        // The prediction is not airtight — nested subtrees collapsing into
        // 5-byte pointers can shrink the body back under the embed limit —
        // so a body that actually received jumps is forced standalone.
        // Rebuilding it jump-free instead would re-run nested allocations,
        // leaking the first build's child containers and their shortcut
        // entries.
        let standalone = pressure || children.len() * 9 >= self.config.embedded_max;
        let saved_jumps = self.emit_jumps;
        let saved_emitted = self.jumps_emitted;
        self.emit_jumps = standalone;
        self.jumps_emitted = false;
        let body = self.build_stream(None, children);
        let body_has_jumps = self.jumps_emitted;
        self.emit_jumps = saved_jumps;
        self.jumps_emitted = saved_emitted;
        if !pressure && !body_has_jumps && body.len() < self.config.embedded_max {
            let mut bytes = Vec::with_capacity(body.len() + 1);
            bytes.push((body.len() + 1) as u8);
            bytes.extend_from_slice(&body);
            (ChildKind::Embedded, bytes)
        } else {
            let mut container = ContainerRef::create(self.mm, &body);
            if self.config.scan_backend == ScanBackend::Simd {
                // Lane the freshly built child before its pointer is read:
                // the insert may grow the allocation and move the HP.
                crate::scan_kernel::emit_key_lane(self.mm, &mut container);
            }
            let hp = container.handle().stored_pointer();
            if let Some(shortcut) = self.shortcut {
                // Fresh subtree at a cacheable depth: seed it so the keys
                // just bulk-loaded are warm before their first read.
                shortcut.publish(&self.prefix, hp);
            }
            (ChildKind::Pointer, hp.to_bytes().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{parse_s_node, parse_t_node};

    fn build(entries: &[(&[u8], u64)]) -> (Vec<u8>, MemoryManager) {
        let mut mm = MemoryManager::new();
        let config = HyperionConfig::default();
        let mut sorted: Vec<Entry> = entries.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        sorted.sort();
        let bytes = {
            let mut b = StreamBuilder::new(&mut mm, &config);
            b.build_stream(None, &sorted)
        };
        (bytes, mm)
    }

    #[test]
    fn single_short_key_becomes_t_leaf() {
        let (bytes, _mm) = build(&[(b"a", 7)]);
        let t = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t.key, b'a');
        assert_eq!(t.node_type, NodeType::LeafWithValue);
        assert_eq!(t.header_end, bytes.len());
    }

    #[test]
    fn two_byte_key_becomes_t_plus_s() {
        let (bytes, _mm) = build(&[(b"be", 9)]);
        let t = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t.key, b'b');
        assert_eq!(t.node_type, NodeType::Inner);
        let s = parse_s_node(&bytes, t.header_end, None).unwrap();
        assert_eq!(s.key, b'e');
        assert_eq!(s.node_type, NodeType::LeafWithValue);
        assert_eq!(s.child, ChildKind::None);
        assert_eq!(s.end, bytes.len());
    }

    #[test]
    fn long_key_uses_path_compression() {
        let (bytes, _mm) = build(&[(b"theorem", 1)]);
        let t = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t.key, b't');
        let s = parse_s_node(&bytes, t.header_end, None).unwrap();
        assert_eq!(s.key, b'h');
        assert_eq!(s.child, ChildKind::PathCompressed);
        let (has_value, value, range) = crate::node::parse_pc_node(&bytes, s.child_offset.unwrap());
        assert!(has_value);
        assert_eq!(value, 1);
        assert_eq!(&bytes[range], b"eorem");
    }

    #[test]
    fn sibling_keys_share_t_node_and_use_delta() {
        // Paper Figure 6: container C3 stores "at" and "e".
        let (bytes, _mm) = build(&[(b"at", 10), (b"e", 20)]);
        let t_a = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t_a.key, b'a');
        let s_t = parse_s_node(&bytes, t_a.header_end, None).unwrap();
        assert_eq!(s_t.key, b't');
        assert_eq!(s_t.node_type, NodeType::LeafWithValue);
        let t_e = parse_t_node(&bytes, s_t.end, Some(t_a.key)).unwrap();
        assert_eq!(t_e.key, b'e');
        assert!(!t_e.explicit_key, "delta 4 fits in three bits");
    }

    #[test]
    fn shared_prefix_groups_under_one_t_node() {
        // Paper Figure 6: C3* stores "at" and "ae"; e precedes t among siblings.
        let (bytes, _mm) = build(&[(b"at", 1), (b"ae", 2)]);
        let t = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t.key, b'a');
        let s_e = parse_s_node(&bytes, t.header_end, None).unwrap();
        assert_eq!(s_e.key, b'e');
        let s_t = parse_s_node(&bytes, s_e.end, Some(s_e.key)).unwrap();
        assert_eq!(s_t.key, b't');
        assert!(
            s_t.explicit_key,
            "delta 15 exceeds three bits, explicit key required"
        );
    }

    #[test]
    fn multiple_long_children_become_embedded_container() {
        let (bytes, _mm) = build(&[(b"common-alpha", 1), (b"common-beta", 2)]);
        let t = parse_t_node(&bytes, 0, None).unwrap();
        let s = parse_s_node(&bytes, t.header_end, None).unwrap();
        assert_eq!(s.child, ChildKind::Embedded);
        // The embedded body itself is a valid node stream.
        let emb = s.child_offset.unwrap();
        let size = bytes[emb] as usize;
        assert!(size > 2);
        let inner_t = parse_t_node(&bytes[..emb + size], emb + 1, None).unwrap();
        assert_eq!(inner_t.key, b'm');
    }

    #[test]
    fn huge_subtree_spills_into_real_container() {
        // Many children with long suffixes cannot fit in a 255-byte embedded
        // container, so the builder must allocate a real child container.
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::new();
        for i in 0..64u8 {
            entries.push((
                format!("pp{:02}-rather-long-suffix", i).into_bytes(),
                i as u64,
            ));
        }
        entries.sort();
        let mut mm = MemoryManager::new();
        let config = HyperionConfig::default();
        let bytes = {
            let mut b = StreamBuilder::new(&mut mm, &config);
            b.build_stream(None, &entries)
        };
        let t = parse_t_node(&bytes, 0, None).unwrap();
        let s = parse_s_node(&bytes, t.header_end, None).unwrap();
        assert_eq!(s.child, ChildKind::Pointer);
        let stats = mm.stats();
        assert!(
            stats.allocated_chunks() > 1,
            "a child container was allocated"
        );
    }

    #[test]
    fn delta_disabled_stores_explicit_keys() {
        let mut mm = MemoryManager::new();
        let config = HyperionConfig {
            delta_encoding: false,
            ..Default::default()
        };
        let entries: Vec<Entry> = vec![(b"a".to_vec(), 1), (b"b".to_vec(), 2)];
        let bytes = {
            let mut b = StreamBuilder::new(&mut mm, &config);
            b.build_stream(None, &entries)
        };
        let t_a = parse_t_node(&bytes, 0, None).unwrap();
        let t_b = parse_t_node(&bytes, t_a.header_end, Some(t_a.key)).unwrap();
        assert!(t_a.explicit_key);
        assert!(t_b.explicit_key, "delta encoding disabled");
        assert_eq!(t_b.key, b'b');
    }
}

//! # hyperion-core
//!
//! A from-scratch Rust implementation of **Hyperion**, the trie-based
//! main-memory key-value store presented in *Hyperion: Building the largest
//! in-memory search tree* (SIGMOD 2019).
//!
//! Hyperion is an `m`-ary trie with `m = 65,536`: each container encodes a
//! 16-bit partial key, split into two 8-bit levels of T-nodes and S-nodes that
//! are stored as an exact-fit, linearly scanned byte stream.  Memory
//! efficiency comes from:
//!
//! * an exact-fit container layout that grows in 32-byte increments,
//! * delta encoding of sibling key characters,
//! * recursively embedded child containers,
//! * path compression of unique key suffixes,
//! * a custom memory manager handing out 5-byte Hyperion Pointers
//!   (the [`hyperion_mem`] crate),
//! * optional key pre-processing for uniformly distributed keys.
//!
//! Performance features (jump successors, per-node jump tables, container
//! jump tables and vertical container splits) keep the linear scans short.
//!
//! ## Cursors and lazy iterators
//!
//! Ordered traversal is cursor-first: [`HyperionMap::iter`],
//! [`HyperionMap::range`] and [`HyperionMap::prefix`] return *lazy* iterators
//! that walk the container byte stream incrementally (module [`iter`]), and
//! [`HyperionMap::cursor`] exposes the underlying seekable [`Cursor`]:
//!
//! ```
//! use hyperion_core::HyperionMap;
//!
//! let mut index = HyperionMap::new();
//! index.put(b"that", 1);
//! index.put(b"the", 2);
//! index.put(b"to", 3);
//! assert_eq!(index.get(b"the"), Some(2));
//!
//! // Lazy, ordered iteration — no intermediate Vec is materialised.
//! let th_keys: Vec<_> = index.prefix(b"th").map(|(key, _)| key).collect();
//! assert_eq!(th_keys, vec![b"that".to_vec(), b"the".to_vec()]);
//!
//! // Range queries use standard range syntax.
//! assert_eq!(index.range(&b"the"[..]..).count(), 2);
//!
//! // Seek-and-step with an explicit cursor.
//! let mut cur = index.cursor();
//! cur.seek(b"th");
//! assert_eq!(cur.next(), Some((b"that".to_vec(), 1)));
//! ```
//!
//! ## Sharded front end
//!
//! The concurrency layer is the [`db`] module: [`HyperionDb`] shards the key
//! space over up to 256 per-lock tries (the paper's arenas, Section 3.2)
//! behind a database-style API — a pluggable [`Partitioner`], batched
//! operations ([`WriteBatch`], [`HyperionDb::multi_get`]), a typed
//! [`HyperionError`]/[`PutOutcome`] surface, and streaming merged scans
//! ([`DbScan`]) whose memory is bounded by `shards × chunk` regardless of
//! database size.  The old [`ConcurrentHyperion`] wrapper remains as a thin
//! deprecated shim.
//!
//! ## Trait hierarchy
//!
//! The capabilities of an index structure are split into composable traits
//! (implemented by Hyperion and by every baseline in `hyperion-baselines`):
//!
//! * [`KvRead`] — point reads: `get` / `contains` / `len` /
//!   `memory_footprint`,
//! * [`KvWrite`] — mutations: `put` / `delete`,
//! * [`OrderedRead`] — ordered traversal: `for_each_from`, `iter_from`,
//!   `range_iter`, `prefix_iter`, plus the backward queries `last` and
//!   `pred` (requires [`KvRead`]),
//! * [`KvStore`] / [`OrderedKvStore`] — auto-implemented combinations for
//!   trait objects (`Box<dyn OrderedKvStore>`).

pub mod arena;
pub mod builder;
pub mod config;
pub mod container;
pub mod db;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod iter;
pub mod keys;
pub mod node;
pub mod read;
pub mod scan;
pub mod scan_kernel;
pub(crate) mod seqlock;
pub mod shortcut;
pub mod stats;
pub mod trie;
pub mod write;

#[allow(deprecated)]
pub use arena::ConcurrentHyperion;
pub use config::HyperionConfig;
pub use db::{
    BatchReport, BatchSummary, DbScan, FibonacciPartitioner, FirstBytePartitioner, HyperionDb,
    HyperionDbBuilder, HyperionError, Partitioner, PrefixHashPartitioner, PutOutcome,
    RangePartitioner, WriteBatch,
};
pub use iter::{Cursor, Entries, Iter, Prefix, Range};
pub use scan_kernel::{ContainerScanner, Resume, ScanBackend};
pub use shortcut::Shortcut;
pub use stats::{DbStats, OptimisticReadStats, ShortcutStats, TrieAnalysis, TrieCounters};
pub use trie::HyperionMap;
pub use write::WriteError;

/// Point-read capabilities shared by every index structure in the workspace.
///
/// This is the read half of the old monolithic `KeyValueStore` trait; ordered
/// traversal lives in [`OrderedRead`] so unordered structures (hash tables)
/// only implement what they can honour.
pub trait KvRead {
    /// Returns the value stored for `key`, if any.
    fn get(&self, key: &[u8]) -> Option<u64>;

    /// `true` if `key` is present.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// `true` if the store holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical memory footprint in bytes (data structure + payload).
    fn memory_footprint(&self) -> usize;

    /// Short identifier used in benchmark tables.
    fn name(&self) -> &'static str;
}

/// Write capabilities of an index structure.
pub trait KvWrite {
    /// Inserts or updates `key`; returns `true` if the key was not present.
    fn put(&mut self, key: &[u8], value: u64) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn delete(&mut self, key: &[u8]) -> bool;
}

/// Ordered traversal over an index structure.
///
/// Implementors must provide [`OrderedRead::for_each_from`]; everything else
/// has a default implementation.  Structures with a native incremental cursor
/// (Hyperion) override [`OrderedRead::iter_from`] and
/// [`OrderedRead::range_iter`] to return lazy iterators; the defaults
/// materialise only the requested slice of the key space via the callback
/// walk (a bounded range never copies the tail beyond its end bound).
///
/// All keys and bounds are in the structure's *original* (external) key
/// space.  One caveat for implementations that transform keys internally:
/// `HyperionMap` with [`HyperionConfig::with_preprocessing`] relies on the
/// paper's zero-bit-injection transform, which is order-preserving only
/// among keys of uniform width (>= 4 bytes); mixing key widths under
/// pre-processing yields unspecified iteration order, so that configuration
/// requires fixed-width keys (e.g. 8-byte encoded integers).
pub trait OrderedRead: KvRead {
    /// Invokes `f(key, value)` for every key `>= start` in ascending order
    /// until `f` returns `false`.
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool);

    /// Returns an ordered iterator over all keys `>= start`.
    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        let mut out = Vec::new();
        self.for_each_from(start, &mut |k, v| {
            out.push((k.to_vec(), v));
            true
        });
        Entries::from_sorted_vec(out)
    }

    /// Returns an ordered iterator over the half-open key range
    /// `[start, end)`.  The default stops the underlying walk at the end
    /// bound instead of materialising the whole tail.
    fn range_iter(&self, start: &[u8], end: &[u8]) -> Entries<'_> {
        let mut out = Vec::new();
        self.for_each_from(start, &mut |k, v| {
            if k >= end {
                return false;
            }
            out.push((k.to_vec(), v));
            true
        });
        Entries::from_sorted_vec(out)
    }

    /// Returns an ordered iterator over all keys starting with `prefix`.
    fn prefix_iter(&self, prefix: &[u8]) -> Entries<'_> {
        match iter::prefix_upper_bound(prefix) {
            Some(end) => self.range_iter(prefix, &end),
            None => self.iter_from(prefix),
        }
    }

    /// Counts the keys in `[start, end)`.
    fn range_count(&self, start: &[u8], end: &[u8]) -> usize {
        self.range_iter(start, end).count()
    }

    /// Returns the smallest key `>= start` with its value.  The default
    /// stops the underlying walk after the first hit.
    fn seek_first(&self, start: &[u8]) -> Option<(Vec<u8>, u64)> {
        let mut first = None;
        self.for_each_from(start, &mut |k, v| {
            first = Some((k.to_vec(), v));
            false
        });
        first
    }

    /// Returns the greatest stored key with its value, or `None` when the
    /// store is empty.  The default walks the whole key space forward;
    /// structures with a backward walk (Hyperion's reverse cursor, the
    /// baselines' right-spine descents) override it with an `O(depth)`
    /// implementation.
    fn last(&self) -> Option<(Vec<u8>, u64)> {
        let mut last = None;
        self.for_each_from(&[], &mut |k, v| {
            last = Some((k.to_vec(), v));
            true
        });
        last
    }

    /// Returns the greatest key *strictly less than* `key` with its value —
    /// the predecessor query, the mirror of [`OrderedRead::seek_first`].
    /// The default walks forward up to `key` and keeps the last in-bound
    /// pair; backward-capable structures override it.
    fn pred(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let mut pred = None;
        self.for_each_from(&[], &mut |k, v| {
            if k >= key {
                return false;
            }
            pred = Some((k.to_vec(), v));
            true
        });
        pred
    }
}

/// A full read/write key-value store (`KvRead + KvWrite`), auto-implemented.
/// Exists so benchmark harnesses can hold `Box<dyn KvStore>`.
pub trait KvStore: KvRead + KvWrite {}
impl<T: KvRead + KvWrite + ?Sized> KvStore for T {}

/// A full *ordered* read/write key-value store (`OrderedRead + KvWrite`),
/// auto-implemented.  Hash tables implement [`KvStore`] but not this.
pub trait OrderedKvStore: OrderedRead + KvWrite {}
impl<T: OrderedRead + KvWrite + ?Sized> OrderedKvStore for T {}

//! # hyperion-core
//!
//! A from-scratch Rust implementation of **Hyperion**, the trie-based
//! main-memory key-value store presented in *Hyperion: Building the largest
//! in-memory search tree* (SIGMOD 2019).
//!
//! Hyperion is an `m`-ary trie with `m = 65,536`: each container encodes a
//! 16-bit partial key, split into two 8-bit levels of T-nodes and S-nodes that
//! are stored as an exact-fit, linearly scanned byte stream.  Memory
//! efficiency comes from:
//!
//! * an exact-fit container layout that grows in 32-byte increments,
//! * delta encoding of sibling key characters,
//! * recursively embedded child containers,
//! * path compression of unique key suffixes,
//! * a custom memory manager handing out 5-byte Hyperion Pointers
//!   (the [`hyperion_mem`] crate),
//! * optional key pre-processing for uniformly distributed keys.
//!
//! Performance features (jump successors, per-node jump tables, container
//! jump tables and vertical container splits) keep the linear scans short.
//!
//! ```
//! use hyperion_core::HyperionMap;
//!
//! let mut index = HyperionMap::new();
//! index.put(b"that", 1);
//! index.put(b"the", 2);
//! index.put(b"to", 3);
//! assert_eq!(index.get(b"the"), Some(2));
//!
//! // Ordered range query via callback, as in the paper.
//! let mut keys = Vec::new();
//! index.range_from(b"th", &mut |key, _value| {
//!     keys.push(key.to_vec());
//!     true
//! });
//! assert_eq!(keys, vec![b"that".to_vec(), b"the".to_vec(), b"to".to_vec()]);
//! ```

pub mod arena;
pub mod builder;
pub mod config;
pub mod container;
pub mod keys;
pub mod node;
pub mod scan;
pub mod stats;
pub mod trie;

pub use arena::ConcurrentHyperion;
pub use config::HyperionConfig;
pub use stats::{TrieAnalysis, TrieCounters};
pub use trie::HyperionMap;

/// Common interface implemented by Hyperion and by every baseline index
/// structure used in the paper's evaluation (`hyperion-baselines`), so that
/// the benchmark harness can drive them uniformly as key-value stores.
pub trait KeyValueStore {
    /// Inserts or updates `key`; returns `true` if the key was not present.
    fn put(&mut self, key: &[u8], value: u64) -> bool;
    /// Returns the value stored for `key`, if any.
    fn get(&self, key: &[u8]) -> Option<u64>;
    /// Removes `key`; returns `true` if it was present.
    fn delete(&mut self, key: &[u8]) -> bool;
    /// Number of keys stored.
    fn len(&self) -> usize;
    /// `true` if the store holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Invokes `f(key, value)` for every key `>= start` in ascending order
    /// until `f` returns `false`.  Unordered stores (hash tables) are allowed
    /// to panic; the harness only calls this on ordered structures.
    fn range_for_each(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool);
    /// Logical memory footprint in bytes (data structure + payload).
    fn memory_footprint(&self) -> usize;
    /// Short identifier used in benchmark tables.
    fn name(&self) -> &'static str;
}

//! Structural statistics of a Hyperion trie.
//!
//! The paper's Section 4.3 attributes Hyperion's memory efficiency to delta
//! encoding, embedded containers and path compression and quantifies each.
//! [`TrieAnalysis`] gathers the same numbers for an arbitrary trie instance so
//! that EXPERIMENTS.md can report them alongside the paper's values.

/// Running counters updated by mutating operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrieCounters {
    /// Embedded containers ejected into standalone containers.
    pub ejections: u64,
    /// Vertical container splits performed.
    pub splits: u64,
    /// Split attempts aborted (skewed key range or too-small halves).
    pub split_aborts: u64,
    /// Container jump table rebuilds.
    pub cjt_rebuilds: u64,
}

/// Counter snapshot of the hashed shortcut layer ([`crate::shortcut`]).
///
/// `hits / (hits + misses)` is the fraction of point descents that skipped
/// the upper trie levels; `entries / slots` the table occupancy.  A
/// disabled shortcut reports all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShortcutStats {
    /// Probes answered from the table (descent skipped upper levels).
    pub hits: u64,
    /// Probes that fell back to a full root descent.
    pub misses: u64,
    /// Entries killed by structural events (frees, moves, whole-map
    /// clears).
    pub invalidations: u64,
    /// Live entries currently in the table.
    pub entries: u64,
    /// Slots allocated (the table grows lazily toward its capacity).
    pub slots: u64,
}

impl ShortcutStats {
    /// Fraction of probes answered from the table, 0.0 when never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise sum, for aggregating per-shard tables.
    pub fn merge(&mut self, other: &ShortcutStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.entries += other.entries;
        self.slots += other.slots;
    }
}

/// Live counters of the optimistic (seqlock-validated) read path of
/// [`crate::HyperionDb`], updated with `Relaxed` atomics so hot read paths
/// pay one uncontended increment, never a lock.
#[derive(Debug, Default)]
pub struct ReadCounters {
    hits: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
    fallbacks: std::sync::atomic::AtomicU64,
}

impl ReadCounters {
    /// Records an optimistic attempt that validated cleanly.
    #[inline]
    pub fn hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records an optimistic attempt discarded because the shard's version
    /// moved (or was mid-mutation when the attempt started).
    #[inline]
    pub fn retry(&self) {
        self.retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a read that exhausted its optimistic attempts and took the
    /// shard mutex.
    #[inline]
    pub fn fallback(&self) {
        self.fallbacks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for diagnostics (individually `Relaxed`
    /// loads; the counters are monotone).
    pub fn snapshot(&self) -> OptimisticReadStats {
        OptimisticReadStats {
            hits: self.hits.load(std::sync::atomic::Ordering::Relaxed),
            retries: self.retries.load(std::sync::atomic::Ordering::Relaxed),
            fallbacks: self.fallbacks.load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// Counter snapshot of the optimistic read path (see [`ReadCounters`]).
///
/// `hits / (hits + fallbacks)` is the fraction of reads served without ever
/// touching a shard mutex; `retries` counts discarded attempts (each retried
/// in place before falling back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimisticReadStats {
    /// Reads served lock-free (final attempt validated).
    pub hits: u64,
    /// Attempts discarded because a writer was active or the version moved.
    pub retries: u64,
    /// Reads that exhausted their attempts and took the shard mutex.
    pub fallbacks: u64,
}

impl OptimisticReadStats {
    /// Fraction of reads served without locking, 0.0 when never read.
    pub fn lock_free_rate(&self) -> f64 {
        let total = self.hits + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Layout version of the [`DbStats`] tree; bumped whenever fields are added
/// so wire consumers (the server STATS verb) can tell encodings apart.
pub const DB_STATS_VERSION: u64 = 1;

/// The unified statistics tree of a [`crate::HyperionDb`], returned by
/// [`crate::HyperionDb::stats`].
///
/// Consolidates what used to be three separate surfaces — the per-shard
/// shortcut counters ([`ShortcutStats`]), the optimistic read counters
/// ([`OptimisticReadStats`]) and the ad-hoc fields the server's STATS verb
/// merged on its own (poison recoveries, failpoint trips) — into one
/// versioned snapshot taken at a single call site and encoded once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Layout version ([`DB_STATS_VERSION`]).
    pub version: u64,
    /// The scan backend the db was built with ([`crate::scan_kernel`]); its
    /// [`kernel_name`](crate::ScanBackend::kernel_name) tells which concrete
    /// kernel (scalar/sse2/avx2/neon) this build resolves it to.
    pub scan_backend: crate::scan_kernel::ScanBackend,
    /// Hashed shortcut layer counters, merged across shards.
    pub shortcut: ShortcutStats,
    /// Optimistic (seqlock-validated) read path counters.
    pub optimistic: OptimisticReadStats,
    /// Structural mutation counters, merged across shards.
    pub counters: TrieCounters,
    /// Shards recovered after a writer panicked mid-mutation.
    pub poison_recoveries: u64,
    /// Failpoint activations so far (0 unless the `failpoints` feature is
    /// enabled and sites are armed).
    pub failpoint_trips: u64,
}

impl TrieCounters {
    /// Element-wise sum, for aggregating per-shard tries.
    pub fn merge(&mut self, other: &TrieCounters) {
        self.ejections += other.ejections;
        self.splits += other.splits;
        self.split_aborts += other.split_aborts;
        self.cjt_rebuilds += other.cjt_rebuilds;
    }
}

/// Result of a full structural walk ([`crate::HyperionMap::analyze`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrieAnalysis {
    /// Real (standalone or chain-slot) containers.
    pub containers: u64,
    /// Chained extended-bin groups created by container splits.
    pub chained_groups: u64,
    /// Embedded containers currently nested inside parents.
    pub embedded_containers: u64,
    /// T-nodes (first 8 bits of a 16-bit partial key).
    pub t_nodes: u64,
    /// S-nodes (second 8 bits of a 16-bit partial key).
    pub s_nodes: u64,
    /// Nodes whose key character is delta-encoded (no explicit key byte).
    pub delta_encoded_nodes: u64,
    /// Path-compressed nodes.
    pub pc_nodes: u64,
    /// Total suffix bytes stored in path-compressed nodes.
    pub pc_suffix_bytes: u64,
    /// Values stored (should equal the number of non-empty keys).
    pub values: u64,
    /// Jump-successor offsets present.
    pub jump_successors: u64,
    /// T-node jump tables present.
    pub tnode_jump_tables: u64,
    /// Bytes used inside containers (header `size` fields summed).
    pub container_used_bytes: u64,
    /// Bytes allocated for containers (chunk capacities summed).
    pub container_capacity_bytes: u64,
    /// Embedded containers ejected so far (copied from the counters).
    pub ejections: u64,
    /// Container splits performed so far (copied from the counters).
    pub splits: u64,
}

impl TrieAnalysis {
    /// Bytes saved by delta encoding (one key byte per delta-encoded node).
    pub fn delta_encoding_savings(&self) -> u64 {
        self.delta_encoded_nodes
    }

    /// Internal fragmentation inside containers (allocated minus used).
    pub fn internal_fragmentation(&self) -> u64 {
        self.container_capacity_bytes
            .saturating_sub(self.container_used_bytes)
    }

    /// Total number of internal trie nodes.
    pub fn nodes(&self) -> u64 {
        self.t_nodes + self.s_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let a = TrieAnalysis {
            t_nodes: 10,
            s_nodes: 20,
            delta_encoded_nodes: 12,
            container_used_bytes: 100,
            container_capacity_bytes: 128,
            ..Default::default()
        };
        assert_eq!(a.nodes(), 30);
        assert_eq!(a.delta_encoding_savings(), 12);
        assert_eq!(a.internal_fragmentation(), 28);
    }

    #[test]
    fn shortcut_hit_rate_and_merge() {
        assert_eq!(ShortcutStats::default().hit_rate(), 0.0);
        let mut a = ShortcutStats {
            hits: 3,
            misses: 1,
            invalidations: 2,
            entries: 5,
            slots: 8,
        };
        assert_eq!(a.hit_rate(), 0.75);
        a.merge(&ShortcutStats {
            hits: 1,
            misses: 3,
            invalidations: 0,
            entries: 1,
            slots: 8,
        });
        assert_eq!(a.hits + a.misses, 8);
        assert_eq!(a.hit_rate(), 0.5);
        assert_eq!(a.slots, 16);
    }
}

//! Containers: the nodes of the 65,536-ary Hyperion trie.
//!
//! A container is one chunk obtained from the memory manager.  It starts with
//! a 4-byte header (paper Figure 3), optionally followed by a container jump
//! table, followed by the node stream (T/S records in pre-order).
//!
//! ```text
//! header bits  0..19  size  (bytes in use, including the header)
//!             19..26  free  (unused bytes at the end, capped at 127)
//!             26..27  L     (key-lane block present between jump table and stream)
//!             27..30  J     (container jump table size in groups of 7 entries)
//!             30..32  S     (split delay)
//! ```
//!
//! The key-lane bit is a reproduction-side extension (the paper caps the
//! advisory free field at 255; 127 loses nothing because the authoritative
//! free count always comes from the memory manager).  When set, a key-lane
//! block sits between the container jump table and the node stream — see
//! [`crate::scan_kernel`] for its layout.  Both the container jump table's
//! offsets (stream-start relative) and all jump offsets inside records
//! (record relative) are invariant under inserting or removing the lane
//! block, so the write engine strips it with one `memmove` before editing
//! and re-emits it when an operation completes.

use crate::node::HP_SIZE;
use hyperion_mem::{HyperionPointer, MemoryManager};

/// Size of the container header in bytes.
pub const HEADER_SIZE: usize = 4;
/// Initial allocation size of a fresh container (28 bytes of payload).
pub const INITIAL_CONTAINER_SIZE: usize = 32;
/// Containers grow in increments of this many bytes.
pub const CONTAINER_INCREMENT: usize = 32;
/// Size of one container-jump-table entry (1 key byte + 24-bit offset).
pub const CJT_ENTRY_SIZE: usize = 4;
/// Entries are added in groups of seven.
pub const CJT_GROUP: usize = 7;
/// Maximum number of groups (7 * 7 = 49 entries).
pub const CJT_MAX_GROUPS: usize = 7;

/// Identifies where a container lives: either a standalone allocation or one
/// slot of a chained extended bin created by a vertical container split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerHandle {
    /// A regular allocation addressed by one Hyperion Pointer.
    Standalone(HyperionPointer),
    /// Slot `index` of the chained extended bin headed by `head`.
    ChainSlot {
        /// HP of the chain head.
        head: HyperionPointer,
        /// Slot index within the chain (0..8).
        index: usize,
    },
}

impl ContainerHandle {
    /// The HP that the parent stores for this container (the chain head for
    /// chain slots).
    pub fn stored_pointer(&self) -> HyperionPointer {
        match self {
            ContainerHandle::Standalone(hp) => *hp,
            ContainerHandle::ChainSlot { head, .. } => *head,
        }
    }
}

/// A working reference to an open container: raw pointer + capacity + handle.
///
/// The reference is only valid while the owning [`MemoryManager`] is alive and
/// no other `ContainerRef` to the same chunk performs a reallocation.  The
/// trie upholds this by operating on one root-to-leaf path at a time; the
/// read-only [`crate::Cursor`] clones references into its frame stack, which
/// is sound because the cursor's shared borrow of the map rules out
/// reallocation for its whole lifetime.
#[derive(Clone)]
pub struct ContainerRef {
    handle: ContainerHandle,
    ptr: *mut u8,
    capacity: usize,
}

impl ContainerRef {
    /// Opens an existing container.
    pub fn open(mm: &MemoryManager, handle: ContainerHandle) -> ContainerRef {
        let (ptr, capacity) = match handle {
            ContainerHandle::Standalone(hp) => (mm.resolve(hp), mm.capacity(hp)),
            ContainerHandle::ChainSlot { head, index } => {
                let ptr = mm
                    .chained_ptr(head, index)
                    .expect("opening void chain slot");
                (ptr, mm.chained_capacity(head, index))
            }
        };
        ContainerRef {
            handle,
            ptr,
            capacity,
        }
    }

    /// Wraps an already-resolved allocation (crate-internal fast path: the
    /// read engine resolves handle, pointer and capacity in one metadata
    /// pass via [`MemoryManager::resolve_for_read`]).
    #[inline]
    pub(crate) fn from_parts(
        handle: ContainerHandle,
        ptr: *mut u8,
        capacity: usize,
    ) -> ContainerRef {
        ContainerRef {
            handle,
            ptr,
            capacity,
        }
    }

    /// Allocates and initialises a new standalone container whose node stream
    /// is `payload`.
    pub fn create(mm: &mut MemoryManager, payload: &[u8]) -> ContainerRef {
        let needed = (HEADER_SIZE + payload.len()).max(INITIAL_CONTAINER_SIZE);
        let rounded = needed.div_ceil(CONTAINER_INCREMENT) * CONTAINER_INCREMENT;
        let (hp, capacity) = mm.allocate(rounded);
        let mut c = ContainerRef {
            handle: ContainerHandle::Standalone(hp),
            ptr: mm.resolve(hp),
            capacity,
        };
        c.set_size(HEADER_SIZE + payload.len());
        c.bytes_mut()[HEADER_SIZE..HEADER_SIZE + payload.len()].copy_from_slice(payload);
        c.refresh_free_field();
        c
    }

    /// Initialises chain slot `index` of `head` with the given node stream.
    pub fn create_chain_slot(
        mm: &mut MemoryManager,
        head: HyperionPointer,
        index: usize,
        payload: &[u8],
    ) -> ContainerRef {
        let needed = (HEADER_SIZE + payload.len()).max(INITIAL_CONTAINER_SIZE);
        let (ptr, capacity) = mm.chained_set(head, index, needed);
        let mut c = ContainerRef {
            handle: ContainerHandle::ChainSlot { head, index },
            ptr,
            capacity,
        };
        c.set_size(HEADER_SIZE + payload.len());
        c.bytes_mut()[HEADER_SIZE..HEADER_SIZE + payload.len()].copy_from_slice(payload);
        c.refresh_free_field();
        c
    }

    /// The container's handle (may change after a reallocation).
    #[inline]
    pub fn handle(&self) -> ContainerHandle {
        self.handle
    }

    /// Usable capacity of the underlying allocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Immutable view of the whole allocation.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // Safety: ptr/capacity describe a live allocation owned by the memory
        // manager; no aliasing mutable access exists while `self` is borrowed.
        unsafe { std::slice::from_raw_parts(self.ptr, self.capacity) }
    }

    /// Mutable view of the whole allocation.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // Safety: see `bytes`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.capacity) }
    }

    // ----- header ------------------------------------------------------------

    #[inline]
    fn header(&self) -> u32 {
        u32::from_le_bytes(self.bytes()[..4].try_into().unwrap())
    }

    #[inline]
    fn set_header(&mut self, header: u32) {
        self.bytes_mut()[..4].copy_from_slice(&header.to_le_bytes());
    }

    /// Bytes in use, including the header and jump table.
    #[inline]
    pub fn size(&self) -> usize {
        (self.header() & 0x7ffff) as usize
    }

    /// Updates the size field and the derived free field.
    pub fn set_size(&mut self, size: usize) {
        debug_assert!(
            size <= self.capacity,
            "size {size} > capacity {}",
            self.capacity
        );
        // A hard assert even in release builds: overflowing the 19-bit size
        // field would silently corrupt the free/jump-table header bits.
        assert!(size < (1 << 19), "container size field overflow");
        let header = (self.header() & !0x7ffff) | size as u32;
        self.set_header(header);
        self.refresh_free_field();
    }

    /// Unused bytes at the end of the allocation (capped at 127 in the header;
    /// the authoritative value comes from the memory manager).
    #[inline]
    pub fn free_field(&self) -> usize {
        ((self.header() >> 19) & 0x7f) as usize
    }

    fn refresh_free_field(&mut self) {
        let free = (self.capacity - self.size()).min(127) as u32;
        let header = (self.header() & !(0x7f << 19)) | (free << 19);
        self.set_header(header);
    }

    /// `true` if a key-lane block sits between the jump table and the stream.
    #[inline]
    pub fn has_key_lane(&self) -> bool {
        self.header() & (1 << 26) != 0
    }

    /// Sets or clears the key-lane presence bit (the lane bytes themselves
    /// are managed by [`crate::scan_kernel`]).
    pub fn set_key_lane_flag(&mut self, present: bool) {
        let header = (self.header() & !(1 << 26)) | ((present as u32) << 26);
        self.set_header(header);
    }

    /// Offset where the key-lane block starts (or would start): directly
    /// after the container jump table.
    #[inline]
    pub fn lane_start(&self) -> usize {
        HEADER_SIZE + self.jt_groups() * CJT_GROUP * CJT_ENTRY_SIZE
    }

    /// Total size in bytes of the key-lane block, `0` when absent.
    ///
    /// Bounds-clamped for the same torn-read reason as [`stream_end`]: an
    /// optimistic reader can observe the lane bit of one write paired with
    /// the length prefix of another, and the result must stay inside the
    /// allocation (it is discarded at seqlock validation).
    ///
    /// [`stream_end`]: ContainerRef::stream_end
    #[inline]
    pub fn key_lane_len(&self) -> usize {
        if !self.has_key_lane() {
            return 0;
        }
        let at = self.lane_start();
        if at + 2 > self.capacity {
            return 0;
        }
        let len = self.read_u16(at) as usize;
        len.min(self.capacity - at)
    }

    /// Removes the key-lane block, if present.  A pure left shift of the node
    /// stream: container-jump-table offsets are stream-start relative and
    /// record jump offsets are record relative, so no offset fix-ups follow.
    pub fn strip_key_lane(&mut self) {
        if !self.has_key_lane() {
            return;
        }
        let at = self.lane_start();
        let len = self.key_lane_len().min(self.size().saturating_sub(at));
        if len > 0 {
            self.remove_range(at, len);
        }
        self.set_key_lane_flag(false);
    }

    /// Number of 7-entry groups in the container jump table.
    #[inline]
    pub fn jt_groups(&self) -> usize {
        ((self.header() >> 27) & 0b111) as usize
    }

    fn set_jt_groups(&mut self, groups: usize) {
        debug_assert!(groups <= CJT_MAX_GROUPS);
        let header = (self.header() & !(0b111 << 27)) | ((groups as u32) << 27);
        self.set_header(header);
    }

    /// Split delay `s` used in the split condition (Equation 4).
    #[inline]
    pub fn split_delay(&self) -> u8 {
        ((self.header() >> 30) & 0b11) as u8
    }

    /// Updates the split delay.
    pub fn set_split_delay(&mut self, delay: u8) {
        let header = (self.header() & !(0b11 << 30)) | ((delay as u32 & 0b11) << 30);
        self.set_header(header);
    }

    /// Offset of the first node-stream byte (after the header, the jump
    /// table and — when present — the key-lane block).
    #[inline]
    pub fn stream_start(&self) -> usize {
        self.lane_start() + self.key_lane_len()
    }

    /// Offset just past the last used node-stream byte.
    ///
    /// Clamped to the allocation's capacity: an optimistic reader racing a
    /// writer can observe a torn 19-bit `size` field that exceeds the
    /// capacity it paired with, and every scan loop bounds itself by this
    /// offset.  The clamp keeps such a read inside the allocation (the
    /// result is discarded at seqlock validation); for quiescent containers
    /// `size <= capacity` always holds and the clamp is a no-op.
    #[inline]
    pub fn stream_end(&self) -> usize {
        self.size().min(self.capacity)
    }

    // ----- byte-level editing ------------------------------------------------

    /// Ensures the allocation can hold at least `needed` bytes, growing it
    /// through the memory manager with the gap-growth headroom of
    /// [`hyperion_mem::growth_rounded_size`] (small-class changes copy the
    /// whole container, so growth skips classes geometrically).  Returns
    /// `true` if the handle (HP) changed and the parent's stored pointer
    /// must be updated.
    pub fn ensure_capacity(&mut self, mm: &mut MemoryManager, needed: usize) -> bool {
        if needed <= self.capacity {
            return false;
        }
        let rounded = hyperion_mem::growth_rounded_size(needed).div_ceil(CONTAINER_INCREMENT)
            * CONTAINER_INCREMENT;
        match self.handle {
            ContainerHandle::Standalone(hp) => {
                let (new_hp, capacity) = mm.reallocate(hp, rounded);
                self.ptr = mm.resolve(new_hp);
                self.capacity = capacity;
                let changed = new_hp != hp;
                self.handle = ContainerHandle::Standalone(new_hp);
                self.refresh_free_field();
                changed
            }
            ContainerHandle::ChainSlot { head, index } => {
                let (ptr, capacity) = mm.chained_realloc(head, index, rounded);
                self.ptr = ptr;
                self.capacity = capacity;
                self.refresh_free_field();
                false
            }
        }
    }

    /// Opens a gap of `len` bytes at offset `at`, shifting the tail of the
    /// used region to the right.  The gap is zero-filled.  Returns `true` if
    /// the HP changed.
    pub fn insert_gap(&mut self, mm: &mut MemoryManager, at: usize, len: usize) -> bool {
        let size = self.size();
        debug_assert!(
            at >= HEADER_SIZE && at <= size,
            "insert_gap at {at} size {size}"
        );
        let hp_changed = self.ensure_capacity(mm, size + len);
        let bytes = self.bytes_mut();
        bytes.copy_within(at..size, at + len);
        bytes[at..at + len].fill(0);
        self.set_size(size + len);
        hp_changed
    }

    /// Removes `len` bytes starting at `at`, shifting the tail left and
    /// zero-filling the vacated space at the end (required so the scan
    /// algorithm can rely on zeroed memory marking invalid nodes).
    pub fn remove_range(&mut self, at: usize, len: usize) {
        let size = self.size();
        debug_assert!(at >= HEADER_SIZE && at + len <= size);
        let bytes = self.bytes_mut();
        bytes.copy_within(at + len..size, at);
        bytes[size - len..size].fill(0);
        self.set_size(size - len);
    }

    // ----- typed accessors ----------------------------------------------------

    /// Reads a little-endian u16 at `offset`.
    #[inline]
    pub fn read_u16(&self, offset: usize) -> u16 {
        u16::from_le_bytes(self.bytes()[offset..offset + 2].try_into().unwrap())
    }

    /// Writes a little-endian u16 at `offset`.
    #[inline]
    pub fn write_u16(&mut self, offset: usize, value: u16) {
        self.bytes_mut()[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian u64 at `offset`.
    #[inline]
    pub fn read_u64(&self, offset: usize) -> u64 {
        u64::from_le_bytes(self.bytes()[offset..offset + 8].try_into().unwrap())
    }

    /// Writes a little-endian u64 at `offset`.
    #[inline]
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.bytes_mut()[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads the Hyperion Pointer stored at `offset`.
    #[inline]
    pub fn read_hp(&self, offset: usize) -> HyperionPointer {
        let mut buf = [0u8; HP_SIZE];
        buf.copy_from_slice(&self.bytes()[offset..offset + HP_SIZE]);
        HyperionPointer::from_bytes(buf)
    }

    /// Writes a Hyperion Pointer at `offset`.
    #[inline]
    pub fn write_hp(&mut self, offset: usize, hp: HyperionPointer) {
        self.bytes_mut()[offset..offset + HP_SIZE].copy_from_slice(&hp.to_bytes());
    }

    // ----- container jump table ------------------------------------------------

    /// Returns the container-jump-table entries as `(key, offset)` pairs.
    /// Offsets are relative to [`ContainerRef::stream_start`].
    pub fn cjt_entries(&self) -> Vec<(u8, u32)> {
        let groups = self.jt_groups();
        let mut out = Vec::with_capacity(groups * CJT_GROUP);
        for i in 0..groups * CJT_GROUP {
            let off = HEADER_SIZE + i * CJT_ENTRY_SIZE;
            let raw = u32::from_le_bytes(self.bytes()[off..off + 4].try_into().unwrap());
            if raw == 0 {
                continue;
            }
            out.push(((raw & 0xff) as u8, raw >> 8));
        }
        out
    }

    /// Replaces the container jump table with `entries` (sorted by key,
    /// offsets relative to the *new* stream start).  Grows or shrinks the
    /// jump-table region, shifting the node stream accordingly.  Returns
    /// `true` if the HP changed.
    pub fn set_cjt_entries(&mut self, mm: &mut MemoryManager, entries: &[(u8, u32)]) -> bool {
        debug_assert!(
            !self.has_key_lane(),
            "resize the jump table only on lane-stripped containers"
        );
        let new_groups = entries.len().div_ceil(CJT_GROUP).min(CJT_MAX_GROUPS);
        let _old_groups = self.jt_groups();
        let old_start = self.stream_start();
        let new_start = HEADER_SIZE + new_groups * CJT_GROUP * CJT_ENTRY_SIZE;
        let mut hp_changed = false;
        if new_start > old_start {
            hp_changed = self.insert_gap(mm, old_start, new_start - old_start);
        } else if new_start < old_start {
            self.remove_range(new_start, old_start - new_start);
        }
        self.set_jt_groups(new_groups);
        // Clear the table region, then write the entries.
        let table_len = new_groups * CJT_GROUP * CJT_ENTRY_SIZE;
        self.bytes_mut()[HEADER_SIZE..HEADER_SIZE + table_len].fill(0);
        for (i, (key, offset)) in entries.iter().take(new_groups * CJT_GROUP).enumerate() {
            let raw = (*key as u32) | (*offset << 8);
            let off = HEADER_SIZE + i * CJT_ENTRY_SIZE;
            self.bytes_mut()[off..off + 4].copy_from_slice(&raw.to_le_bytes());
        }
        hp_changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> MemoryManager {
        MemoryManager::new()
    }

    #[test]
    fn create_sets_header_and_payload() {
        let mut mm = mk();
        let c = ContainerRef::create(&mut mm, &[1, 2, 3]);
        assert_eq!(c.size(), HEADER_SIZE + 3);
        assert_eq!(c.capacity(), INITIAL_CONTAINER_SIZE);
        assert_eq!(&c.bytes()[HEADER_SIZE..HEADER_SIZE + 3], &[1, 2, 3]);
        assert_eq!(c.free_field(), INITIAL_CONTAINER_SIZE - HEADER_SIZE - 3);
        assert_eq!(c.jt_groups(), 0);
        assert_eq!(c.split_delay(), 0);
    }

    #[test]
    fn insert_gap_grows_in_32_byte_steps() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[0xAA; 20]);
        let size_before = c.size();
        c.insert_gap(&mut mm, HEADER_SIZE + 10, 30);
        assert_eq!(c.size(), size_before + 30);
        assert_eq!(c.capacity(), 64);
        // Original bytes preserved around the gap.
        assert!(c.bytes()[HEADER_SIZE..HEADER_SIZE + 10]
            .iter()
            .all(|&b| b == 0xAA));
        assert!(c.bytes()[HEADER_SIZE + 10..HEADER_SIZE + 40]
            .iter()
            .all(|&b| b == 0));
        assert!(c.bytes()[HEADER_SIZE + 40..HEADER_SIZE + 50]
            .iter()
            .all(|&b| b == 0xAA));
    }

    #[test]
    fn remove_range_zeroes_tail() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[0xBB; 24]);
        c.remove_range(HEADER_SIZE + 4, 8);
        assert_eq!(c.size(), HEADER_SIZE + 16);
        assert!(c.bytes()[HEADER_SIZE..HEADER_SIZE + 16]
            .iter()
            .all(|&b| b == 0xBB));
        assert!(c.bytes()[HEADER_SIZE + 16..].iter().all(|&b| b == 0));
    }

    #[test]
    fn handle_changes_when_size_class_changes() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[0xCC; 20]);
        let before = c.handle();
        // Grow well past the 32-byte class.
        c.insert_gap(&mut mm, HEADER_SIZE, 200);
        assert_ne!(c.handle(), before);
        // The payload moved with the reallocation.
        assert!(c.bytes()[HEADER_SIZE + 200..HEADER_SIZE + 220]
            .iter()
            .all(|&b| b == 0xCC));
    }

    #[test]
    fn split_delay_roundtrip() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[]);
        assert_eq!(c.split_delay(), 0);
        c.set_split_delay(3);
        assert_eq!(c.split_delay(), 3);
        assert_eq!(c.size(), HEADER_SIZE, "split delay must not disturb size");
    }

    #[test]
    fn container_jump_table_roundtrip() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[7u8; 10]);
        let entries = vec![(10u8, 0u32), (80, 100), (200, 250)];
        c.set_cjt_entries(&mut mm, &entries);
        assert_eq!(c.jt_groups(), 1);
        assert_eq!(c.stream_start(), HEADER_SIZE + 28);
        assert_eq!(c.cjt_entries(), entries);
        // Payload shifted but intact.
        assert!(c.bytes()[c.stream_start()..c.stream_start() + 10]
            .iter()
            .all(|&b| b == 7));
        // Shrink back to no table.
        c.set_cjt_entries(&mut mm, &[]);
        assert_eq!(c.jt_groups(), 0);
        assert!(c.bytes()[HEADER_SIZE..HEADER_SIZE + 10]
            .iter()
            .all(|&b| b == 7));
    }

    #[test]
    fn u64_and_hp_accessors_roundtrip() {
        let mut mm = mk();
        let mut c = ContainerRef::create(&mut mm, &[0u8; 20]);
        c.write_u64(HEADER_SIZE, 0xdead_beef_cafe_babe);
        assert_eq!(c.read_u64(HEADER_SIZE), 0xdead_beef_cafe_babe);
        let hp = HyperionPointer::new(5, 6, 7, 8);
        c.write_hp(HEADER_SIZE + 8, hp);
        assert_eq!(c.read_hp(HEADER_SIZE + 8), hp);
        c.write_u16(HEADER_SIZE + 14, 0x1234);
        assert_eq!(c.read_u16(HEADER_SIZE + 14), 0x1234);
    }

    #[test]
    fn chain_slot_containers_work() {
        let mut mm = mk();
        let head = mm.allocate_chained();
        let mut c = ContainerRef::create_chain_slot(&mut mm, head, 3, &[9u8; 50]);
        assert_eq!(c.size(), HEADER_SIZE + 50);
        let before_cap = c.capacity();
        c.insert_gap(&mut mm, HEADER_SIZE, 5000);
        assert!(c.capacity() > before_cap);
        assert!(matches!(
            c.handle(),
            ContainerHandle::ChainSlot { index: 3, .. }
        ));
        // Re-open and verify persistence.
        let c2 = ContainerRef::open(&mm, ContainerHandle::ChainSlot { head, index: 3 });
        assert_eq!(c2.size(), HEADER_SIZE + 5050);
    }
}

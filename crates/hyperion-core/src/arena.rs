//! Arenas: coarse-grained parallelism by sharding the key space.
//!
//! Hyperion does not implement fine-grained thread parallelism.  Instead an
//! application can create up to 256 tries `T_i` and map every operation on a
//! key `k` to `T_{k_0}` (paper Section 3.2, "Arenas").  Each arena owns its
//! own memory manager and is protected by its own lock, so operations on keys
//! with different leading bytes proceed concurrently.

use crate::config::HyperionConfig;
use crate::trie::HyperionMap;
use parking_lot::Mutex;

/// Maximum number of arenas (one per possible leading key byte).
pub const MAX_ARENAS: usize = 256;

/// A thread-safe Hyperion store sharding keys over multiple arenas.
///
/// The individual tries `T_i` are mapped to the arenas `A_j` round-robin:
/// `T_i -> A_{i mod j}`.
pub struct ConcurrentHyperion {
    arenas: Vec<Mutex<HyperionMap>>,
}

impl ConcurrentHyperion {
    /// Creates a store with `arenas` arenas (clamped to `1..=256`).
    pub fn new(arenas: usize, config: HyperionConfig) -> Self {
        let n = arenas.clamp(1, MAX_ARENAS);
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(Mutex::new(HyperionMap::with_config(config)));
        }
        ConcurrentHyperion { arenas: v }
    }

    /// Number of arenas.
    pub fn arena_count(&self) -> usize {
        self.arenas.len()
    }

    #[inline]
    fn arena_for(&self, key: &[u8]) -> &Mutex<HyperionMap> {
        let first = key.first().copied().unwrap_or(0) as usize;
        &self.arenas[first % self.arenas.len()]
    }

    /// Inserts or updates a key.  Returns `true` if the key was new.
    pub fn put(&self, key: &[u8], value: u64) -> bool {
        self.arena_for(key).lock().put(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.arena_for(key).lock().get(key)
    }

    /// Removes a key.  Returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.arena_for(key).lock().delete(key)
    }

    /// Total number of keys across all arenas.
    pub fn len(&self) -> usize {
        self.arenas.iter().map(|a| a.lock().len()).sum()
    }

    /// `true` if no arena stores any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total logical memory footprint across all arenas.
    pub fn footprint_bytes(&self) -> usize {
        self.arenas.iter().map(|a| a.lock().footprint_bytes()).sum()
    }

    /// Invokes `f` for every key/value pair in ascending key order across all
    /// arenas.
    ///
    /// Note: keys are sharded by their first byte modulo the arena count, so a
    /// global in-order scan must merge arenas; with 256 arenas each leading
    /// byte maps to exactly one arena and the scan below is globally ordered.
    /// With fewer arenas the per-arena scans are ordered but interleaved by
    /// leading byte, matching the paper's per-trie ordering guarantee.
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        if self.arenas.len() == MAX_ARENAS {
            for a in &self.arenas {
                if !a.lock().for_each(f) {
                    return false;
                }
            }
            return true;
        }
        // Merge: collect per-arena sorted vectors and merge them.
        let per_arena: Vec<Vec<(Vec<u8>, u64)>> =
            self.arenas.iter().map(|a| a.lock().to_vec()).collect();
        let mut indices = vec![0usize; per_arena.len()];
        loop {
            let mut best: Option<usize> = None;
            for (i, v) in per_arena.iter().enumerate() {
                if indices[i] < v.len() {
                    match best {
                        None => best = Some(i),
                        Some(b) => {
                            if v[indices[i]].0 < per_arena[b][indices[b]].0 {
                                best = Some(i);
                            }
                        }
                    }
                }
            }
            let Some(i) = best else { break };
            let (k, v) = &per_arena[i][indices[i]];
            if !f(k, *v) {
                return false;
            }
            indices[i] += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_operations_across_arenas() {
        let store = ConcurrentHyperion::new(16, HyperionConfig::default());
        assert_eq!(store.arena_count(), 16);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert!(store.put(key.as_bytes(), i));
        }
        assert_eq!(store.len(), 1000);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert_eq!(store.get(key.as_bytes()), Some(i));
        }
        assert!(store.delete(b"0500"));
        assert_eq!(store.get(b"0500"), None);
        assert_eq!(store.len(), 999);
    }

    #[test]
    fn concurrent_inserts_from_multiple_threads() {
        let store = Arc::new(ConcurrentHyperion::new(64, HyperionConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = ((t << 32) | i).to_be_bytes();
                    store.put(&key, t * 1_000_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8_000);
        for t in 0..4u64 {
            for i in (0..2_000u64).step_by(191) {
                let key = ((t << 32) | i).to_be_bytes();
                assert_eq!(store.get(&key), Some(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn arena_count_is_clamped() {
        assert_eq!(ConcurrentHyperion::new(0, HyperionConfig::default()).arena_count(), 1);
        assert_eq!(
            ConcurrentHyperion::new(10_000, HyperionConfig::default()).arena_count(),
            MAX_ARENAS
        );
    }

    #[test]
    fn merged_iteration_is_globally_ordered() {
        let store = ConcurrentHyperion::new(7, HyperionConfig::default());
        for i in 0..500u64 {
            store.put(format!("{:05}", i * 37 % 1000).as_bytes(), i);
        }
        let mut last: Option<Vec<u8>> = None;
        store.for_each(&mut |k, _| {
            if let Some(prev) = &last {
                assert!(prev.as_slice() < k, "iteration must be ordered");
            }
            last = Some(k.to_vec());
            true
        });
    }
}

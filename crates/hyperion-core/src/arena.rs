//! Arenas: the original coarse-grained concurrency wrapper, now a thin
//! deprecated shim over [`crate::db::HyperionDb`].
//!
//! Hyperion does not implement fine-grained thread parallelism.  Instead an
//! application can create up to 256 tries `T_i` and map every operation on a
//! key `k` to `T_{k_0}` (paper Section 3.2, "Arenas").  [`ConcurrentHyperion`]
//! exposed that directly as a `put/get/delete → bool` wrapper; the
//! database-style front end in [`crate::db`] supersedes it with pluggable
//! partitioning, batched operations, typed errors and streaming merged scans.
//! This module keeps the old surface alive for existing callers: every method
//! delegates to a [`HyperionDb`] configured with the paper-fidelity
//! [`crate::db::FirstBytePartitioner`].

use crate::config::HyperionConfig;
use crate::db::{DbScan, HyperionDb};
use crate::iter::Entries;
use crate::{KvRead, KvWrite, OrderedRead};
use std::ops::RangeBounds;

/// Maximum number of arenas (one per possible leading key byte).
pub const MAX_ARENAS: usize = crate::db::MAX_SHARDS;

/// A thread-safe Hyperion store sharding keys over multiple arenas.
///
/// The individual tries `T_i` are mapped to the arenas `A_j` round-robin:
/// `T_i -> A_{i mod j}`.  Deprecated: [`HyperionDb`] offers the same sharding
/// plus batched operations, pluggable partitioning, typed errors and
/// memory-bounded streaming scans.
#[deprecated(
    since = "0.2.0",
    note = "use hyperion_core::db::HyperionDb (builder-configured, batched, typed errors, \
            streaming scans); ConcurrentHyperion is now a thin shim over it"
)]
pub struct ConcurrentHyperion {
    db: HyperionDb,
}

#[allow(deprecated)]
impl ConcurrentHyperion {
    /// Creates a store with `arenas` arenas (clamped to `1..=256`).
    pub fn new(arenas: usize, config: HyperionConfig) -> Self {
        ConcurrentHyperion {
            db: HyperionDb::new(arenas, config),
        }
    }

    /// Number of arenas.
    pub fn arena_count(&self) -> usize {
        self.db.shard_count()
    }

    /// The backing [`HyperionDb`] — the migration path off this shim.
    pub fn as_db(&self) -> &HyperionDb {
        &self.db
    }

    /// Inserts or updates a key.  Returns `true` if the key was new.
    ///
    /// Shares the backing [`HyperionDb`]'s key-length contract: keys longer
    /// than [`crate::db::MAX_KEY_LEN`] panic (this surface has no error
    /// channel), so the typed API and this shim always agree on what is
    /// stored.  Use [`HyperionDb::put`] for a typed error instead.
    pub fn put(&self, key: &[u8], value: u64) -> bool {
        self.db.put_recovering(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.db.get_recovering(key)
    }

    /// Removes a key.  Returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.db.delete_recovering(key)
    }

    /// Total number of keys across all arenas.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// `true` if no arena stores any key.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Total logical memory footprint across all arenas.
    pub fn footprint_bytes(&self) -> usize {
        self.db.footprint_bytes()
    }

    /// Ordered iteration over all key/value pairs across all arenas
    /// (streaming merged scan, see [`HyperionDb::iter`]).
    pub fn iter(&self) -> DbScan<'_> {
        self.db.iter()
    }

    /// Ordered iteration over the keys within `bounds` across all arenas
    /// (streaming merged scan, see [`HyperionDb::range`]).
    pub fn range<K, R>(&self, bounds: R) -> DbScan<'_>
    where
        K: AsRef<[u8]> + ?Sized,
        R: RangeBounds<K>,
    {
        self.db.range(bounds)
    }

    /// Ordered iteration over all keys starting with `prefix` across all
    /// arenas (streaming merged scan, see [`HyperionDb::prefix`]).
    pub fn prefix(&self, prefix: &[u8]) -> DbScan<'_> {
        self.db.prefix(prefix)
    }

    /// Invokes `f` for every key/value pair in ascending key order across all
    /// arenas, until `f` returns `false`.
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        self.db.for_each(f)
    }
}

#[allow(deprecated)]
impl KvRead for ConcurrentHyperion {
    fn get(&self, key: &[u8]) -> Option<u64> {
        ConcurrentHyperion::get(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentHyperion::len(self)
    }

    fn memory_footprint(&self) -> usize {
        self.footprint_bytes()
    }

    fn name(&self) -> &'static str {
        "hyperion-arenas"
    }
}

#[allow(deprecated)]
impl KvWrite for ConcurrentHyperion {
    fn put(&mut self, key: &[u8], value: u64) -> bool {
        ConcurrentHyperion::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        ConcurrentHyperion::delete(self, key)
    }
}

#[allow(deprecated)]
impl OrderedRead for ConcurrentHyperion {
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool) {
        self.db.for_each_from(start, f)
    }

    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        self.db.iter_from(start)
    }

    fn seek_first(&self, start: &[u8]) -> Option<(Vec<u8>, u64)> {
        self.db.seek_first(start)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::trie::HyperionMap;
    use std::sync::Arc;

    #[test]
    fn basic_operations_across_arenas() {
        let store = ConcurrentHyperion::new(16, HyperionConfig::default());
        assert_eq!(store.arena_count(), 16);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert!(store.put(key.as_bytes(), i));
        }
        assert_eq!(store.len(), 1000);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert_eq!(store.get(key.as_bytes()), Some(i));
        }
        assert!(store.delete(b"0500"));
        assert_eq!(store.get(b"0500"), None);
        assert_eq!(store.len(), 999);
    }

    #[test]
    fn concurrent_inserts_from_multiple_threads() {
        let store = Arc::new(ConcurrentHyperion::new(64, HyperionConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = ((t << 32) | i).to_be_bytes();
                    store.put(&key, t * 1_000_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8_000);
        for t in 0..4u64 {
            for i in (0..2_000u64).step_by(191) {
                let key = ((t << 32) | i).to_be_bytes();
                assert_eq!(store.get(&key), Some(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn arena_count_is_clamped() {
        assert_eq!(
            ConcurrentHyperion::new(0, HyperionConfig::default()).arena_count(),
            1
        );
        assert_eq!(
            ConcurrentHyperion::new(10_000, HyperionConfig::default()).arena_count(),
            MAX_ARENAS
        );
    }

    #[test]
    fn merged_iteration_is_globally_ordered() {
        let store = ConcurrentHyperion::new(7, HyperionConfig::default());
        for i in 0..500u64 {
            store.put(format!("{:05}", i * 37 % 1000).as_bytes(), i);
        }
        let mut last: Option<Vec<u8>> = None;
        for (k, _) in store.iter() {
            if let Some(prev) = &last {
                assert!(prev.as_slice() < k.as_slice(), "iteration must be ordered");
            }
            last = Some(k);
        }
    }

    #[test]
    fn range_and_prefix_match_single_map() {
        let store = ConcurrentHyperion::new(5, HyperionConfig::default());
        let mut single = HyperionMap::new();
        for i in 0..800u64 {
            let key = format!("k{:04}", i * 13 % 2000).into_bytes();
            store.put(&key, i);
            single.put(&key, i);
        }
        let got: Vec<_> = store.range(&b"k0300"[..]..&b"k0600"[..]).collect();
        let expected: Vec<_> = single.range(&b"k0300"[..]..&b"k0600"[..]).collect();
        assert_eq!(got, expected);
        let got: Vec<_> = store.prefix(b"k01").collect();
        let expected: Vec<_> = single.prefix(b"k01").collect();
        assert_eq!(got, expected);
        assert_eq!(store.iter().count(), single.iter().count());
    }
}

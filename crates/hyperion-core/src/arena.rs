//! Arenas: coarse-grained parallelism by sharding the key space.
//!
//! Hyperion does not implement fine-grained thread parallelism.  Instead an
//! application can create up to 256 tries `T_i` and map every operation on a
//! key `k` to `T_{k_0}` (paper Section 3.2, "Arenas").  Each arena owns its
//! own memory manager and is protected by its own lock, so operations on keys
//! with different leading bytes proceed concurrently.

use crate::config::HyperionConfig;
use crate::iter::{prefix_upper_bound, Entries};
use crate::trie::HyperionMap;
use crate::{KvRead, KvWrite, OrderedRead};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Bound, RangeBounds};
use std::sync::{Mutex, MutexGuard};

/// Maximum number of arenas (one per possible leading key byte).
pub const MAX_ARENAS: usize = 256;

/// A thread-safe Hyperion store sharding keys over multiple arenas.
///
/// The individual tries `T_i` are mapped to the arenas `A_j` round-robin:
/// `T_i -> A_{i mod j}`.
pub struct ConcurrentHyperion {
    arenas: Vec<Mutex<HyperionMap>>,
}

/// Recovers the guard even if another thread panicked while holding the lock;
/// the per-arena tries contain no invariants that span a poisoned section.
fn lock(arena: &Mutex<HyperionMap>) -> MutexGuard<'_, HyperionMap> {
    arena
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ConcurrentHyperion {
    /// Creates a store with `arenas` arenas (clamped to `1..=256`).
    pub fn new(arenas: usize, config: HyperionConfig) -> Self {
        let n = arenas.clamp(1, MAX_ARENAS);
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(Mutex::new(HyperionMap::with_config(config)));
        }
        ConcurrentHyperion { arenas: v }
    }

    /// Number of arenas.
    pub fn arena_count(&self) -> usize {
        self.arenas.len()
    }

    #[inline]
    fn arena_for(&self, key: &[u8]) -> &Mutex<HyperionMap> {
        let first = key.first().copied().unwrap_or(0) as usize;
        &self.arenas[first % self.arenas.len()]
    }

    /// Inserts or updates a key.  Returns `true` if the key was new.
    pub fn put(&self, key: &[u8], value: u64) -> bool {
        lock(self.arena_for(key)).put(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        lock(self.arena_for(key)).get(key)
    }

    /// Removes a key.  Returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        lock(self.arena_for(key)).delete(key)
    }

    /// Total number of keys across all arenas.
    pub fn len(&self) -> usize {
        self.arenas.iter().map(|a| lock(a).len()).sum()
    }

    /// `true` if no arena stores any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total logical memory footprint across all arenas.
    pub fn footprint_bytes(&self) -> usize {
        self.arenas.iter().map(|a| lock(a).footprint_bytes()).sum()
    }

    // =====================================================================
    // ordered iteration
    // =====================================================================

    /// Takes a per-arena snapshot of the keys in `[start, end)` (each arena
    /// locked once, briefly) and returns a lazy k-way merge over them.
    fn snapshot(&self, start: &[u8], skip_equal: Option<&[u8]>, end: SnapshotEnd) -> MergedIter {
        let mut sources = Vec::with_capacity(self.arenas.len());
        for arena in &self.arenas {
            let guard = lock(arena);
            let mut cursor = guard.cursor();
            cursor.seek(start);
            let mut collected = Vec::new();
            for (key, value) in cursor {
                match &end {
                    SnapshotEnd::Unbounded => {}
                    SnapshotEnd::Excluded(e) => {
                        if key.as_slice() >= e.as_slice() {
                            break;
                        }
                    }
                    SnapshotEnd::Included(e) => {
                        if key.as_slice() > e.as_slice() {
                            break;
                        }
                    }
                }
                if skip_equal == Some(key.as_slice()) {
                    continue;
                }
                collected.push((key, value));
            }
            sources.push(collected);
        }
        MergedIter::new(sources)
    }

    /// Ordered iteration over all key/value pairs across all arenas.
    ///
    /// The iterator operates on a point-in-time snapshot: each arena is locked
    /// once while its (bounded) contents are collected, then the per-arena
    /// runs are merged lazily, so no lock is held while the caller consumes
    /// the iterator.
    pub fn iter(&self) -> MergedIter {
        self.snapshot(&[], None, SnapshotEnd::Unbounded)
    }

    /// Ordered iteration over the keys within `bounds` across all arenas
    /// (snapshot semantics, see [`ConcurrentHyperion::iter`]).
    pub fn range<K, R>(&self, bounds: R) -> MergedIter
    where
        K: AsRef<[u8]> + ?Sized,
        R: RangeBounds<K>,
    {
        let (start, skip_equal) = match bounds.start_bound() {
            Bound::Unbounded => (Vec::new(), None),
            Bound::Included(s) => (s.as_ref().to_vec(), None),
            Bound::Excluded(s) => (s.as_ref().to_vec(), Some(s.as_ref().to_vec())),
        };
        let end = match bounds.end_bound() {
            Bound::Unbounded => SnapshotEnd::Unbounded,
            Bound::Excluded(e) => SnapshotEnd::Excluded(e.as_ref().to_vec()),
            Bound::Included(e) => SnapshotEnd::Included(e.as_ref().to_vec()),
        };
        self.snapshot(&start, skip_equal.as_deref(), end)
    }

    /// Ordered iteration over all keys starting with `prefix` across all
    /// arenas (snapshot semantics, see [`ConcurrentHyperion::iter`]).
    pub fn prefix(&self, prefix: &[u8]) -> MergedIter {
        let end = match prefix_upper_bound(prefix) {
            Some(end) => SnapshotEnd::Excluded(end),
            None => SnapshotEnd::Unbounded,
        };
        self.snapshot(prefix, None, end)
    }

    /// Invokes `f` for every key/value pair in ascending key order across all
    /// arenas, until `f` returns `false`.  Thin adapter over
    /// [`ConcurrentHyperion::iter`].
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        for (key, value) in self.iter() {
            if !f(&key, value) {
                return false;
            }
        }
        true
    }
}

/// Upper bound of a [`ConcurrentHyperion`] snapshot.
enum SnapshotEnd {
    Unbounded,
    Excluded(Vec<u8>),
    Included(Vec<u8>),
}

/// Lazy k-way merge over per-arena sorted snapshots; yields globally ordered
/// `(key, value)` pairs.  Returned by the [`ConcurrentHyperion`] iterators.
pub struct MergedIter {
    sources: Vec<std::vec::IntoIter<(Vec<u8>, u64)>>,
    /// Min-heap of the current head of every non-empty source.  Keys are
    /// unique across arenas (a key lives in exactly one arena), so `(key,
    /// source)` ordering is total.
    heap: BinaryHeap<Reverse<(Vec<u8>, usize, u64)>>,
}

impl MergedIter {
    fn new(snapshots: Vec<Vec<(Vec<u8>, u64)>>) -> MergedIter {
        let mut sources: Vec<_> = snapshots.into_iter().map(|v| v.into_iter()).collect();
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (idx, source) in sources.iter_mut().enumerate() {
            if let Some((key, value)) = source.next() {
                heap.push(Reverse((key, idx, value)));
            }
        }
        MergedIter { sources, heap }
    }
}

impl Iterator for MergedIter {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        let Reverse((key, idx, value)) = self.heap.pop()?;
        if let Some((next_key, next_value)) = self.sources[idx].next() {
            self.heap.push(Reverse((next_key, idx, next_value)));
        }
        Some((key, value))
    }
}

impl KvRead for ConcurrentHyperion {
    fn get(&self, key: &[u8]) -> Option<u64> {
        ConcurrentHyperion::get(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentHyperion::len(self)
    }

    fn memory_footprint(&self) -> usize {
        self.footprint_bytes()
    }

    fn name(&self) -> &'static str {
        "hyperion-arenas"
    }
}

impl KvWrite for ConcurrentHyperion {
    fn put(&mut self, key: &[u8], value: u64) -> bool {
        ConcurrentHyperion::put(self, key, value)
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        ConcurrentHyperion::delete(self, key)
    }
}

impl OrderedRead for ConcurrentHyperion {
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool) {
        let mut cursor = self.snapshot(start, None, SnapshotEnd::Unbounded);
        for (key, value) in &mut cursor {
            if !f(&key, value) {
                return;
            }
        }
    }

    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        Entries::from_lazy(self.snapshot(start, None, SnapshotEnd::Unbounded))
    }

    /// Overrides the default with a bounded probe: each arena is asked for
    /// its first key `>= start` (one cursor step under the lock), avoiding
    /// the full snapshot the merged iterators take.
    fn seek_first(&self, start: &[u8]) -> Option<(Vec<u8>, u64)> {
        self.arenas
            .iter()
            .filter_map(|arena| {
                let guard = lock(arena);
                let mut cursor = guard.cursor();
                cursor.seek(start);
                cursor.next()
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_operations_across_arenas() {
        let store = ConcurrentHyperion::new(16, HyperionConfig::default());
        assert_eq!(store.arena_count(), 16);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert!(store.put(key.as_bytes(), i));
        }
        assert_eq!(store.len(), 1000);
        for i in 0..1000u64 {
            let key = format!("{:04}", i);
            assert_eq!(store.get(key.as_bytes()), Some(i));
        }
        assert!(store.delete(b"0500"));
        assert_eq!(store.get(b"0500"), None);
        assert_eq!(store.len(), 999);
    }

    #[test]
    fn concurrent_inserts_from_multiple_threads() {
        let store = Arc::new(ConcurrentHyperion::new(64, HyperionConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = ((t << 32) | i).to_be_bytes();
                    store.put(&key, t * 1_000_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8_000);
        for t in 0..4u64 {
            for i in (0..2_000u64).step_by(191) {
                let key = ((t << 32) | i).to_be_bytes();
                assert_eq!(store.get(&key), Some(t * 1_000_000 + i));
            }
        }
    }

    #[test]
    fn arena_count_is_clamped() {
        assert_eq!(
            ConcurrentHyperion::new(0, HyperionConfig::default()).arena_count(),
            1
        );
        assert_eq!(
            ConcurrentHyperion::new(10_000, HyperionConfig::default()).arena_count(),
            MAX_ARENAS
        );
    }

    #[test]
    fn merged_iteration_is_globally_ordered() {
        let store = ConcurrentHyperion::new(7, HyperionConfig::default());
        for i in 0..500u64 {
            store.put(format!("{:05}", i * 37 % 1000).as_bytes(), i);
        }
        let mut last: Option<Vec<u8>> = None;
        for (k, _) in store.iter() {
            if let Some(prev) = &last {
                assert!(prev.as_slice() < k.as_slice(), "iteration must be ordered");
            }
            last = Some(k);
        }
    }

    #[test]
    fn range_and_prefix_match_single_map() {
        let store = ConcurrentHyperion::new(5, HyperionConfig::default());
        let mut single = HyperionMap::new();
        for i in 0..800u64 {
            let key = format!("k{:04}", i * 13 % 2000).into_bytes();
            store.put(&key, i);
            single.put(&key, i);
        }
        let got: Vec<_> = store.range(&b"k0300"[..]..&b"k0600"[..]).collect();
        let expected: Vec<_> = single.range(&b"k0300"[..]..&b"k0600"[..]).collect();
        assert_eq!(got, expected);
        let got: Vec<_> = store.prefix(b"k01").collect();
        let expected: Vec<_> = single.prefix(b"k01").collect();
        assert_eq!(got, expected);
        assert_eq!(store.iter().count(), single.iter().count());
    }
}

//! `HyperionDb`: a database-style sharded front end over [`HyperionMap`].
//!
//! The paper's arena design (Section 3.2) shards the key space over up to 256
//! tries to get coarse-grained parallelism.  This module turns that idea into
//! a real front-end API:
//!
//! * **Pluggable partitioning** — the [`Partitioner`] trait decides which
//!   shard owns a key.  [`FirstBytePartitioner`] reproduces the paper's
//!   `T_{k_0}` routing; [`FibonacciPartitioner`] hashes the whole key
//!   (splitmix64 + Fibonacci multiplication) to fix hot-prefix skew;
//!   [`PrefixHashPartitioner`] hashes only a fixed-length key prefix,
//!   balancing shards while keeping every shard's trie prefix-dense; the
//!   order-preserving [`RangePartitioner`] keeps cross-shard scans cheap by
//!   letting range queries prune shards.
//! * **Batched operations** — [`WriteBatch`] groups puts/deletes per shard and
//!   applies each group under a single lock acquisition;
//!   [`HyperionDb::multi_get`] does the same for point lookups, so lock
//!   traffic amortises across operations.
//! * **Typed errors** — the point/batch API returns
//!   [`Result`]`<`[`PutOutcome`]`, `[`HyperionError`]`>` instead of bare
//!   `bool`s: key-too-long, shard-poisoned and per-op batch failure reports
//!   are first-class values.
//! * **Streaming merged scans** — [`HyperionDb::iter`], [`HyperionDb::range`]
//!   and [`HyperionDb::prefix`] return a [`DbScan`]: a hand-over-hand k-way
//!   merge that buffers at most one refilled chunk per shard
//!   ([`HyperionDbBuilder::scan_chunk_size`] entries), so a scan over millions of
//!   keys allocates `O(shards × chunk)` memory instead of a full per-shard
//!   snapshot.  [`HyperionDb::iter_rev`], [`HyperionDb::range_rev`] and
//!   [`HyperionDb::prefix_rev`] run the same merge *descending*: every shard
//!   walks its trie backward and the frontier is a max-heap, with identical
//!   memory bounds and [`RangePartitioner`] shard pruning.
//!
//! ```
//! use hyperion_core::db::{FibonacciPartitioner, HyperionDb, WriteBatch};
//!
//! let db = HyperionDb::builder()
//!     .shards(8)
//!     .partitioner(FibonacciPartitioner)
//!     .build();
//!
//! let mut batch = WriteBatch::new();
//! batch.put(b"user:1", 10).put(b"user:2", 20).delete(b"user:3");
//! let summary = db.apply(&batch).unwrap();
//! assert_eq!(summary.inserted, 2);
//!
//! let got = db.multi_get(&[b"user:1", b"user:9"]).unwrap();
//! assert_eq!(got, vec![Some(10), None]);
//!
//! // Streaming merged scan: globally ordered, bounded memory.
//! let keys: Vec<_> = db.prefix(b"user:").map(|(k, _)| k).collect();
//! assert_eq!(keys, vec![b"user:1".to_vec(), b"user:2".to_vec()]);
//! ```
//!
//! # Locking, optimistic reads and poisoning
//!
//! Every shard is one [`HyperionMap`] in a `Shard` cell guarded by its own
//! [`Mutex`]; a key is always owned by exactly one shard, so per-key
//! operations never take more than one lock.  Writers always lock.  Readers
//! first run **optimistically** without the lock: each shard carries a
//! seqlock version word (`seqlock::MapSeq`) that the write engine
//! holds *odd* for the whole duration of a mutation, so a reader can snapshot
//! the version, run the ordinary single-pass read engine against the shared
//! trie, and accept the result only if the version is unchanged (and even)
//! afterwards.  A reader that keeps colliding with writers falls back to the
//! mutex after a few attempts — the classic seqlock trade: reads cost zero
//! atomic RMWs and scale linearly across cores, writers pay two relaxed
//! stores.
//!
//! An optimistic attempt may observe the trie mid-mutation.  Every such
//! result is discarded by validation; the read engine only has to be
//! *crash-safe* on torn state, not correct.  Three layers guarantee that:
//! bounds-checked container walks clamp torn sizes, cursor descents bound
//! their depth, and the whole attempt runs under `catch_unwind` (with panic
//! output suppressed) so a genuinely inconsistent snapshot unwinds harmlessly
//! and the read retries.  A panic that survives *validation* is a real bug
//! and is re-raised.  Attempts also suppress shortcut publishes
//! (`shortcut::suppress_publish`): entries derived from unvalidated
//! state must never land in the table.
//!
//! Formally, reading the trie while a writer mutates it is a data race on
//! non-atomic memory.  The implementation follows the established seqlock
//! practice (crossbeam's `AtomicCell`, the Linux kernel): the racing reads
//! are confined to bytes the validated path never exposes, arena slabs are
//! never unmapped while the map lives (freed containers stay readable), and
//! the `Release`/`Acquire` fence pairing on the version word orders the data
//! accesses against validation.
//!
//! The typed point/batch API reports a panicked writer as
//! [`HyperionError::ShardPoisoned`].  Read-only aggregates
//! ([`HyperionDb::len`], [`HyperionDb::footprint_bytes`]) and scans *recover*
//! poisoned locks instead: the per-shard tries hold no invariants that span a
//! poisoned critical section, and a scan that silently dropped a shard would
//! return wrong answers.  Recovery clears the poison flag
//! ([`Mutex::clear_poison`]) and forces the shard's seqlock even again, so
//! one recovering reader fully revives a shard whose writer died — later
//! readers go back to the lock-free path and later writers lock normally.

use crate::config::HyperionConfig;
use crate::iter::{prefix_upper_bound, Entries, LowerBound, UpperBound};
use crate::scan_kernel::ScanBackend;
use crate::shortcut;
use crate::stats::{
    DbStats, OptimisticReadStats, ReadCounters, ShortcutStats, TrieCounters, DB_STATS_VERSION,
};
use crate::trie::HyperionMap;
use crate::write::WriteError;
use crate::{KvRead, KvWrite, OrderedRead};
use std::cell::{Cell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, Once};

/// Maximum number of shards (one per possible leading key byte, as in the
/// paper's arena design).
pub const MAX_SHARDS: usize = 256;

/// Maximum key length accepted by the typed [`HyperionDb`] API.  The trie
/// handles longer keys on big stacks, but its subtree builder recurses two
/// key bytes per level, so a database front end needs a contract: 1 KiB
/// (the DynamoDB/MongoDB ballpark) keeps the recursion comfortably inside a
/// default 2 MiB thread stack even in debug builds.
pub const MAX_KEY_LEN: usize = 1024;

/// Default number of entries a [`DbScan`] buffers per shard between lock
/// acquisitions.
pub const DEFAULT_SCAN_CHUNK: usize = 256;

// =============================================================================
// errors and outcomes
// =============================================================================

/// Typed error surface of the [`HyperionDb`] point and batch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HyperionError {
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong {
        /// Length of the offending key.
        len: usize,
        /// The enforced maximum ([`MAX_KEY_LEN`]).
        max: usize,
    },
    /// A writer panicked while holding this shard's lock.
    ShardPoisoned {
        /// Index of the poisoned shard.
        shard: usize,
    },
    /// One or more operations of a [`WriteBatch`] failed; the report lists
    /// what was applied and which ops failed.
    BatchFailed(BatchReport),
    /// The write engine failed to converge on this shard (a broken
    /// structural invariant; see [`crate::WriteError`]).  The old write path
    /// aborted the process after 32 retry attempts instead.
    StructuralLoop {
        /// Index of the shard whose engine failed.
        shard: usize,
    },
    /// An allocation failed mid-write (today raised only by the `mem.alloc`
    /// failpoint simulating OOM).  The shard was re-quiesced and stays
    /// usable; the failed operation may have partially applied, like a
    /// timed-out RPC.  Retryable.
    AllocFailed {
        /// Index of the shard whose allocation failed.
        shard: usize,
    },
    /// A failpoint injected a transient fault (`Action::Error` trips under
    /// the `failpoints` feature).  Same contract as
    /// [`HyperionError::AllocFailed`]: shard usable, outcome of the failed
    /// operation unknown, retryable.
    Injected {
        /// Index of the shard the fault was injected on.
        shard: usize,
    },
}

impl fmt::Display for HyperionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperionError::KeyTooLong { len, max } => {
                write!(f, "key of {len} bytes exceeds the maximum of {max}")
            }
            HyperionError::ShardPoisoned { shard } => {
                write!(f, "shard {shard} is poisoned (a writer panicked)")
            }
            HyperionError::StructuralLoop { shard } => {
                write!(
                    f,
                    "write engine failed to converge on shard {shard} (structural loop)"
                )
            }
            HyperionError::AllocFailed { shard } => {
                write!(f, "allocation failed on shard {shard} (simulated OOM)")
            }
            HyperionError::Injected { shard } => {
                write!(f, "injected transient fault on shard {shard}")
            }
            HyperionError::BatchFailed(report) => {
                write!(
                    f,
                    "batch partially failed: {} op(s) applied, {} failed",
                    report.summary.applied(),
                    report.failures.len(),
                )?;
                // The fields are pub, so an empty failures list is
                // constructible; Display must not panic on it.
                if let Some((index, error)) = report.failures.first() {
                    write!(f, " (first: op #{index} — {error})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HyperionError {}

/// Outcome of a successful [`HyperionDb::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The key was not present before.
    Inserted,
    /// An existing value was overwritten.
    Updated,
}

impl PutOutcome {
    /// `true` if the put created a new key.
    #[inline]
    pub fn was_insert(self) -> bool {
        matches!(self, PutOutcome::Inserted)
    }
}

/// Per-operation tallies of a successfully applied [`WriteBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Puts that created a new key.
    pub inserted: usize,
    /// Puts that overwrote an existing value.
    pub updated: usize,
    /// Deletes that removed a present key.
    pub deleted: usize,
    /// Deletes whose key was absent.
    pub missing: usize,
}

impl BatchSummary {
    /// Total number of operations applied.
    #[inline]
    pub fn applied(&self) -> usize {
        self.inserted + self.updated + self.deleted + self.missing
    }
}

/// Partial-failure report of a [`WriteBatch`]: the summary of everything that
/// *was* applied plus `(op index, error)` for every op that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Tallies of the applied operations.
    pub summary: BatchSummary,
    /// The failed operations, as `(index into the batch, error)` pairs in
    /// batch order.
    pub failures: Vec<(usize, HyperionError)>,
}

// =============================================================================
// partitioners
// =============================================================================

/// Maps keys to shards.  Implementations must be pure functions of the key
/// bytes and shard count: the same key must always land in the same shard.
pub trait Partitioner: Send + Sync {
    /// Returns the shard index for `key`; must be `< shards` (`shards >= 1`).
    fn shard_of(&self, key: &[u8], shards: usize) -> usize;

    /// `true` if `a <= b` implies `shard_of(a) <= shard_of(b)`.  Order
    /// preservation lets range scans prune shards entirely outside the
    /// requested bounds.
    fn is_order_preserving(&self) -> bool {
        false
    }

    /// Short identifier used in diagnostics and benchmark tables.
    fn name(&self) -> &'static str;
}

/// The paper's arena routing: shard by the first key byte, folded round-robin
/// onto the configured shard count (`T_i -> A_{i mod j}`, Section 3.2).
///
/// Faithful to the paper but skew-prone: keys sharing a hot prefix (e.g.
/// `user:`) all serialise on one shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstBytePartitioner;

impl Partitioner for FirstBytePartitioner {
    #[inline]
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        key.first().copied().unwrap_or(0) as usize % shards
    }

    fn name(&self) -> &'static str {
        "first-byte"
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash partitioning: splitmix64 over the key bytes, mapped onto the shard
/// range by Fibonacci multiplication (the top bits of `hash * 2^64 / φ`).
///
/// Spreads hot prefixes uniformly across shards, at the cost of making every
/// scan visit every shard (hashing is not order-preserving).
#[derive(Debug, Clone, Copy, Default)]
pub struct FibonacciPartitioner;

impl FibonacciPartitioner {
    /// The 64-bit hash used for routing (exposed for tests/diagnostics).
    #[inline]
    pub fn hash(key: &[u8]) -> u64 {
        let mut h = 0x51_7c_c1_b7_27_22_0a_95u64 ^ (key.len() as u64);
        let mut chunks = key.chunks_exact(8);
        for chunk in &mut chunks {
            h = splitmix64(h ^ u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            h = splitmix64(h ^ u64::from_le_bytes(buf));
        }
        h
    }
}

impl Partitioner for FibonacciPartitioner {
    #[inline]
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the top bits; the
        // 128-bit product maps the hash uniformly onto [0, shards).
        let fib = Self::hash(key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((fib as u128 * shards as u128) >> 64) as usize
    }

    fn name(&self) -> &'static str {
        "fibonacci-hash"
    }
}

/// Locality-preserving hash partitioning: only the key's first
/// `prefix_len` bytes are hashed for shard routing; the tail never affects
/// the route.
///
/// [`FibonacciPartitioner`] balances hot prefixes but destroys per-shard
/// *prefix density*: hashing the whole key scatters keys that share a long
/// prefix across all shards, so every shard's trie sees ~1 key per prefix —
/// sparse, large, path-compressed containers and ~3× slower writes under
/// uniform load (EXPERIMENTS.md "Partitioners under skew").  Routing on a
/// fixed-length prefix keeps *all* keys sharing that prefix on one shard:
/// the trie below every routed prefix is exactly as dense as in an
/// unsharded map, while distinct prefixes still spread uniformly.
///
/// `prefix_len` is the balance/density dial:
///
/// * it must exceed the length of any hot shared prefix, or that prefix
///   serialises on one shard exactly like [`FirstBytePartitioner`] (e.g.
///   `user:`-style keys need `prefix_len > 5`);
/// * every byte *not* covered loses nothing — it stays on the same shard as
///   its siblings.  The default of 2 covers one full container level
///   (Hyperion consumes 16 bits of key per container), which is where the
///   density loss is paid.
#[derive(Debug, Clone, Copy)]
pub struct PrefixHashPartitioner {
    /// Number of leading key bytes that determine the route.
    pub prefix_len: usize,
}

impl PrefixHashPartitioner {
    /// Routes on the first `prefix_len` key bytes (shorter keys are hashed
    /// whole).
    pub fn new(prefix_len: usize) -> PrefixHashPartitioner {
        PrefixHashPartitioner { prefix_len }
    }
}

impl Default for PrefixHashPartitioner {
    /// Routes on the first two key bytes: one full container level of the
    /// trie, the paper's 16-bit partial key.
    fn default() -> PrefixHashPartitioner {
        PrefixHashPartitioner { prefix_len: 2 }
    }
}

impl Partitioner for PrefixHashPartitioner {
    #[inline]
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        let prefix = &key[..key.len().min(self.prefix_len)];
        let fib = FibonacciPartitioner::hash(prefix).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((fib as u128 * shards as u128) >> 64) as usize
    }

    fn name(&self) -> &'static str {
        "prefix-hash"
    }
}

/// Order-preserving partitioning: the first two key bytes (zero-padded) are
/// read as a big-endian `u16` and mapped proportionally onto the shard range.
///
/// Because shard assignment is monotone in key order, a range scan only
/// touches the shards overlapping its bounds — cross-shard scans stay cheap
/// even with hundreds of shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    #[inline]
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        let hi = key.first().copied().unwrap_or(0) as usize;
        let lo = key.get(1).copied().unwrap_or(0) as usize;
        ((hi << 8 | lo) * shards) >> 16
    }

    fn is_order_preserving(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

// =============================================================================
// builder
// =============================================================================

/// Configures and builds a [`HyperionDb`].
///
/// Every knob in one place (each row links to the authoritative setter):
///
/// | Knob | Setter | Default | What it controls |
/// |------|--------|---------|------------------|
/// | shard count | [`shards`](HyperionDbBuilder::shards) | 16 | number of independently locked tries |
/// | shard config | [`config`](HyperionDbBuilder::config) | [`HyperionConfig::default`] | per-shard trie tuning (thresholds, jumps, …) |
/// | routing | [`partitioner`](HyperionDbBuilder::partitioner) | [`FirstBytePartitioner`] | key-to-shard assignment |
/// | scan chunk size | [`scan_chunk_size`](HyperionDbBuilder::scan_chunk_size) | [`DEFAULT_SCAN_CHUNK`] | entries buffered per shard per lock acquisition |
/// | shortcut capacity | [`shortcut_capacity`](HyperionDbBuilder::shortcut_capacity) | [`HyperionConfig::shortcut_capacity`] | per-shard hashed shortcut entries (0 = off) |
/// | scan backend | [`scan_backend`](HyperionDbBuilder::scan_backend) | [`ScanBackend::Scalar`] | container scan kernel (scalar or SIMD key lanes) |
///
/// Server-side limits (`max_queue_depth`, connection caps, deadlines) live on
/// [`ServerConfig`](../../hyperion_server/struct.ServerConfig.html), not here:
/// they bound the network front end, not the store.
pub struct HyperionDbBuilder {
    shards: usize,
    config: HyperionConfig,
    partitioner: Arc<dyn Partitioner>,
    scan_chunk: usize,
}

impl Default for HyperionDbBuilder {
    fn default() -> Self {
        HyperionDbBuilder {
            shards: 16,
            config: HyperionConfig::default(),
            partitioner: Arc::new(FirstBytePartitioner),
            scan_chunk: DEFAULT_SCAN_CHUNK,
        }
    }
}

impl HyperionDbBuilder {
    /// Number of shards (clamped to `1..=`[`MAX_SHARDS`]).  Default: 16.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, MAX_SHARDS);
        self
    }

    /// Per-shard trie configuration.  Default: [`HyperionConfig::default`].
    pub fn config(mut self, config: HyperionConfig) -> Self {
        self.config = config;
        self
    }

    /// Key-to-shard routing.  Default: [`FirstBytePartitioner`] (paper
    /// fidelity).
    pub fn partitioner<P: Partitioner + 'static>(mut self, partitioner: P) -> Self {
        self.partitioner = Arc::new(partitioner);
        self
    }

    /// Shared routing instance (for partitioners carrying state).
    pub fn partitioner_arc(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Entries a [`DbScan`] buffers per shard between lock acquisitions
    /// (clamped to `>= 1`).  Default: [`DEFAULT_SCAN_CHUNK`].
    pub fn scan_chunk_size(mut self, chunk: usize) -> Self {
        self.scan_chunk = chunk.max(1);
        self
    }

    /// Deprecated alias of [`scan_chunk_size`](HyperionDbBuilder::scan_chunk_size).
    #[deprecated(since = "0.3.0", note = "renamed to `scan_chunk_size`")]
    pub fn scan_chunk(self, chunk: usize) -> Self {
        self.scan_chunk_size(chunk)
    }

    /// Capacity of each shard's hashed shortcut layer in entries (0 turns
    /// the shortcut off).  Shorthand for setting
    /// [`HyperionConfig::shortcut_capacity`] on the shard configuration.
    pub fn shortcut_capacity(mut self, capacity: usize) -> Self {
        self.config.shortcut_capacity = capacity;
        self
    }

    /// Container scan backend for every shard (see
    /// [`ScanBackend`]).  Shorthand for setting
    /// [`HyperionConfig::scan_backend`] on the shard configuration.
    /// Default: [`ScanBackend::Scalar`].
    pub fn scan_backend(mut self, backend: ScanBackend) -> Self {
        self.config.scan_backend = backend;
        self
    }

    /// Builds the database.
    pub fn build(self) -> HyperionDb {
        // Install the quiet hook up front (not only on the first optimistic
        // read): a write-only chaos phase must not spray backtraces either.
        install_quiet_panic_hook();
        let mut shards = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            shards.push(Shard::new(HyperionMap::with_config(self.config)));
        }
        HyperionDb {
            shards,
            config: self.config,
            partitioner: self.partitioner,
            scan_chunk: self.scan_chunk,
            scratch: Mutex::new(Vec::new()),
            read_counters: ReadCounters::default(),
        }
    }
}

// =============================================================================
// shards and optimistic reads
// =============================================================================

/// One shard: the trie plus its writer lock.  The map lives *outside* the
/// mutex so optimistic readers can reach it without locking; all mutable
/// access still goes through [`ShardGuard`], which holds the lock.
struct Shard {
    map: UnsafeCell<HyperionMap>,
    lock: Mutex<()>,
    /// Times [`lock_recover`] found this shard poisoned and revived it.
    recoveries: std::sync::atomic::AtomicU64,
}

// SAFETY: `HyperionMap` is `Send` (owned arena memory, no thread affinity).
// It is not `Sync` on its own — `Shard` makes the sharing sound by protocol:
// every `&mut` access goes through `ShardGuard` (mutex held), and the only
// lock-free access is the optimistic read path, whose results are discarded
// unless the shard's seqlock proves no writer ran (module docs, "Locking,
// optimistic reads and poisoning").
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    fn new(map: HyperionMap) -> Shard {
        Shard {
            map: UnsafeCell::new(map),
            lock: Mutex::new(()),
            recoveries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shared view used by optimistic readers.
    ///
    /// # Safety
    ///
    /// The caller must either hold the lock or treat every result derived
    /// from the reference as unvalidated until the seqlock stamp taken
    /// *before* the accesses is revalidated.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    unsafe fn map_unlocked(&self) -> &HyperionMap {
        &*self.map.get()
    }

    /// Wraps an acquired lock token into a guard with map access.
    fn guard<'a>(&'a self, lock: MutexGuard<'a, ()>) -> ShardGuard<'a> {
        ShardGuard {
            map: self.map.get(),
            _lock: lock,
        }
    }
}

/// Locked access to one shard's map; derefs to [`HyperionMap`] so call sites
/// read like the plain `MutexGuard<HyperionMap>` this replaces.
struct ShardGuard<'a> {
    map: *mut HyperionMap,
    _lock: MutexGuard<'a, ()>,
}

impl Deref for ShardGuard<'_> {
    type Target = HyperionMap;

    #[inline]
    fn deref(&self) -> &HyperionMap {
        // SAFETY: the lock is held for the guard's lifetime, so no other
        // mutable access exists (optimistic readers hold only shared views).
        unsafe { &*self.map }
    }
}

impl DerefMut for ShardGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut HyperionMap {
        // SAFETY: as above; optimistic readers racing this `&mut` never let
        // unvalidated results escape.
        unsafe { &mut *self.map }
    }
}

/// Bounded number of lock-free attempts before a read falls back to the
/// shard mutex.  Collisions are rare (a writer must overlap the attempt), so
/// a small bound keeps worst-case latency tight without giving up the fast
/// path on a single unlucky overlap.
const OPTIMISTIC_ATTEMPTS: usize = 3;

thread_local! {
    /// `true` while this thread executes an optimistic read attempt; the
    /// chained panic hook suppresses output for these panics (they are an
    /// expected consequence of reading mid-mutation state and are either
    /// retried or re-raised after validation).
    static IN_OPTIMISTIC: Cell<bool> = const { Cell::new(false) };
}

/// Chains a panic hook (once, process-wide) that stays silent for panics
/// unwinding out of optimistic read attempts.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_OPTIMISTIC.with(|flag| flag.get()) {
                return;
            }
            // Injected faults are expected, caught and converted (or
            // recovered from) upstream; a chaos run should not drown the
            // console in backtraces for them.
            #[cfg(feature = "failpoints")]
            {
                let p = info.payload();
                let injected_message = |s: &str| s.starts_with("failpoint '");
                if p.downcast_ref::<hyperion_mem::failpoint::AllocFailure>()
                    .is_some()
                    || p.downcast_ref::<hyperion_mem::failpoint::InjectedError>()
                        .is_some()
                    || p.downcast_ref::<&str>()
                        .is_some_and(|s| injected_message(s))
                    || p.downcast_ref::<String>()
                        .is_some_and(|s| injected_message(s))
                {
                    return;
                }
            }
            previous(info);
        }));
    });
}

// =============================================================================
// the database
// =============================================================================

/// A thread-safe, sharded Hyperion store with batched operations, pluggable
/// partitioning, typed errors and streaming merged scans.  See the
/// [module documentation](self) for an overview.
pub struct HyperionDb {
    shards: Vec<Shard>,
    /// The per-shard configuration every shard was built with; kept so
    /// [`HyperionDb::stats`] can report build-time choices (scan backend).
    config: HyperionConfig,
    partitioner: Arc<dyn Partitioner>,
    scan_chunk: usize,
    /// Reusable per-shard index groups for [`HyperionDb::apply`] /
    /// [`HyperionDb::multi_get`]: one `Vec<usize>` per shard, taken under a
    /// brief lock so repeated batch calls do not reallocate the grouping
    /// scaffolding.  Concurrent batch calls fall back to a fresh allocation.
    scratch: Mutex<Vec<Vec<usize>>>,
    /// Optimistic-read outcome counters (hits / retries / mutex fallbacks),
    /// exposed via [`HyperionDb::stats`] and the server's STATS opcode.
    read_counters: ReadCounters,
}

/// Recovers the guard even if another thread panicked while holding the lock;
/// used by aggregates and scans (see the module docs on poisoning).  Recovery
/// is restorative, not just tolerant: the poison flag is cleared so later
/// lockers stop paying this path, and the shard's seqlock — left odd by a
/// writer that died mid-mutation — is forced even again so optimistic readers
/// resume validating.
fn lock_recover(shard: &Shard) -> ShardGuard<'_> {
    let lock = shard.lock.lock().unwrap_or_else(|poisoned| {
        shard.lock.clear_poison();
        let lock = poisoned.into_inner();
        // SAFETY: the lock is held; `force_quiesce` is the designated
        // exclusive-access repair hook for an abandoned mutation span.
        unsafe { shard.map_unlocked() }.seq.force_quiesce();
        shard
            .recoveries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        lock
    });
    shard.guard(lock)
}

impl HyperionDb {
    /// Returns a builder with the default configuration.
    pub fn builder() -> HyperionDbBuilder {
        HyperionDbBuilder::default()
    }

    /// Convenience constructor: `shards` shards routed by the paper's
    /// [`FirstBytePartitioner`].
    pub fn new(shards: usize, config: HyperionConfig) -> Self {
        HyperionDb::builder().shards(shards).config(config).build()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured partitioner.
    pub fn partitioner(&self) -> &dyn Partitioner {
        &*self.partitioner
    }

    /// Entries buffered per shard by each scan chunk refill.
    pub fn scan_chunk(&self) -> usize {
        self.scan_chunk
    }

    /// The shard index `key` routes to.
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let shard = self.partitioner.shard_of(key, self.shards.len());
        debug_assert!(shard < self.shards.len(), "partitioner out of range");
        shard.min(self.shards.len() - 1)
    }

    #[inline]
    fn check_key(key: &[u8]) -> Result<(), HyperionError> {
        if key.len() > MAX_KEY_LEN {
            return Err(HyperionError::KeyTooLong {
                len: key.len(),
                max: MAX_KEY_LEN,
            });
        }
        Ok(())
    }

    /// Locks shard `index` for the typed API, reporting poisoning.
    fn lock_shard(&self, index: usize) -> Result<ShardGuard<'_>, HyperionError> {
        let shard = &self.shards[index];
        let lock = shard
            .lock
            .lock()
            .map_err(|_| HyperionError::ShardPoisoned { shard: index })?;
        Ok(shard.guard(lock))
    }

    /// Runs `read` against shard `index` lock-free under the seqlock
    /// protocol: snapshot the version, run, revalidate.  Returns `None` after
    /// [`OPTIMISTIC_ATTEMPTS`] collisions with writers (caller falls back to
    /// the mutex).  `read` must be re-runnable (`Fn`) and must not leak
    /// side effects from failed attempts — it sees possibly-torn state.
    fn try_optimistic<R>(
        &self,
        index: usize,
        read: &(impl Fn(&HyperionMap) -> R + ?Sized),
    ) -> Option<R> {
        install_quiet_panic_hook();
        // SAFETY: unvalidated shared view; every derived result below is
        // dropped unless `read_validate` proves no writer overlapped.
        let map = unsafe { self.shards[index].map_unlocked() };
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let Some(stamp) = map.seq.read_begin() else {
                // A writer is mid-mutation (or died there); count the wasted
                // attempt and re-check — writers are short.
                self.read_counters.retry();
                std::hint::spin_loop();
                continue;
            };
            let outcome = shortcut::suppress_publish(|| {
                IN_OPTIMISTIC.with(|flag| flag.set(true));
                let outcome = catch_unwind(AssertUnwindSafe(|| read(map)));
                IN_OPTIMISTIC.with(|flag| flag.set(false));
                outcome
            });
            if map.seq.read_validate(stamp) {
                match outcome {
                    Ok(result) => {
                        self.read_counters.hit();
                        return Some(result);
                    }
                    // No writer ran, yet the read engine panicked: that is a
                    // genuine bug, not a torn snapshot.  Re-raise it.
                    Err(payload) => resume_unwind(payload),
                }
            }
            self.read_counters.retry();
        }
        None
    }

    /// Optimistic read with a typed-error mutex fallback ([`lock_shard`]
    /// semantics: poisoning is reported, not recovered).
    fn read_shard<R>(
        &self,
        index: usize,
        read: impl Fn(&HyperionMap) -> R,
    ) -> Result<R, HyperionError> {
        if let Some(result) = self.try_optimistic(index, &read) {
            return Ok(result);
        }
        self.read_counters.fallback();
        let guard = self.lock_shard(index)?;
        Ok(read(&guard))
    }

    /// Optimistic read with a recovering mutex fallback ([`lock_recover`]
    /// semantics: poisoned shards are revived).
    fn read_shard_recovering<R>(&self, index: usize, read: impl Fn(&HyperionMap) -> R) -> R {
        if let Some(result) = self.try_optimistic(index, &read) {
            return result;
        }
        self.read_counters.fallback();
        read(&lock_recover(&self.shards[index]))
    }

    /// One versioned snapshot of every statistics surface the engine keeps:
    /// the hashed-shortcut counters, the optimistic-read outcomes, the
    /// structural trie counters (all aggregated across shards), the poison
    /// recoveries, the fault-injection trip total and the configured scan
    /// backend.  This is the single stats entry point — the server's STATS
    /// verb and the benchmarks build on it.
    pub fn stats(&self) -> DbStats {
        let mut shortcut = ShortcutStats::default();
        let mut counters = TrieCounters::default();
        for i in 0..self.shards.len() {
            let (s, c) =
                self.read_shard_recovering(i, |map| (map.shortcut_stats(), map.counters()));
            shortcut.merge(&s);
            counters.merge(&c);
        }
        DbStats {
            version: DB_STATS_VERSION,
            scan_backend: self.config.scan_backend,
            shortcut,
            optimistic: self.read_counters.snapshot(),
            counters,
            poison_recoveries: self.poison_recoveries(),
            #[cfg(feature = "failpoints")]
            failpoint_trips: crate::failpoint::total_trips(),
            #[cfg(not(feature = "failpoints"))]
            failpoint_trips: 0,
        }
    }

    /// Snapshot of the optimistic-read outcome counters (process lifetime,
    /// all shards).
    #[deprecated(since = "0.3.0", note = "use `HyperionDb::stats().optimistic`")]
    pub fn optimistic_read_stats(&self) -> OptimisticReadStats {
        self.read_counters.snapshot()
    }

    /// Revives every currently poisoned shard (clears the poison flag and
    /// re-evens the abandoned seqlock span) and returns how many were
    /// recovered.  Cheap when nothing is poisoned: only the mutex poison
    /// flags are inspected.  The server's workers call this after catching a
    /// writer panic so one crashed request never wedges a shard.
    pub fn recover_poisoned(&self) -> usize {
        let mut recovered = 0;
        for shard in &self.shards {
            if shard.lock.is_poisoned() {
                drop(lock_recover(shard));
                recovered += 1;
            }
        }
        recovered
    }

    /// Total shard poison recoveries performed over this database's lifetime
    /// (by [`HyperionDb::recover_poisoned`], the recovering read fallback and
    /// the recovering aggregates).
    pub fn poison_recoveries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.recoveries.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    /// Runs the deep structural validator on every shard under the shard
    /// lock (recovering poisoned shards first).  Test/chaos-harness hook.
    #[doc(hidden)]
    pub fn validate_structure(&self) -> Result<(), String> {
        for (index, shard) in self.shards.iter().enumerate() {
            lock_recover(shard)
                .validate_structure()
                .map_err(|e| format!("shard {index}: {e}"))?;
        }
        Ok(())
    }

    /// Runs a mutation against a locked shard, converting injected failpoint
    /// unwinds ([`hyperion_mem::failpoint::AllocFailure`] /
    /// [`hyperion_mem::failpoint::InjectedError`]) into typed errors.  The
    /// guard stays alive across the catch, so the mutex is *not* poisoned for
    /// these simulated transient faults — the shard is re-quiesced and stays
    /// usable.  Any other panic (including injected `Action::Panic` crashes)
    /// keeps unwinding and poisons the shard like a real writer crash.
    #[cfg(feature = "failpoints")]
    fn mutate<R>(
        guard: &mut ShardGuard<'_>,
        shard: usize,
        f: impl FnOnce(&mut HyperionMap) -> R,
    ) -> Result<R, HyperionError> {
        match catch_unwind(AssertUnwindSafe(|| f(guard))) {
            Ok(result) => Ok(result),
            Err(payload) => {
                let error = if payload
                    .downcast_ref::<hyperion_mem::failpoint::AllocFailure>()
                    .is_some()
                {
                    HyperionError::AllocFailed { shard }
                } else if payload
                    .downcast_ref::<hyperion_mem::failpoint::InjectedError>()
                    .is_some()
                {
                    HyperionError::Injected { shard }
                } else {
                    resume_unwind(payload);
                };
                // The unwind left the mutation span odd; the lock is held, so
                // this is the designated exclusive-access repair point.
                guard.seq.force_quiesce();
                Err(error)
            }
        }
    }

    /// `failpoints` off: a plain call, zero added cost.
    #[cfg(not(feature = "failpoints"))]
    #[inline(always)]
    fn mutate<R>(
        guard: &mut ShardGuard<'_>,
        _shard: usize,
        f: impl FnOnce(&mut HyperionMap) -> R,
    ) -> Result<R, HyperionError> {
        Ok(f(guard))
    }

    // =========================================================================
    // typed point operations
    // =========================================================================

    /// Inserts or updates a key.
    pub fn put(&self, key: &[u8], value: u64) -> Result<PutOutcome, HyperionError> {
        Self::check_key(key)?;
        let shard = self.shard_of(key);
        let mut guard = self.lock_shard(shard)?;
        match Self::mutate(&mut guard, shard, |map| map.try_put(key, value))? {
            Ok(true) => Ok(PutOutcome::Inserted),
            Ok(false) => Ok(PutOutcome::Updated),
            Err(WriteError::StructuralLoop) => Err(HyperionError::StructuralLoop { shard }),
        }
    }

    /// Looks up a key, lock-free in the common case (see the module docs on
    /// optimistic reads).  Keys longer than [`MAX_KEY_LEN`] can never have
    /// been inserted, so they simply resolve to `None`.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>, HyperionError> {
        if key.len() > MAX_KEY_LEN {
            return Ok(None);
        }
        self.read_shard(self.shard_of(key), |map| map.get(key))
    }

    /// Removes a key.  Returns `true` if it was present.
    pub fn delete(&self, key: &[u8]) -> Result<bool, HyperionError> {
        if key.len() > MAX_KEY_LEN {
            return Ok(false);
        }
        let shard = self.shard_of(key);
        let mut guard = self.lock_shard(shard)?;
        Self::mutate(&mut guard, shard, |map| map.delete(key))
    }

    // =========================================================================
    // batched operations
    // =========================================================================

    /// Takes the reusable per-shard grouping buffers (cleared, sized to the
    /// shard count), or allocates fresh ones if another batch holds them.
    fn take_scratch(&self) -> Vec<Vec<usize>> {
        let mut groups = match self.scratch.try_lock() {
            Ok(mut scratch) => std::mem::take(&mut *scratch),
            Err(_) => Vec::new(),
        };
        groups.resize_with(self.shards.len(), Vec::new);
        for group in &mut groups {
            group.clear();
        }
        groups
    }

    /// Returns grouping buffers to the scratch slot (keeping their
    /// capacity) unless another batch already replenished it.
    fn return_scratch(&self, groups: Vec<Vec<usize>>) {
        if let Ok(mut scratch) = self.scratch.try_lock() {
            if scratch.is_empty() {
                *scratch = groups;
            }
        }
    }

    /// Looks up many keys with one lock acquisition *and one resume-scan
    /// descent group* per shard instead of one full descent per key:
    /// each shard's probes route through [`HyperionMap::get_many`], which
    /// sorts them in transformed key space and resumes its container scans
    /// across consecutive keys (the read-side mirror of `put_many`).  Each
    /// per-shard batch runs optimistically first, like [`HyperionDb::get`].
    /// `results[i]` corresponds to `keys[i]`.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<u64>>, HyperionError> {
        let mut results = vec![None; keys.len()];
        let mut groups = self.take_scratch();
        for (i, key) in keys.iter().enumerate() {
            if key.len() <= MAX_KEY_LEN {
                groups[self.shard_of(key)].push(i);
            }
        }
        let mut shard_keys: Vec<&[u8]> = Vec::new();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&i| keys[i]));
            let values = match self.read_shard(shard, |map| map.get_many(&shard_keys)) {
                Ok(values) => values,
                Err(e) => {
                    self.return_scratch(groups);
                    return Err(e);
                }
            };
            for (&i, value) in group.iter().zip(values) {
                results[i] = value;
            }
        }
        self.return_scratch(groups);
        Ok(results)
    }

    /// Removes many keys with one lock acquisition per involved shard,
    /// mirroring [`HyperionDb::multi_get`]: each shard's keys route through
    /// [`HyperionMap::delete_many`], which applies them in sorted order for
    /// container-cache locality.  `results[i]` is `true` iff `keys[i]` was
    /// present; keys longer than [`MAX_KEY_LEN`] can never have been
    /// inserted, so they simply resolve to `false`.  [`WriteBatch`] delete
    /// runs flow through the same per-shard path (see [`HyperionDb::apply`]).
    pub fn delete_many(&self, keys: &[&[u8]]) -> Result<Vec<bool>, HyperionError> {
        let mut results = vec![false; keys.len()];
        let mut groups = self.take_scratch();
        for (i, key) in keys.iter().enumerate() {
            if key.len() <= MAX_KEY_LEN {
                groups[self.shard_of(key)].push(i);
            }
        }
        let mut shard_keys: Vec<&[u8]> = Vec::new();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard = match self.lock_shard(shard) {
                Ok(guard) => guard,
                Err(e) => {
                    self.return_scratch(groups);
                    return Err(e);
                }
            };
            shard_keys.clear();
            shard_keys.extend(group.iter().map(|&i| keys[i]));
            let removed = match Self::mutate(&mut guard, shard, |map| map.delete_many(&shard_keys))
            {
                Ok(removed) => removed,
                Err(e) => {
                    drop(guard);
                    self.return_scratch(groups);
                    return Err(e);
                }
            };
            for (&i, removed) in group.iter().zip(removed) {
                results[i] = removed;
            }
        }
        self.return_scratch(groups);
        Ok(results)
    }

    /// Applies a [`WriteBatch`], acquiring each involved shard's lock exactly
    /// once.  Operations on the same key keep their batch order (a key always
    /// routes to one shard, and per-shard application preserves batch order).
    ///
    /// On success returns the [`BatchSummary`].  If some operations fail
    /// (over-long keys, poisoned shards) the rest are still applied and the
    /// error carries a [`BatchReport`] with per-op indices.
    pub fn apply(&self, batch: &WriteBatch) -> Result<BatchSummary, HyperionError> {
        let mut summary = BatchSummary::default();
        let mut failures: Vec<(usize, HyperionError)> = Vec::new();
        let mut groups = self.take_scratch();
        for (i, op) in batch.ops.iter().enumerate() {
            match Self::check_key(op.key()) {
                Ok(()) => groups[self.shard_of(op.key())].push(i),
                Err(e) => failures.push((i, e)),
            }
        }
        for (shard, group) in groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard = match self.lock_shard(shard) {
                Ok(guard) => guard,
                Err(e) => {
                    failures.extend(group.iter().map(|&i| (i, e.clone())));
                    continue;
                }
            };
            // Stable-sort the shard's ops by key: ops on the same key keep
            // batch order (so the final state matches sequential
            // application), while ops on distinct keys commute.  Runs of
            // puts on strictly distinct keys then flow through the write
            // engine's sorted batch path — one locality-aware descent per
            // run instead of one full descent per key.
            group.sort_by(|&a, &b| batch.ops[a].key().cmp(batch.ops[b].key()));
            let mut at = 0usize;
            while at < group.len() {
                let mut run = at;
                while run < group.len() {
                    let BatchOp::Put { key, .. } = &batch.ops[group[run]] else {
                        break;
                    };
                    // A duplicate key ends the run: its ops must apply (and
                    // count) in batch order, one at a time.
                    if run > at && key.as_slice() <= batch.ops[group[run - 1]].key() {
                        break;
                    }
                    run += 1;
                }
                if run - at >= 2 {
                    let pairs: Vec<(&[u8], u64)> = group[at..run]
                        .iter()
                        .map(|&i| match &batch.ops[i] {
                            BatchOp::Put { key, value } => (key.as_slice(), *value),
                            BatchOp::Delete { .. } => unreachable!("run holds puts only"),
                        })
                        .collect();
                    match Self::mutate(&mut guard, shard, |map| {
                        map.try_put_many(pairs.iter().copied())
                    }) {
                        Ok(Ok(inserted)) => {
                            summary.inserted += inserted;
                            summary.updated += (run - at) - inserted;
                        }
                        Ok(Err(WriteError::StructuralLoop)) => {
                            let e = HyperionError::StructuralLoop { shard };
                            failures.extend(group[at..run].iter().map(|&i| (i, e.clone())));
                        }
                        Err(e) => {
                            failures.extend(group[at..run].iter().map(|&i| (i, e.clone())));
                        }
                    }
                    at = run;
                    continue;
                }
                // Coalesce runs of deletes the same way: one
                // `HyperionMap::delete_many` call per run, under the one lock
                // this shard already holds.  Duplicate keys are fine — the
                // group is stable-sorted and `delete_many` preserves arrival
                // order among equals, so outcomes match sequential deletes.
                let mut del_run = at;
                while del_run < group.len()
                    && matches!(&batch.ops[group[del_run]], BatchOp::Delete { .. })
                {
                    del_run += 1;
                }
                if del_run - at >= 2 {
                    let keys: Vec<&[u8]> = group[at..del_run]
                        .iter()
                        .map(|&i| batch.ops[i].key())
                        .collect();
                    match Self::mutate(&mut guard, shard, |map| map.delete_many(&keys)) {
                        Ok(removed) => {
                            for removed in removed {
                                if removed {
                                    summary.deleted += 1;
                                } else {
                                    summary.missing += 1;
                                }
                            }
                        }
                        Err(e) => {
                            failures.extend(group[at..del_run].iter().map(|&i| (i, e.clone())));
                        }
                    }
                    at = del_run;
                    continue;
                }
                let i = group[at];
                match &batch.ops[i] {
                    BatchOp::Put { key, value } => {
                        match Self::mutate(&mut guard, shard, |map| map.try_put(key, *value)) {
                            Ok(Ok(true)) => summary.inserted += 1,
                            Ok(Ok(false)) => summary.updated += 1,
                            Ok(Err(WriteError::StructuralLoop)) => {
                                failures.push((i, HyperionError::StructuralLoop { shard }));
                            }
                            Err(e) => failures.push((i, e)),
                        }
                    }
                    BatchOp::Delete { key } => {
                        match Self::mutate(&mut guard, shard, |map| map.delete(key)) {
                            Ok(true) => summary.deleted += 1,
                            Ok(false) => summary.missing += 1,
                            Err(e) => failures.push((i, e)),
                        }
                    }
                }
                at += 1;
            }
        }
        self.return_scratch(groups);
        if failures.is_empty() {
            Ok(summary)
        } else {
            failures.sort_by_key(|(i, _)| *i);
            Err(HyperionError::BatchFailed(BatchReport {
                summary,
                failures,
            }))
        }
    }

    // =========================================================================
    // aggregates (recovering; see module docs on poisoning)
    // =========================================================================

    /// Total number of keys across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard_recovering(i, |map| map.len()))
            .sum()
    }

    /// `true` if no shard stores any key.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.read_shard_recovering(i, |map| map.is_empty()))
    }

    /// Total logical memory footprint across all shards.
    pub fn footprint_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard_recovering(i, |map| map.footprint_bytes()))
            .sum()
    }

    /// Per-shard key counts — the load-balance fingerprint of the configured
    /// partitioner.
    pub fn shard_lens(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| self.read_shard_recovering(i, |map| map.len()))
            .collect()
    }

    /// Aggregated hashed-shortcut counters across all shards (all zeros when
    /// the shortcut is disabled).
    #[deprecated(since = "0.3.0", note = "use `HyperionDb::stats().shortcut`")]
    pub fn shortcut_stats(&self) -> ShortcutStats {
        let mut total = ShortcutStats::default();
        for i in 0..self.shards.len() {
            total.merge(&self.read_shard_recovering(i, |map| map.shortcut_stats()));
        }
        total
    }

    // =========================================================================
    // streaming merged scans
    // =========================================================================

    /// Globally ordered iteration over all key/value pairs.
    ///
    /// The scan is *streaming*: each shard contributes a bounded chunk
    /// ([`HyperionDb::scan_chunk`] entries) that is refilled hand-over-hand
    /// under a brief lock, so memory stays `O(shards × chunk)` no matter how
    /// large the database is.  Keys written behind the scan's progress point
    /// after their chunk was taken are not observed (chunk-granular snapshot
    /// semantics).
    pub fn iter(&self) -> DbScan<'_> {
        DbScan::new(self, Vec::new(), false, UpperBound::Unbounded)
    }

    /// Globally ordered iteration over the keys within `bounds` (streaming,
    /// see [`HyperionDb::iter`]).  With an order-preserving partitioner only
    /// the shards overlapping the bounds are visited.
    pub fn range<K, R>(&self, bounds: R) -> DbScan<'_>
    where
        K: AsRef<[u8]> + ?Sized,
        R: RangeBounds<K>,
    {
        let (start, exclusive) = match bounds.start_bound() {
            Bound::Unbounded => (Vec::new(), false),
            Bound::Included(s) => (s.as_ref().to_vec(), false),
            Bound::Excluded(s) => (s.as_ref().to_vec(), true),
        };
        let end = match bounds.end_bound() {
            Bound::Unbounded => UpperBound::Unbounded,
            Bound::Excluded(e) => UpperBound::Excluded(e.as_ref().to_vec()),
            Bound::Included(e) => UpperBound::Included(e.as_ref().to_vec()),
        };
        DbScan::new(self, start, exclusive, end)
    }

    /// Globally ordered iteration over all keys starting with `prefix`
    /// (streaming, see [`HyperionDb::iter`]).
    pub fn prefix(&self, prefix: &[u8]) -> DbScan<'_> {
        let end = match prefix_upper_bound(prefix) {
            Some(end) => UpperBound::Excluded(end),
            None => UpperBound::Unbounded,
        };
        DbScan::new(self, prefix.to_vec(), false, end)
    }

    /// Globally ordered iteration over all key/value pairs in *descending*
    /// key order (streaming like [`HyperionDb::iter`]; every shard walks its
    /// trie backward and the merge runs max-heap-first).
    pub fn iter_rev(&self) -> DbScan<'_> {
        DbScan::new_rev(self, UpperBound::Unbounded, LowerBound::Unbounded)
    }

    /// Globally ordered iteration over the keys within `bounds` in
    /// *descending* key order.  The reverse walk starts at the upper bound
    /// and stops below the lower one; with an order-preserving partitioner
    /// only the shards overlapping the bounds are visited, exactly like the
    /// forward [`HyperionDb::range`].
    pub fn range_rev<K, R>(&self, bounds: R) -> DbScan<'_>
    where
        K: AsRef<[u8]> + ?Sized,
        R: RangeBounds<K>,
    {
        let lower = match bounds.start_bound() {
            Bound::Unbounded => LowerBound::Unbounded,
            Bound::Included(s) => LowerBound::Included(s.as_ref().to_vec()),
            Bound::Excluded(s) => LowerBound::Excluded(s.as_ref().to_vec()),
        };
        let upper = match bounds.end_bound() {
            Bound::Unbounded => UpperBound::Unbounded,
            Bound::Excluded(e) => UpperBound::Excluded(e.as_ref().to_vec()),
            Bound::Included(e) => UpperBound::Included(e.as_ref().to_vec()),
        };
        DbScan::new_rev(self, upper, lower)
    }

    /// Globally ordered iteration over all keys starting with `prefix`, in
    /// *descending* key order (streaming, see [`HyperionDb::iter_rev`]).
    pub fn prefix_rev(&self, prefix: &[u8]) -> DbScan<'_> {
        let upper = match prefix_upper_bound(prefix) {
            Some(end) => UpperBound::Excluded(end),
            None => UpperBound::Unbounded,
        };
        DbScan::new_rev(self, upper, LowerBound::Included(prefix.to_vec()))
    }

    /// Invokes `f` for every key/value pair in ascending key order until `f`
    /// returns `false`.  Thin adapter over [`HyperionDb::iter`].
    pub fn for_each<F: FnMut(&[u8], u64) -> bool>(&self, f: &mut F) -> bool {
        for (key, value) in self.iter() {
            if !f(&key, value) {
                return false;
            }
        }
        true
    }

    // Recovering variants backing the capability-trait impls and the
    // deprecated `ConcurrentHyperion` shim (bool/Option surface).  The key
    // length contract is shared with the typed API: if any write path
    // accepted over-long keys, the typed `get`/`delete` (which treat them as
    // impossible) could neither see nor remove them — and the stack-depth
    // bound MAX_KEY_LEN exists for would be bypassed.  The bool surface has
    // no error channel and silently dropping a write would read as "updated",
    // so a violation panics (before any lock is taken — no poisoning).

    pub(crate) fn put_recovering(&self, key: &[u8], value: u64) -> bool {
        assert!(
            key.len() <= MAX_KEY_LEN,
            "key of {} bytes exceeds MAX_KEY_LEN ({MAX_KEY_LEN}); \
             use HyperionDb::put for a typed error instead",
            key.len()
        );
        lock_recover(&self.shards[self.shard_of(key)]).put(key, value)
    }

    pub(crate) fn get_recovering(&self, key: &[u8]) -> Option<u64> {
        self.read_shard_recovering(self.shard_of(key), |map| map.get(key))
    }

    pub(crate) fn delete_recovering(&self, key: &[u8]) -> bool {
        lock_recover(&self.shards[self.shard_of(key)]).delete(key)
    }
}

impl fmt::Debug for HyperionDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HyperionDb")
            .field("shards", &self.shards.len())
            .field("partitioner", &self.partitioner.name())
            .field("scan_chunk", &self.scan_chunk)
            .finish()
    }
}

// =============================================================================
// write batches
// =============================================================================

/// One operation of a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchOp {
    Put { key: Vec<u8>, value: u64 },
    Delete { key: Vec<u8> },
}

impl BatchOp {
    #[inline]
    fn key(&self) -> &[u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } => key,
        }
    }
}

/// A group of put/delete operations applied with one lock acquisition per
/// involved shard (see [`HyperionDb::apply`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Creates an empty batch with capacity for `n` operations.
    pub fn with_capacity(n: usize) -> WriteBatch {
        WriteBatch {
            ops: Vec::with_capacity(n),
        }
    }

    /// Queues an insert/update.
    pub fn put(&mut self, key: &[u8], value: u64) -> &mut WriteBatch {
        self.ops.push(BatchOp::Put {
            key: key.to_vec(),
            value,
        });
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut WriteBatch {
        self.ops.push(BatchOp::Delete { key: key.to_vec() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Removes all queued operations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

// =============================================================================
// streaming merged scan
// =============================================================================

/// Refill state of one shard's stream within a [`DbScan`].
enum StreamState {
    /// The next refill seeks to `seek` and resumes in the scan direction.
    /// `None` seeks to the far end of the shard in that direction (only used
    /// by a reverse scan's initial unbounded seek; forward scans always carry
    /// a start key, the empty key meaning "everything").  When `inclusive`
    /// is false the walk resumes *past* the seek key — the hand-over-hand
    /// resume protocol after a chunk's last buffered key, via
    /// [`crate::Cursor::seek_exclusive`] / [`crate::Cursor::seek_for_pred_exclusive`].
    Pending {
        seek: Option<Vec<u8>>,
        inclusive: bool,
    },
    /// The shard has no further in-bound keys.
    Exhausted,
}

/// One shard's contribution to the merge: a bounded buffer of pre-fetched
/// entries plus the resume state for the next refill.
struct ShardStream {
    shard: usize,
    buf: VecDeque<(Vec<u8>, u64)>,
    state: StreamState,
}

/// The merge frontier of a [`DbScan`]: a min-heap for ascending scans, a
/// max-heap for descending ones.  Keys are unique across shards (each key
/// routes to exactly one shard), so `(key, stream, value)` ordering is total.
enum MergeHeap {
    Min(BinaryHeap<Reverse<(Vec<u8>, usize, u64)>>),
    Max(BinaryHeap<(Vec<u8>, usize, u64)>),
}

impl MergeHeap {
    fn with_capacity(reverse: bool, capacity: usize) -> MergeHeap {
        if reverse {
            MergeHeap::Max(BinaryHeap::with_capacity(capacity))
        } else {
            MergeHeap::Min(BinaryHeap::with_capacity(capacity))
        }
    }

    #[inline]
    fn push(&mut self, key: Vec<u8>, stream: usize, value: u64) {
        match self {
            MergeHeap::Min(heap) => heap.push(Reverse((key, stream, value))),
            MergeHeap::Max(heap) => heap.push((key, stream, value)),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Vec<u8>, usize, u64)> {
        match self {
            MergeHeap::Min(heap) => heap.pop().map(|Reverse(entry)| entry),
            MergeHeap::Max(heap) => heap.pop(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            MergeHeap::Min(heap) => heap.len(),
            MergeHeap::Max(heap) => heap.len(),
        }
    }
}

/// A streaming, globally ordered k-way merge over the shards of a
/// [`HyperionDb`]; returned by [`HyperionDb::iter`], [`HyperionDb::range`],
/// [`HyperionDb::prefix`] and their `_rev` counterparts.
///
/// Unlike a snapshot merge, the scan holds no lock while the caller consumes
/// it *and* never materialises a shard: each shard stream buffers at most one
/// chunk ([`HyperionDb::scan_chunk`] entries), refilled hand-over-hand by
/// re-seeking past the last buffered key under a brief lock.  Peak buffered
/// entries are therefore bounded by `shards × chunk`
/// ([`DbScan::peak_buffered`] reports the observed maximum).
///
/// A reverse scan runs the same machinery mirrored: every shard stream walks
/// its trie backward (the [`crate::Cursor`] reverse engine), the merge
/// frontier is a max-heap, and refills resume *below* the chunk's smallest
/// key.  [`RangePartitioner`] shard pruning applies to both directions.
pub struct DbScan<'a> {
    db: &'a HyperionDb,
    streams: Vec<ShardStream>,
    heap: MergeHeap,
    /// `true` for a descending scan.
    reverse: bool,
    /// Forward stop bound (checked per key while ascending).
    end: UpperBound,
    /// Reverse stop bound (checked per key while descending).
    lower: LowerBound,
    chunk: usize,
    peak_buffered: usize,
}

impl<'a> DbScan<'a> {
    fn new(db: &'a HyperionDb, start: Vec<u8>, exclusive: bool, end: UpperBound) -> DbScan<'a> {
        let lower = LowerBound::Unbounded; // forward: handled by the seek
        Self::build(db, false, Some(start), !exclusive, end, lower)
    }

    fn new_rev(db: &'a HyperionDb, upper: UpperBound, lower: LowerBound) -> DbScan<'a> {
        // The reverse walk starts at the upper bound: translate it into the
        // initial backward seek (`None` = the far end of each shard).
        let (seek, inclusive) = match &upper {
            UpperBound::Unbounded => (None, true),
            UpperBound::Excluded(e) => (Some(e.clone()), false),
            UpperBound::Included(e) => (Some(e.clone()), true),
        };
        Self::build(db, true, seek, inclusive, upper, lower)
    }

    fn build(
        db: &'a HyperionDb,
        reverse: bool,
        seek: Option<Vec<u8>>,
        inclusive: bool,
        end: UpperBound,
        lower: LowerBound,
    ) -> DbScan<'a> {
        // With an order-preserving partitioner, only the shards overlapping
        // [lower, end] can hold in-bound keys — in either direction.
        let n = db.shards.len();
        let (lo, hi) = if db.partitioner.is_order_preserving() {
            let lo = match &lower {
                LowerBound::Unbounded => 0,
                LowerBound::Excluded(s) | LowerBound::Included(s) => {
                    db.partitioner.shard_of(s, n).min(n - 1)
                }
            };
            let lo = match (reverse, &seek) {
                // A forward scan's lower bound is its seek key.
                (false, Some(s)) => lo.max(db.partitioner.shard_of(s, n).min(n - 1)),
                _ => lo,
            };
            let hi = match &end {
                UpperBound::Unbounded => n - 1,
                UpperBound::Excluded(e) | UpperBound::Included(e) => {
                    db.partitioner.shard_of(e, n).min(n - 1)
                }
            };
            (lo, hi.max(lo))
        } else {
            (0, n - 1)
        };
        let mut scan = DbScan {
            db,
            streams: (lo..=hi)
                .map(|shard| ShardStream {
                    shard,
                    buf: VecDeque::new(),
                    state: StreamState::Pending {
                        seek: seek.clone(),
                        inclusive,
                    },
                })
                .collect(),
            heap: MergeHeap::with_capacity(reverse, hi - lo + 1),
            reverse,
            end,
            lower,
            chunk: db.scan_chunk,
            peak_buffered: 0,
        };
        for i in 0..scan.streams.len() {
            scan.promote_head(i);
        }
        scan
    }

    /// Fetches the next chunk for stream `i` — optimistically first, with a
    /// recovering lock fallback.  The whole seek-and-collect runs as one
    /// re-runnable attempt: if a writer moves the chunk's containers
    /// mid-fetch, seqlock validation discards the partial chunk and the next
    /// attempt re-seeks from the same resume key, so the merged scan never
    /// observes a half-mutated shard (chunk-granular snapshot semantics, as
    /// before).
    fn refill(&mut self, i: usize) {
        let StreamState::Pending { seek, inclusive } =
            std::mem::replace(&mut self.streams[i].state, StreamState::Exhausted)
        else {
            return;
        };
        let shard = self.streams[i].shard;
        let reverse = self.reverse;
        let chunk = self.chunk;
        let (end, lower) = (&self.end, &self.lower);
        let fetch = |map: &HyperionMap| {
            let mut cursor = map.cursor();
            match (&seek, reverse, inclusive) {
                (None, true, _) => cursor.seek_last(),
                (None, false, _) => cursor.seek(&[]),
                (Some(k), true, true) => cursor.seek_for_pred(k),
                (Some(k), true, false) => cursor.seek_for_pred_exclusive(k),
                (Some(k), false, true) => cursor.seek(k),
                (Some(k), false, false) => cursor.seek_exclusive(k),
            }
            let mut buf = Vec::with_capacity(chunk);
            let mut ran_dry = false;
            while buf.len() < chunk {
                let next = if reverse {
                    cursor.prev()
                } else {
                    cursor.next()
                };
                let Some((key, value)) = next else {
                    ran_dry = true;
                    break;
                };
                let in_bound = if reverse {
                    lower.admits(&key)
                } else {
                    end.admits(&key)
                };
                if !in_bound {
                    ran_dry = true;
                    break;
                }
                buf.push((key, value));
            }
            (buf, ran_dry)
        };
        let (buf, ran_dry) = self.db.read_shard_recovering(shard, fetch);
        let stream = &mut self.streams[i];
        stream.buf = buf.into();
        if !ran_dry {
            if let Some((last, _)) = stream.buf.back() {
                stream.state = StreamState::Pending {
                    seek: Some(last.clone()),
                    inclusive: false,
                };
            }
        }
    }

    /// Moves the head of stream `i` into the merge heap, refilling first if
    /// the buffer ran empty.
    fn promote_head(&mut self, i: usize) {
        if self.streams[i].buf.is_empty() {
            self.refill(i);
            self.note_peak();
        }
        if let Some((key, value)) = self.streams[i].buf.pop_front() {
            self.heap.push(key, i, value);
        }
    }

    #[inline]
    fn buffered(&self) -> usize {
        self.heap.len() + self.streams.iter().map(|s| s.buf.len()).sum::<usize>()
    }

    #[inline]
    fn note_peak(&mut self) {
        self.peak_buffered = self.peak_buffered.max(self.buffered());
    }

    /// `true` for a descending scan.
    pub fn is_reverse(&self) -> bool {
        self.reverse
    }

    /// Entries currently buffered across all shard streams (including the
    /// merge heap).  Bounded by `shards × chunk`.
    pub fn buffered_entries(&self) -> usize {
        self.buffered()
    }

    /// The maximum number of simultaneously buffered entries observed so far.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }
}

impl Iterator for DbScan<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        let (key, i, value) = self.heap.pop()?;
        self.promote_head(i);
        Some((key, value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Everything buffered has already passed the bound checks, so it will
        // be yielded: the buffered count is an honest lower bound.  The upper
        // bound is unknown until every stream is exhausted.
        let buffered = self.buffered();
        let live = self
            .streams
            .iter()
            .any(|s| matches!(s.state, StreamState::Pending { .. }));
        (buffered, if live { None } else { Some(buffered) })
    }
}

impl std::iter::FusedIterator for DbScan<'_> {}

impl KvRead for HyperionDb {
    fn get(&self, key: &[u8]) -> Option<u64> {
        self.get_recovering(key)
    }

    fn len(&self) -> usize {
        HyperionDb::len(self)
    }

    fn memory_footprint(&self) -> usize {
        self.footprint_bytes()
    }

    fn name(&self) -> &'static str {
        "hyperion-db"
    }
}

impl KvWrite for HyperionDb {
    fn put(&mut self, key: &[u8], value: u64) -> bool {
        self.put_recovering(key, value)
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        self.delete_recovering(key)
    }
}

impl OrderedRead for HyperionDb {
    fn for_each_from(&self, start: &[u8], f: &mut dyn FnMut(&[u8], u64) -> bool) {
        for (key, value) in self.range(start..) {
            if !f(&key, value) {
                return;
            }
        }
    }

    fn iter_from(&self, start: &[u8]) -> Entries<'_> {
        Entries::from_lazy(self.range(start..))
    }

    fn range_iter(&self, start: &[u8], end: &[u8]) -> Entries<'_> {
        Entries::from_lazy(self.range(start..end))
    }

    /// Overrides the default with a bounded probe: each shard is asked for its
    /// first key `>= start` (one cursor step under the lock) instead of
    /// starting a chunked scan.  With an order-preserving partitioner, shards
    /// below `start`'s shard cannot hold in-bound keys and shard `i`'s keys
    /// all precede shard `i + 1`'s, so the probe starts at `shard_of(start)`
    /// and stops at the first shard that yields anything.
    fn seek_first(&self, start: &[u8]) -> Option<(Vec<u8>, u64)> {
        let probe = |i: usize| {
            self.read_shard_recovering(i, |map| {
                let mut cursor = map.cursor();
                cursor.seek(start);
                cursor.next()
            })
        };
        if self.partitioner.is_order_preserving() {
            let lo = self.shard_of(start);
            (lo..self.shards.len()).find_map(probe)
        } else {
            (0..self.shards.len()).filter_map(probe).min()
        }
    }

    /// Overrides the full forward walk with a bounded probe: each shard is
    /// asked for its greatest key (one reverse-cursor step under the lock).
    /// With an order-preserving partitioner, shard `i`'s keys all precede
    /// shard `i + 1`'s, so the probe walks the shards from the top down and
    /// stops at the first hit.
    fn last(&self) -> Option<(Vec<u8>, u64)> {
        let probe = |i: usize| self.read_shard_recovering(i, |map| map.last());
        if self.partitioner.is_order_preserving() {
            (0..self.shards.len()).rev().find_map(probe)
        } else {
            (0..self.shards.len()).filter_map(probe).max()
        }
    }

    /// Overrides the walk-to-bound default with a bounded probe, the mirror
    /// of [`OrderedRead::seek_first`]: each shard answers its own
    /// predecessor query under a brief lock, and order preservation prunes
    /// shards above the bound.
    fn pred(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let probe = |i: usize| self.read_shard_recovering(i, |map| map.pred(key));
        if self.partitioner.is_order_preserving() {
            let hi = self.shard_of(key);
            (0..=hi).rev().find_map(probe)
        } else {
            (0..self.shards.len()).filter_map(probe).max()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn sample_db(partitioner: impl Partitioner + 'static, shards: usize) -> HyperionDb {
        HyperionDb::builder()
            .shards(shards)
            .partitioner(partitioner)
            .build()
    }

    #[test]
    fn typed_point_operations() {
        let db = sample_db(FirstBytePartitioner, 8);
        assert_eq!(db.put(b"alpha", 1), Ok(PutOutcome::Inserted));
        assert_eq!(db.put(b"alpha", 2), Ok(PutOutcome::Updated));
        assert_eq!(db.get(b"alpha"), Ok(Some(2)));
        assert_eq!(db.delete(b"alpha"), Ok(true));
        assert_eq!(db.delete(b"alpha"), Ok(false));
        assert_eq!(db.get(b"alpha"), Ok(None));
    }

    #[test]
    fn over_long_keys_are_typed_errors() {
        let db = sample_db(FirstBytePartitioner, 4);
        let long = vec![7u8; MAX_KEY_LEN + 1];
        assert_eq!(
            db.put(&long, 1),
            Err(HyperionError::KeyTooLong {
                len: MAX_KEY_LEN + 1,
                max: MAX_KEY_LEN
            })
        );
        // Reads of impossible keys are absences, not errors.
        assert_eq!(db.get(&long), Ok(None));
        assert_eq!(db.delete(&long), Ok(false));
        // The trait/shim write path shares the contract: a store reachable
        // through both surfaces must agree on what can exist.  With no error
        // channel on the bool surface, violations are loud.
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.put_recovering(&long, 1)))
                .is_err();
        assert!(
            panicked,
            "bool write surface must reject over-long keys loudly"
        );
        assert_eq!(KvRead::get(&db, &long), None);
        assert_eq!(db.len(), 0);
        // The boundary length is accepted.
        let exact = vec![7u8; MAX_KEY_LEN];
        assert_eq!(db.put(&exact, 1), Ok(PutOutcome::Inserted));
        assert_eq!(db.get(&exact), Ok(Some(1)));
    }

    #[test]
    fn shard_poisoning_is_reported() {
        let db = Arc::new(sample_db(FirstBytePartitioner, 4));
        db.put(b"victim", 1).unwrap();
        let shard = db.shard_of(b"victim");
        // Poison the shard by panicking while holding its lock.
        let db2 = Arc::clone(&db);
        let _ = std::thread::spawn(move || {
            let _guard = db2.shards[shard].lock.lock().unwrap();
            panic!("poison the shard");
        })
        .join();
        assert_eq!(
            db.put(b"victim", 2),
            Err(HyperionError::ShardPoisoned { shard })
        );
        // Aggregates and scans recover.
        assert_eq!(db.len(), 1);
        assert_eq!(db.iter().count(), 1);
        assert_eq!(KvRead::get(&*db, b"victim"), Some(1));
    }

    #[test]
    fn panicking_writer_does_not_wedge_or_corrupt_readers() {
        let db = Arc::new(sample_db(FirstBytePartitioner, 4));
        db.put(b"victim", 1).unwrap();
        let shard = db.shard_of(b"victim");
        let before = db.stats().optimistic;
        // Die *inside a mutation span*, exactly like a writer panicking
        // mid-structural-change: the lock is poisoned AND the shard's seqlock
        // is parked odd, so optimistic reads cannot validate.
        let db2 = Arc::clone(&db);
        let _ = std::thread::spawn(move || {
            let guard = db2.lock_shard(shard).unwrap();
            let _span = guard.seq.mutation();
            panic!("writer dies mid-mutation");
        })
        .join();
        // The typed write path reports the poisoning...
        assert_eq!(
            db.put(b"victim", 2),
            Err(HyperionError::ShardPoisoned { shard })
        );
        // ...while a recovering reader clears the poison, re-evens the
        // seqlock and still returns the committed value (the dead writer's
        // span applied no changes).
        assert_eq!(KvRead::get(&*db, b"victim"), Some(1));
        let recovered = db.stats().optimistic;
        assert!(
            recovered.fallbacks > before.fallbacks,
            "a read against the parked seqlock must have taken the lock"
        );
        // The shard is fully revived: writes succeed again and subsequent
        // reads validate lock-free.
        assert_eq!(db.put(b"victim", 2), Ok(PutOutcome::Updated));
        assert_eq!(db.get(b"victim"), Ok(Some(2)));
        let after = db.stats().optimistic;
        assert!(
            after.hits > recovered.hits,
            "post-recovery reads must run lock-free again"
        );
    }

    /// Injected alloc failures surface as typed `AllocFailed` without
    /// poisoning, injected panics poison-and-recover via
    /// `recover_poisoned`, and the trie stays structurally valid throughout.
    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_faults_surface_typed_and_recover() {
        use crate::failpoint::{self, Action, Policy};
        let db = sample_db(FirstBytePartitioner, 2);
        for i in 0..512u64 {
            db.put(format!("warm{i:04}").as_bytes(), i).unwrap();
        }
        failpoint::set_seed(1);

        // Simulated OOM: typed error, shard stays usable, no poison.
        failpoint::arm("mem.alloc", Policy::new(Action::AllocFail).max_trips(1));
        let mut alloc_failed = 0;
        for i in 0..512u64 {
            match db.put(format!("oom{i:04}").as_bytes(), i) {
                Ok(_) => {}
                Err(HyperionError::AllocFailed { .. }) => alloc_failed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(alloc_failed, 1, "the armed trip must surface exactly once");
        assert_eq!(db.poison_recoveries(), 0, "AllocFail must not poison");
        failpoint::disarm("mem.alloc");

        // Simulated writer crash: the shard poisons, `recover_poisoned`
        // revives it, and the recovery is counted.
        failpoint::arm("write.splice", Policy::new(Action::Panic).max_trips(1));
        let mut poisoned = 0;
        for i in 0..2048u64 {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                db.put(format!("crash{i:05}").as_bytes(), i)
            })) {
                Ok(Ok(_)) | Ok(Err(HyperionError::ShardPoisoned { .. })) => {}
                Ok(Err(e)) => panic!("unexpected error: {e}"),
                Err(_) => poisoned += 1,
            }
        }
        assert_eq!(poisoned, 1, "the armed crash must fire exactly once");
        assert_eq!(db.recover_poisoned(), 1);
        assert_eq!(db.poison_recoveries(), 1);
        failpoint::disarm_all();

        // Fully usable and structurally valid afterwards.
        assert_eq!(db.put(b"after", 9), Ok(PutOutcome::Inserted));
        assert_eq!(db.get(b"after"), Ok(Some(9)));
        db.validate_structure().unwrap();
    }

    #[test]
    fn write_batch_groups_and_applies_in_order() {
        let db = sample_db(FibonacciPartitioner, 8);
        let mut batch = WriteBatch::with_capacity(5);
        batch
            .put(b"k1", 1)
            .put(b"k2", 2)
            .put(b"k1", 10) // same key again: batch order must win
            .delete(b"k2")
            .delete(b"nope");
        let summary = db.apply(&batch).unwrap();
        assert_eq!(summary.inserted, 2);
        assert_eq!(summary.updated, 1);
        assert_eq!(summary.deleted, 1);
        assert_eq!(summary.missing, 1);
        assert_eq!(summary.applied(), 5);
        assert_eq!(db.get(b"k1"), Ok(Some(10)));
        assert_eq!(db.get(b"k2"), Ok(None));
    }

    #[test]
    fn batch_partial_failure_reports_indices() {
        let db = sample_db(FirstBytePartitioner, 4);
        let long = vec![1u8; MAX_KEY_LEN + 1];
        let mut batch = WriteBatch::new();
        batch.put(b"good", 1).put(&long, 2).put(b"also-good", 3);
        let err = db.apply(&batch).unwrap_err();
        let HyperionError::BatchFailed(report) = &err else {
            panic!("expected BatchFailed, got {err:?}");
        };
        assert_eq!(report.summary.inserted, 2, "valid ops still applied");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, 1, "op index of the bad key");
        assert!(matches!(
            report.failures[0].1,
            HyperionError::KeyTooLong { .. }
        ));
        assert_eq!(db.get(b"good"), Ok(Some(1)));
        assert_eq!(db.get(b"also-good"), Ok(Some(3)));
        // The error is displayable.
        assert!(err.to_string().contains("1 failed"));
    }

    #[test]
    fn multi_get_matches_single_gets() {
        for db in [
            sample_db(FirstBytePartitioner, 8),
            sample_db(FibonacciPartitioner, 8),
            sample_db(RangePartitioner, 8),
        ] {
            for i in 0..500u64 {
                db.put(format!("key{:04}", i * 7 % 1000).as_bytes(), i)
                    .unwrap();
            }
            let probes: Vec<Vec<u8>> = (0..40)
                .map(|i| format!("key{:04}", i * 25).into_bytes())
                .collect();
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let batch = db.multi_get(&refs).unwrap();
            for (key, got) in refs.iter().zip(&batch) {
                assert_eq!(
                    *got,
                    db.get(key).unwrap(),
                    "{}",
                    String::from_utf8_lossy(key)
                );
            }
        }
    }

    #[test]
    fn delete_many_matches_single_deletes() {
        for db in [
            sample_db(FirstBytePartitioner, 8),
            sample_db(FibonacciPartitioner, 8),
            sample_db(RangePartitioner, 8),
        ] {
            let mut oracle = BTreeMap::new();
            for i in 0..500u64 {
                let key = format!("key{:04}", i * 7 % 1000).into_bytes();
                db.put(&key, i).unwrap();
                oracle.insert(key, i);
            }
            // Hits, misses, duplicates and an over-long key in one call.
            let long = vec![9u8; MAX_KEY_LEN + 1];
            let mut probes: Vec<Vec<u8>> = (0..40)
                .map(|i| format!("key{:04}", i * 30).into_bytes())
                .collect();
            probes.push(probes[0].clone()); // duplicate: second must miss
            probes.push(long);
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let removed = db.delete_many(&refs).unwrap();
            for (i, key) in refs.iter().enumerate() {
                // The last probe is over-long (can never exist) and the one
                // before it duplicates probes[0] (already removed): both miss.
                let expected = if i >= refs.len() - 2 {
                    false
                } else {
                    oracle.remove(*key).is_some()
                };
                assert_eq!(removed[i], expected, "probe {i}");
                assert_eq!(db.get(key).unwrap(), None);
            }
            assert_eq!(db.len(), oracle.len());
        }
    }

    #[test]
    fn batch_delete_runs_match_sequential_semantics() {
        let db = sample_db(FibonacciPartitioner, 4);
        for i in 0..100u64 {
            db.put(format!("k{i:03}").as_bytes(), i).unwrap();
        }
        let mut batch = WriteBatch::new();
        // A long delete run (coalesced through delete_many), including a
        // duplicate key and a miss, then a put after the run.
        for i in 0..50u64 {
            batch.delete(format!("k{i:03}").as_bytes());
        }
        batch.delete(b"k000"); // duplicate: must count as missing
        batch.delete(b"absent");
        batch.put(b"k000", 777);
        let summary = db.apply(&batch).unwrap();
        assert_eq!(summary.deleted, 50);
        assert_eq!(summary.missing, 2);
        assert_eq!(summary.inserted, 1, "put after delete run re-inserts");
        assert_eq!(db.get(b"k000"), Ok(Some(777)));
        assert_eq!(db.len(), 51);
    }

    #[test]
    fn partitioners_cover_all_shards_and_respect_bounds() {
        for n in [1usize, 3, 8, 67, 256] {
            for p in [
                &FirstBytePartitioner as &dyn Partitioner,
                &FibonacciPartitioner,
                &RangePartitioner,
            ] {
                for i in 0..2000u64 {
                    let key = splitmix64(i).to_be_bytes();
                    let shard = p.shard_of(&key, n);
                    assert!(shard < n, "{} out of range for {n} shards", p.name());
                }
                assert!(p.shard_of(&[], n) < n, "{} empty key", p.name());
            }
        }
    }

    #[test]
    fn range_partitioner_is_monotone() {
        let p = RangePartitioner;
        for n in [2usize, 5, 16, 256] {
            let mut last = 0usize;
            for hi in 0..=255u8 {
                let shard = p.shard_of(&[hi, 0], n);
                assert!(shard >= last, "monotonicity violated at {hi:#x}/{n}");
                last = shard;
            }
            assert_eq!(p.shard_of(&[0xff, 0xff, 0xff], n), n - 1);
        }
    }

    #[test]
    fn fibonacci_fixes_hot_prefix_skew() {
        let shards = 16;
        let first = sample_db(FirstBytePartitioner, shards);
        let hashed = sample_db(FibonacciPartitioner, shards);
        for i in 0..4000u64 {
            // 100% hot prefix: every key starts with "user:".
            let key = format!("user:{i:06}");
            first.put(key.as_bytes(), i).unwrap();
            hashed.put(key.as_bytes(), i).unwrap();
        }
        let first_max = *first.shard_lens().iter().max().unwrap();
        assert_eq!(
            first_max, 4000,
            "first-byte routing serialises the hot prefix"
        );
        let hashed_lens = hashed.shard_lens();
        let hashed_max = *hashed_lens.iter().max().unwrap();
        let hashed_min = *hashed_lens.iter().min().unwrap();
        assert!(
            hashed_max < 4000 / shards * 2 && hashed_min > 0,
            "hash routing must spread the hot prefix, got {hashed_lens:?}"
        );
    }

    #[test]
    fn scans_match_reference_for_every_partitioner() {
        for p in [
            Box::new(FirstBytePartitioner) as Box<dyn Partitioner>,
            Box::new(FibonacciPartitioner),
            Box::new(RangePartitioner),
        ] {
            let name = p.name();
            let db = HyperionDb::builder()
                .shards(7)
                .partitioner_arc(Arc::from(p))
                .scan_chunk_size(16) // small chunks: force many hand-over-hand refills
                .build();
            let mut reference = BTreeMap::new();
            for i in 0..1500u64 {
                let key = format!("k{:05}", i * 37 % 3000).into_bytes();
                db.put(&key, i).unwrap();
                reference.insert(key, i);
            }
            let expected: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
            let got: Vec<_> = db.iter().collect();
            assert_eq!(got, expected, "{name} full scan");

            let lo = b"k00500".to_vec();
            let hi = b"k02000".to_vec();
            let got: Vec<_> = db.range(&lo[..]..&hi[..]).collect();
            let expected_range: Vec<_> = reference
                .range(lo.clone()..hi.clone())
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected_range, "{name} bounded range");

            // Inclusive end and excluded start.
            use std::ops::Bound;
            let got: Vec<_> = db
                .range::<[u8], _>((Bound::Excluded(&lo[..]), Bound::Included(&hi[..])))
                .collect();
            let expected_ex: Vec<_> = reference
                .range::<Vec<u8>, _>((Bound::Excluded(&lo), Bound::Included(&hi)))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected_ex, "{name} excluded/included bounds");

            let got = db.prefix(b"k01").count();
            let expected_prefix = reference.keys().filter(|k| k.starts_with(b"k01")).count();
            assert_eq!(got, expected_prefix, "{name} prefix");
        }
    }

    #[test]
    fn scan_memory_stays_bounded_by_chunks() {
        let db = HyperionDb::builder().shards(4).scan_chunk_size(8).build();
        for i in 0..5000u64 {
            db.put(format!("{i:08}").as_bytes(), i).unwrap();
        }
        let mut scan = db.iter();
        let mut n = 0usize;
        while scan.next().is_some() {
            n += 1;
            assert!(
                scan.buffered_entries() <= 4 * 8,
                "buffer exceeded shards×chunk"
            );
        }
        assert_eq!(n, 5000);
        assert!(scan.peak_buffered() <= 4 * 8);
    }

    #[test]
    fn scan_size_hint_is_honest_and_fused() {
        let db = HyperionDb::builder().shards(3).scan_chunk_size(4).build();
        for i in 0..100u64 {
            db.put(&i.to_be_bytes(), i).unwrap();
        }
        let mut scan = db.iter();
        let mut remaining = 100usize;
        loop {
            let (lo, hi) = scan.size_hint();
            assert!(
                lo <= remaining,
                "lower bound {lo} above true count {remaining}"
            );
            if let Some(hi) = hi {
                assert!(
                    hi >= remaining,
                    "upper bound {hi} below true count {remaining}"
                );
            }
            if scan.next().is_none() {
                break;
            }
            remaining -= 1;
        }
        assert_eq!(remaining, 0);
        // Fused: keeps returning None.
        assert_eq!(scan.next(), None);
        assert_eq!(scan.next(), None);
        assert_eq!(scan.size_hint(), (0, Some(0)));
    }

    #[test]
    fn seek_first_agrees_across_partitioners() {
        let dbs = [
            sample_db(FirstBytePartitioner, 16),
            sample_db(FibonacciPartitioner, 16),
            sample_db(RangePartitioner, 16),
        ];
        let mut reference = BTreeMap::new();
        for i in 0..400u64 {
            let key = (i * 163 % 1000).to_be_bytes();
            for db in &dbs {
                db.put(&key, i).unwrap();
            }
            reference.insert(key.to_vec(), i);
        }
        for probe in [0u64, 1, 499, 500, 999, 1000, u64::MAX] {
            let start = probe.to_be_bytes();
            let expected = reference
                .range(start.to_vec()..)
                .next()
                .map(|(k, v)| (k.clone(), *v));
            for db in &dbs {
                assert_eq!(
                    OrderedRead::seek_first(db, &start),
                    expected,
                    "{} seek_first({probe})",
                    db.partitioner().name()
                );
            }
        }
    }

    #[test]
    fn reverse_scans_match_reference_for_every_partitioner() {
        for p in [
            Box::new(FirstBytePartitioner) as Box<dyn Partitioner>,
            Box::new(FibonacciPartitioner),
            Box::new(RangePartitioner),
        ] {
            let name = p.name();
            let db = HyperionDb::builder()
                .shards(7)
                .partitioner_arc(Arc::from(p))
                .scan_chunk_size(16) // small chunks: force many hand-over-hand refills
                .build();
            let mut reference = BTreeMap::new();
            for i in 0..1500u64 {
                let key = format!("k{:05}", i * 37 % 3000).into_bytes();
                db.put(&key, i).unwrap();
                reference.insert(key, i);
            }
            let expected: Vec<_> = reference
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let got: Vec<_> = db.iter_rev().collect();
            assert_eq!(got, expected, "{name} full reverse scan");

            let lo = b"k00500".to_vec();
            let hi = b"k02000".to_vec();
            let got: Vec<_> = db.range_rev(&lo[..]..&hi[..]).collect();
            let expected_range: Vec<_> = reference
                .range(lo.clone()..hi.clone())
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected_range, "{name} bounded reverse range");

            use std::ops::Bound;
            let got: Vec<_> = db
                .range_rev::<[u8], _>((Bound::Excluded(&lo[..]), Bound::Included(&hi[..])))
                .collect();
            let expected_ex: Vec<_> = reference
                .range::<Vec<u8>, _>((Bound::Excluded(&lo), Bound::Included(&hi)))
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected_ex, "{name} reverse excluded/included bounds");

            let got: Vec<_> = db.prefix_rev(b"k01").map(|(k, _)| k).collect();
            let mut expected_prefix: Vec<_> = reference
                .keys()
                .filter(|k| k.starts_with(b"k01"))
                .cloned()
                .collect();
            expected_prefix.reverse();
            assert_eq!(got, expected_prefix, "{name} reverse prefix");
        }
    }

    #[test]
    fn reverse_scan_memory_stays_bounded_by_chunks() {
        let db = HyperionDb::builder().shards(4).scan_chunk_size(8).build();
        for i in 0..5000u64 {
            db.put(format!("{i:08}").as_bytes(), i).unwrap();
        }
        let mut scan = db.iter_rev();
        assert!(scan.is_reverse());
        let mut n = 0usize;
        let mut last: Option<Vec<u8>> = None;
        while let Some((key, _)) = scan.next() {
            n += 1;
            if let Some(prev) = &last {
                assert!(key < *prev, "reverse scan not descending");
            }
            last = Some(key);
            assert!(
                scan.buffered_entries() <= 4 * 8,
                "buffer exceeded shards×chunk"
            );
        }
        assert_eq!(n, 5000);
        assert!(scan.peak_buffered() <= 4 * 8);
    }

    #[test]
    fn last_and_pred_agree_across_partitioners() {
        let dbs = [
            sample_db(FirstBytePartitioner, 16),
            sample_db(FibonacciPartitioner, 16),
            sample_db(RangePartitioner, 16),
        ];
        let mut reference = BTreeMap::new();
        for i in 0..400u64 {
            let key = (i * 163 % 1000).to_be_bytes();
            for db in &dbs {
                db.put(&key, i).unwrap();
            }
            reference.insert(key.to_vec(), i);
        }
        let expected_last = reference.iter().next_back().map(|(k, v)| (k.clone(), *v));
        for probe in [0u64, 1, 499, 500, 999, 1000, u64::MAX] {
            let key = probe.to_be_bytes();
            let expected = reference
                .range(..key.to_vec())
                .next_back()
                .map(|(k, v)| (k.clone(), *v));
            for db in &dbs {
                assert_eq!(
                    OrderedRead::last(db),
                    expected_last,
                    "{} last",
                    db.partitioner().name()
                );
                assert_eq!(
                    OrderedRead::pred(db, &key),
                    expected,
                    "{} pred({probe})",
                    db.partitioner().name()
                );
            }
        }
        let empty = sample_db(RangePartitioner, 4);
        assert_eq!(OrderedRead::last(&empty), None);
        assert_eq!(OrderedRead::pred(&empty, b"x"), None);
    }

    #[test]
    fn empty_db_and_empty_key() {
        let db = sample_db(RangePartitioner, 5);
        assert!(db.is_empty());
        assert_eq!(db.iter().next(), None);
        db.put(b"", 42).unwrap();
        assert_eq!(db.get(b""), Ok(Some(42)));
        assert_eq!(db.iter().next(), Some((Vec::new(), 42)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn ordered_read_trait_surface() {
        let db = sample_db(FibonacciPartitioner, 6);
        for i in 0..300u64 {
            db.put(&(i * 3).to_be_bytes(), i).unwrap();
        }
        let start = 150u64.to_be_bytes();
        let end = 600u64.to_be_bytes();
        assert_eq!(db.range_count(&start, &end), 150);
        assert_eq!(
            OrderedRead::seek_first(&db, &start),
            Some((150u64.to_be_bytes().to_vec(), 50))
        );
        let got: Vec<_> = db.iter_from(&start).take(3).map(|(_, v)| v).collect();
        assert_eq!(got, vec![50, 51, 52]);
    }

    #[test]
    fn stats_tree_aggregates_every_surface() {
        let db = HyperionDb::builder()
            .shards(4)
            .shortcut_capacity(1 << 8)
            .scan_backend(ScanBackend::Simd)
            .build();
        for i in 0..2_000u64 {
            db.put(&i.to_be_bytes(), i).unwrap();
        }
        for i in 0..2_000u64 {
            assert_eq!(db.get(&i.to_be_bytes()).unwrap(), Some(i));
        }
        let s = db.stats();
        assert_eq!(s.version, DB_STATS_VERSION);
        assert_eq!(s.scan_backend, ScanBackend::Simd);
        // The read loop ran unopposed, so every get validated lock-free.
        assert!(s.optimistic.hits >= 2_000, "hits: {:?}", s.optimistic);
        // Point descents probed the shortcut table on every locked access.
        assert!(
            s.shortcut.hits + s.shortcut.misses > 0,
            "shortcut: {:?}",
            s.shortcut
        );
        assert_eq!(s.poison_recoveries, 0);
        // The deprecated per-surface accessors remain views of the same data.
        #[allow(deprecated)]
        {
            assert_eq!(db.shortcut_stats(), db.stats().shortcut);
        }
    }
}

//! Tunable parameters of the Hyperion trie.
//!
//! The defaults follow Section 4.1 of the paper: embedded containers are
//! ejected when the surrounding (real) container exceeds 8 KiB for integer
//! keys and 16 KiB for variable-length string keys; containers are split once
//! they exceed `16 KiB + 64 KiB * split_delay`.

use crate::scan_kernel::ScanBackend;

/// Configuration of a [`crate::HyperionMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HyperionConfig {
    /// Eject embedded containers once the surrounding real container grows
    /// beyond this size (bytes).  Paper default: 8 KiB for integer keys,
    /// 16 KiB for strings.
    pub eject_threshold: usize,
    /// Maximum size of an embedded container in bytes (hard limit 255 because
    /// the size field is a single byte; the paper uses 256).
    pub embedded_max: usize,
    /// Enable delta encoding of sibling key characters (Section 3.3).
    pub delta_encoding: bool,
    /// Enable the jump-successor offsets appended to T-nodes (Section 3.3).
    pub jump_successor: bool,
    /// Minimum number of S-children before a jump-successor offset is added.
    /// Paper default: 2.
    pub jump_successor_threshold: usize,
    /// Enable T-node jump tables (Section 3.3).
    pub tnode_jump_table: bool,
    /// Minimum number of S-children before a T-node jump table is created.
    pub tnode_jump_table_threshold: usize,
    /// Enable container jump tables (Section 3.3).
    pub container_jump_table: bool,
    /// Number of T-nodes scanned in one lookup before the container jump
    /// table is grown / rebalanced.  Paper default: 8.
    pub container_jump_table_scan_limit: usize,
    /// Enable vertical container splitting (Section 3.3).
    pub container_split: bool,
    /// Base size `a` of the split condition `size >= a + b * s` (bytes).
    pub split_base: usize,
    /// Increment `b` of the split condition (bytes).
    pub split_increment: usize,
    /// Minimum size of each split candidate; smaller splits are aborted.
    pub split_min_part: usize,
    /// Enable the optional key pre-processor (zero-bit injection, Section 3.4).
    pub key_preprocessing: bool,
    /// Capacity (in entries, rounded up to a power of two) of the hashed
    /// shortcut layer mapping transformed-key prefixes to deep containers
    /// ([`crate::shortcut`]); 0 disables it.  The table allocates lazily and
    /// costs 16 bytes per slot once warm.
    pub shortcut_capacity: usize,
    /// Scan backend the map emits container layouts for
    /// ([`crate::scan_kernel`]): [`ScanBackend::Scalar`] keeps the exact-fit
    /// layout byte-for-byte; [`ScanBackend::Simd`] adds per-container
    /// key-lane blocks searched data-parallel.  Readers dispatch on lane
    /// presence per container, so the two layouts interoperate.
    pub scan_backend: ScanBackend,
}

impl Default for HyperionConfig {
    fn default() -> Self {
        HyperionConfig {
            eject_threshold: 16 * 1024,
            embedded_max: 255,
            delta_encoding: true,
            jump_successor: true,
            jump_successor_threshold: 2,
            tnode_jump_table: true,
            tnode_jump_table_threshold: 24,
            container_jump_table: true,
            container_jump_table_scan_limit: 8,
            container_split: true,
            split_base: 16 * 1024,
            split_increment: 64 * 1024,
            split_min_part: 3 * 1024,
            key_preprocessing: false,
            shortcut_capacity: 1 << 16,
            scan_backend: ScanBackend::Scalar,
        }
    }
}

impl HyperionConfig {
    /// Paper configuration for fixed-size integer keys (8 KiB eject threshold).
    pub fn for_integers() -> Self {
        HyperionConfig {
            eject_threshold: 8 * 1024,
            ..Default::default()
        }
    }

    /// Paper configuration for variable-length string keys (16 KiB eject
    /// threshold, better path-compression utilisation).
    pub fn for_strings() -> Self {
        HyperionConfig {
            eject_threshold: 16 * 1024,
            ..Default::default()
        }
    }

    /// Configuration with key pre-processing enabled ("Hyperion_p" in the
    /// paper), intended for uniformly distributed keys such as random
    /// integers or cryptographic hashes.
    ///
    /// The zero-bit-injection transform is order-preserving only among keys
    /// of uniform width (at least 4 bytes): keys shorter than 4 bytes pass
    /// through untransformed, so mixing key widths under this configuration
    /// yields unspecified ordering for cursors, iterators and range queries.
    /// Use fixed-width keys (e.g. [`crate::keys::encode_u64`]) — point
    /// lookups (`get`/`put`/`delete`) are unaffected either way.
    pub fn with_preprocessing() -> Self {
        HyperionConfig {
            eject_threshold: 8 * 1024,
            key_preprocessing: true,
            ..Default::default()
        }
    }

    /// A minimal configuration with every optional acceleration structure
    /// disabled; used by the ablation benchmarks.
    pub fn baseline_no_optimizations() -> Self {
        HyperionConfig {
            delta_encoding: false,
            jump_successor: false,
            tnode_jump_table: false,
            container_jump_table: false,
            container_split: false,
            key_preprocessing: false,
            shortcut_capacity: 0,
            ..Default::default()
        }
    }

    /// Returns the split threshold for a container with the given split delay
    /// `s` (Equation 4 of the paper).
    #[inline]
    pub fn split_threshold(&self, split_delay: u8) -> usize {
        self.split_base + self.split_increment * split_delay as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = HyperionConfig::default();
        assert_eq!(c.split_base, 16 * 1024);
        assert_eq!(c.split_increment, 64 * 1024);
        assert_eq!(c.jump_successor_threshold, 2);
        assert_eq!(c.container_jump_table_scan_limit, 8);
        assert!(!c.key_preprocessing);
    }

    #[test]
    fn split_threshold_follows_equation_four() {
        let c = HyperionConfig::default();
        assert_eq!(c.split_threshold(0), 16 * 1024);
        assert_eq!(c.split_threshold(1), 80 * 1024);
        assert_eq!(c.split_threshold(3), 208 * 1024);
    }

    #[test]
    fn integer_and_string_profiles_differ_in_eject_threshold() {
        assert_eq!(HyperionConfig::for_integers().eject_threshold, 8 * 1024);
        assert_eq!(HyperionConfig::for_strings().eject_threshold, 16 * 1024);
    }
}

//! Data-parallel container scans: the key-lane sidecar and the
//! [`ContainerScanner`] API.
//!
//! Hyperion's exact-fit node stream is scanned linearly: every find loop
//! decodes one record's key byte at a time and derives the skip distance
//! from the flag byte (see [`crate::read`]).  That layout is the remaining
//! blocker for scan/seek/`get_many` throughput — the key bytes a search
//! actually compares are strewn across the stream, one per record.
//!
//! This module fixes the data layout without giving up the exact-fit
//! stream.  When a map is built with [`ScanBackend::Simd`], every container
//! carries a **key-lane block** between its jump table and its node stream:
//! the explicit keys of all top-level T records and of their S children,
//! grouped contiguously, plus a record-offset sidecar mapping each lane
//! position back to its record.  A search then compares 16/32 key bytes per
//! instruction (SSE2/AVX2 on x86_64, NEON on aarch64, a scalar loop
//! elsewhere) with movemask-style candidate selection, and parses exactly
//! one record — the match.
//!
//! ```text
//! key-lane block (between container jump table and node stream)
//!   0  u16  total block size in bytes (including this header)
//!   2  u16  n_t   number of top-level T records
//!   4  u16  n_s   number of top-level S records
//!   6  t_keys  [n_t]      u8   T keys, ascending
//!      s_base  [n_t + 1]  u16  S children of T record i are s indices
//!                              s_base[i]..s_base[i+1]
//!      t_offs  [n_t]      u32  record offsets, relative to stream start
//!      s_keys  [n_s]      u8   S keys, ascending per T group
//!      s_offs  [n_s]      u32  record offsets, relative to stream start
//! ```
//!
//! Because container-jump-table offsets are stream-start relative and all
//! record jump offsets are record relative, inserting or removing the block
//! is a pure `memmove`: the write engine strips the lane when it opens a
//! container for mutation and re-emits it when the operation completes, so
//! the single-pass engines never see a stale lane.  Embedded containers are
//! never laned (they have no header bit to flag one); their narrow windows
//! scan scalar as before.
//!
//! The backend is selected at build time through
//! [`HyperionDbBuilder::scan_backend`](crate::HyperionDbBuilder::scan_backend)
//! (or [`HyperionConfig::scan_backend`](crate::HyperionConfig)): `Scalar`
//! emits no lanes and reproduces the previous byte layout and scan
//! semantics exactly; `Simd` emits lanes and lets every scanner
//! self-select the lane path wherever a lane is present.  Readers never
//! consult the config — lane presence in the container header is the
//! signal — which keeps mixed states (freshly ejected containers, aborted
//! splits) correct: a missing lane only costs speed, never answers.

use crate::container::ContainerRef;
use crate::node::{parse_s_node, parse_t_node, SNode, TNode};
use crate::node::{HP_SIZE, JS_SIZE, TNODE_JT_SIZE, VALUE_SIZE};
use crate::scan::{cjt_seed, tnode_jt_seed};
use hyperion_mem::MemoryManager;

/// Which scan backend a map emits container layouts for.
///
/// Selected at build time via
/// [`HyperionDbBuilder::scan_backend`](crate::HyperionDbBuilder::scan_backend);
/// both backends answer every query identically (the property tests pin
/// this against a `BTreeMap` oracle), they differ only in layout and speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanBackend {
    /// No key lanes: the exact-fit layout and scan loops of the paper,
    /// byte-for-byte identical to maps built before this backend existed.
    #[default]
    Scalar,
    /// Emit key-lane blocks and search them data-parallel.  The kernel is
    /// chosen at compile time per target: AVX2 when the build enables it,
    /// SSE2 otherwise on x86_64, NEON on aarch64, a scalar sweep elsewhere.
    Simd,
}

impl ScanBackend {
    /// The concrete kernel this backend resolves to on the compiled target
    /// (`"scalar"`, `"sse2"`, `"avx2"` or `"neon"`); surfaced through
    /// [`DbStats`](crate::DbStats) so the active backend is observable.
    pub fn kernel_name(self) -> &'static str {
        match self {
            ScanBackend::Scalar => "scalar",
            ScanBackend::Simd => {
                #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
                {
                    "avx2"
                }
                #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
                {
                    "sse2"
                }
                #[cfg(target_arch = "aarch64")]
                {
                    "neon"
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    "scalar"
                }
            }
        }
    }

    /// Stable numeric id for wire encodings (STATS verb).
    pub fn kernel_id(self) -> u64 {
        match self.kernel_name() {
            "scalar" => 0,
            "sse2" => 1,
            "avx2" => 2,
            "neon" => 3,
            _ => 0,
        }
    }
}

/// Resume state of a lean batched scan: the offset of the next unvisited
/// record and the delta-decoding predecessor key at that offset.  Shared by
/// the scalar and lane-accelerated `*_from` scans — both maintain the same
/// contract, so scalar and SIMD walks can be interleaved freely.
pub struct Resume {
    /// Offset of the next unvisited record (or the region end).
    pub pos: usize,
    /// Key of the record preceding `pos`, `None` when `pos` starts a run.
    pub prev: Option<u8>,
}

// ---------------------------------------------------------------------------
// data-parallel lower bound
// ---------------------------------------------------------------------------

/// Index of the first key `>= target` in the ascending byte slice `keys`
/// (`keys.len()` when none).  The hot kernel of every lane search: compares
/// a full vector register of keys per step and picks the first candidate
/// with a movemask.
#[inline]
pub(crate) fn lower_bound(keys: &[u8], target: u8) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        lower_bound_x86(keys, target)
    }
    #[cfg(target_arch = "aarch64")]
    {
        lower_bound_neon(keys, target)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        lower_bound_scalar(keys, target)
    }
}

/// Portable fallback (and the oracle for the kernel property tests).
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), allow(dead_code))]
#[inline]
fn lower_bound_scalar(keys: &[u8], target: u8) -> usize {
    keys.iter().position(|&k| k >= target).unwrap_or(keys.len())
}

/// x86_64 kernel: 32-byte AVX2 lanes when the build enables the feature
/// (`-C target-feature=+avx2`), 16-byte SSE2 lanes otherwise (SSE2 is part
/// of the x86_64 baseline, so no runtime dispatch is needed).  Unsigned
/// `>=` is expressed as `max(v, t) == v`; the tail is padded with `0xff`
/// (which matches any target) and clamped back to the real length.
#[cfg(target_arch = "x86_64")]
#[inline]
fn lower_bound_x86(keys: &[u8], target: u8) -> usize {
    use std::arch::x86_64::*;
    let len = keys.len();
    let mut i = 0usize;
    unsafe {
        #[cfg(target_feature = "avx2")]
        {
            let t32 = _mm256_set1_epi8(target as i8);
            while i + 32 <= len {
                let v = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
                let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, t32), v);
                let mask = _mm256_movemask_epi8(ge) as u32;
                if mask != 0 {
                    return i + mask.trailing_zeros() as usize;
                }
                i += 32;
            }
        }
        let t = _mm_set1_epi8(target as i8);
        while i + 16 <= len {
            let v = _mm_loadu_si128(keys.as_ptr().add(i) as *const __m128i);
            let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, t), v);
            let mask = _mm_movemask_epi8(ge) as u32;
            if mask != 0 {
                return i + mask.trailing_zeros() as usize;
            }
            i += 16;
        }
        if i < len {
            let mut buf = [0xffu8; 16];
            buf[..len - i].copy_from_slice(&keys[i..]);
            let v = _mm_loadu_si128(buf.as_ptr() as *const __m128i);
            let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, t), v);
            let mask = _mm_movemask_epi8(ge) as u32;
            // 0xff padding always matches, so the mask is never zero here.
            return (i + mask.trailing_zeros() as usize).min(len);
        }
    }
    len
}

/// aarch64 kernel: 16-byte NEON lanes.  NEON has no movemask; the standard
/// idiom narrows the per-byte compare mask to 4 bits per lane (`vshrn`) and
/// takes trailing zeros over the resulting u64.
#[cfg(target_arch = "aarch64")]
#[inline]
fn lower_bound_neon(keys: &[u8], target: u8) -> usize {
    use std::arch::aarch64::*;
    let len = keys.len();
    let mut i = 0usize;
    unsafe {
        let t = vdupq_n_u8(target);
        while i + 16 <= len {
            let v = vld1q_u8(keys.as_ptr().add(i));
            let ge = vcgeq_u8(v, t);
            let m = vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(
                vreinterpretq_u16_u8(ge),
            )));
            if m != 0 {
                return i + (m.trailing_zeros() / 4) as usize;
            }
            i += 16;
        }
        if i < len {
            let mut buf = [0xffu8; 16];
            buf[..len - i].copy_from_slice(&keys[i..]);
            let v = vld1q_u8(buf.as_ptr());
            let ge = vcgeq_u8(v, t);
            let m = vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(
                vreinterpretq_u16_u8(ge),
            )));
            return (i + (m.trailing_zeros() / 4) as usize).min(len);
        }
    }
    len
}

// ---------------------------------------------------------------------------
// key-lane block: layout, parsing, emission
// ---------------------------------------------------------------------------

/// Size of the lane block's fixed header (`total`, `n_t`, `n_s`).
const LANE_HEADER: usize = 6;

/// Only regions with at least this many T records get a lane: below it the
/// scalar walk wins on setup cost alone.
const LANE_MIN_T: usize = 2;

/// Total lane block size for the given record counts.
#[inline]
fn lane_size(n_t: usize, n_s: usize) -> usize {
    LANE_HEADER + n_t + 2 * (n_t + 1) + 4 * n_t + n_s + 4 * n_s
}

/// A parsed, bounds-checked view of a container's key-lane block.
///
/// All accessors re-check nothing: `parse` validates the block's size field
/// against the layout formula and the allocation's capacity once, so a torn
/// optimistic read either fails `parse` or yields in-bounds garbage whose
/// results the seqlock validation discards.
#[derive(Clone, Copy)]
pub(crate) struct LaneView<'a> {
    bytes: &'a [u8],
    /// Absolute offset of the first node-stream byte (lane offsets are
    /// relative to it).
    stream_start: usize,
    n_t: usize,
    n_s: usize,
    t_keys_at: usize,
    s_base_at: usize,
    t_offs_at: usize,
    s_keys_at: usize,
    s_offs_at: usize,
}

impl<'a> LaneView<'a> {
    /// Parses the container's lane block, if present and structurally sound.
    pub(crate) fn parse(c: &'a ContainerRef) -> Option<LaneView<'a>> {
        if !c.has_key_lane() {
            return None;
        }
        let at = c.lane_start();
        let bytes = c.bytes();
        if at + LANE_HEADER > bytes.len() {
            return None;
        }
        let rd16 = |o: usize| u16::from_le_bytes([bytes[o], bytes[o + 1]]) as usize;
        let total = rd16(at);
        let n_t = rd16(at + 2);
        let n_s = rd16(at + 4);
        if total != lane_size(n_t, n_s) || at + total > bytes.len() {
            return None;
        }
        let t_keys_at = at + LANE_HEADER;
        let s_base_at = t_keys_at + n_t;
        let t_offs_at = s_base_at + 2 * (n_t + 1);
        let s_keys_at = t_offs_at + 4 * n_t;
        let s_offs_at = s_keys_at + n_s;
        Some(LaneView {
            bytes,
            stream_start: at + total,
            n_t,
            n_s,
            t_keys_at,
            s_base_at,
            t_offs_at,
            s_keys_at,
            s_offs_at,
        })
    }

    /// The ascending keys of all top-level T records.
    #[inline]
    pub(crate) fn t_keys(&self) -> &'a [u8] {
        &self.bytes[self.t_keys_at..self.t_keys_at + self.n_t]
    }

    /// Absolute offset of T record `i`.
    #[inline]
    pub(crate) fn t_off(&self, i: usize) -> usize {
        let o = self.t_offs_at + 4 * i;
        let rel = u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap()) as usize;
        self.stream_start + rel
    }

    /// Lane predecessor of T record `i` (its previous sibling's key).
    #[inline]
    pub(crate) fn t_prev(&self, i: usize) -> Option<u8> {
        (i > 0).then(|| self.t_keys()[i - 1])
    }

    /// The s-index range of T record `i`'s children.
    #[inline]
    pub(crate) fn s_range(&self, i: usize) -> (usize, usize) {
        let rd = |j: usize| {
            let o = self.s_base_at + 2 * j;
            u16::from_le_bytes([self.bytes[o], self.bytes[o + 1]]) as usize
        };
        let lo = rd(i).min(self.n_s);
        let hi = rd(i + 1).clamp(lo, self.n_s);
        (lo, hi)
    }

    /// The ascending keys of S records `lo..hi`.
    #[inline]
    pub(crate) fn s_keys(&self, lo: usize, hi: usize) -> &'a [u8] {
        &self.bytes[self.s_keys_at + lo..self.s_keys_at + hi]
    }

    /// Absolute offset of S record `i`.
    #[inline]
    pub(crate) fn s_off(&self, i: usize) -> usize {
        let o = self.s_offs_at + 4 * i;
        let rel = u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap()) as usize;
        self.stream_start + rel
    }

    /// Number of top-level T records in the lane.
    #[inline]
    pub(crate) fn t_len(&self) -> usize {
        self.n_t
    }

    /// Lane index of the T record at absolute offset `offset`, if it is a
    /// top-level record.  Embedded T records never alias a lane entry: every
    /// lane offset points at a top-level flag byte.
    #[inline]
    pub(crate) fn t_index_of(&self, offset: usize) -> Option<usize> {
        let rel = offset.checked_sub(self.stream_start)? as u32;
        let rd = |i: usize| {
            let o = self.t_offs_at + 4 * i;
            u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap())
        };
        let (mut lo, mut hi) = (0usize, self.n_t);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match rd(mid).cmp(&rel) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }
}

/// Re-emits `c`'s key-lane block from its current top-level records.
///
/// Strips any existing lane first, walks the region once, and inserts the
/// rebuilt block between the jump table and the stream (a pure gap insert:
/// no stored offset changes meaning, see the module docs).  Skipped — the
/// container is left lane-free, which is always valid — when the region has
/// fewer than [`LANE_MIN_T`] T records, when a count overflows the u16
/// fields, or when the grown container would overflow the 19-bit size
/// field.  Returns `true` when the container's HP changed (the insert can
/// grow the allocation); callers must propagate the new handle exactly as
/// they do for any other growth.
pub(crate) fn emit_key_lane(mm: &mut MemoryManager, c: &mut ContainerRef) -> bool {
    c.strip_key_lane();
    let start = c.stream_start();
    let end = c.stream_end();
    let bytes = c.bytes();
    let mut t_keys: Vec<u8> = Vec::new();
    let mut t_offs: Vec<u32> = Vec::new();
    let mut s_base: Vec<u16> = Vec::new();
    let mut s_keys: Vec<u8> = Vec::new();
    let mut s_offs: Vec<u32> = Vec::new();
    let mut pos = start;
    let mut prev_t = None;
    while pos < end {
        let Some(t) = parse_t_node(bytes, pos, prev_t) else {
            break;
        };
        t_keys.push(t.key);
        t_offs.push((pos - start) as u32);
        s_base.push(s_keys.len() as u16);
        prev_t = Some(t.key);
        pos = t.header_end;
        let mut prev_s = None;
        while pos < end {
            let Some(s) = parse_s_node(bytes, pos, prev_s) else {
                break;
            };
            s_keys.push(s.key);
            s_offs.push((pos - start) as u32);
            prev_s = Some(s.key);
            pos = s.end;
        }
        if s_keys.len() > u16::MAX as usize - 1 {
            return false;
        }
    }
    s_base.push(s_keys.len() as u16);
    let (n_t, n_s) = (t_keys.len(), s_keys.len());
    if n_t < LANE_MIN_T || n_t > u16::MAX as usize {
        return false;
    }
    let total = lane_size(n_t, n_s);
    if total > u16::MAX as usize || c.size() + total >= (1 << 19) {
        return false;
    }
    let mut block = Vec::with_capacity(total);
    block.extend_from_slice(&(total as u16).to_le_bytes());
    block.extend_from_slice(&(n_t as u16).to_le_bytes());
    block.extend_from_slice(&(n_s as u16).to_le_bytes());
    block.extend_from_slice(&t_keys);
    for b in &s_base {
        block.extend_from_slice(&b.to_le_bytes());
    }
    for o in &t_offs {
        block.extend_from_slice(&o.to_le_bytes());
    }
    block.extend_from_slice(&s_keys);
    for o in &s_offs {
        block.extend_from_slice(&o.to_le_bytes());
    }
    debug_assert_eq!(block.len(), total);
    let at = c.lane_start();
    let hp_changed = c.insert_gap(mm, at, total);
    c.bytes_mut()[at..at + total].copy_from_slice(&block);
    c.set_key_lane_flag(true);
    hp_changed
}

/// Structural invariant of the key-lane sidecar, called from
/// [`validate_structure`](crate::HyperionMap::validate_structure): a lane,
/// when present, must describe the top-level region *exactly* — same record
/// count, same keys in the same order, every offset pointing at the record
/// that decodes to its lane key, and every S child attributed to the right
/// T parent.
pub(crate) fn validate_lane(c: &ContainerRef) -> Result<(), String> {
    let Some(lane) = LaneView::parse(c) else {
        return Err("key-lane flag set but lane block does not parse".into());
    };
    let bytes = c.bytes();
    let (start, end) = (c.stream_start(), c.stream_end());
    let mut ti = 0usize;
    let mut si = 0usize;
    let mut pos = start;
    let mut prev_t = None;
    while pos < end && !crate::node::is_invalid(bytes[pos]) {
        let Some(t) = parse_t_node(bytes, pos, prev_t) else {
            return Err(format!("unparsable T record at {pos} under a lane"));
        };
        if ti >= lane.t_len() {
            return Err(format!(
                "lane lists {} T records, region has more",
                lane.t_len()
            ));
        }
        if lane.t_keys()[ti] != t.key || lane.t_off(ti) != pos {
            return Err(format!(
                "lane T entry {ti} is ({}, {}), region has ({}, {pos})",
                lane.t_keys()[ti],
                lane.t_off(ti),
                t.key
            ));
        }
        let (s_lo, s_hi) = lane.s_range(ti);
        if s_lo != si {
            return Err(format!("lane s_base[{ti}] is {s_lo}, expected {si}"));
        }
        prev_t = Some(t.key);
        pos = t.header_end;
        let mut prev_s = None;
        while pos < end {
            let Some(s) = parse_s_node(bytes, pos, prev_s) else {
                break;
            };
            if si >= s_hi || lane.s_keys(si, si + 1)[0] != s.key || lane.s_off(si) != pos {
                return Err(format!(
                    "lane S entry {si} disagrees with record ({}, {pos})",
                    s.key
                ));
            }
            si += 1;
            prev_s = Some(s.key);
            pos = s.end;
        }
        if si != s_hi {
            return Err(format!(
                "lane attributes {} S children to T entry {ti}, region has {}",
                s_hi - s_lo,
                si - s_lo
            ));
        }
        ti += 1;
    }
    if ti != lane.t_len() {
        return Err(format!(
            "lane lists {} T records, region has {ti}",
            lane.t_len()
        ));
    }
    Ok(())
}

/// Lane-accelerated body of
/// [`collect_t_records_trusted_bounded`](crate::scan::collect_t_records_trusted_bounded):
/// iterates the T lane directly instead of hopping record to record, so the
/// reverse cursor's checkpoint pass skips every S-record walk between T
/// siblings.  `None` when the container has no (sound) lane.
pub(crate) fn lane_collect_t_bounded(
    c: &ContainerRef,
    end: usize,
    max_key: Option<u8>,
) -> Option<Vec<TNode>> {
    let lane = LaneView::parse(c)?;
    let keys = lane.t_keys();
    let mut out = Vec::with_capacity(keys.len());
    let mut prev = None;
    for (i, &k) in keys.iter().enumerate() {
        if max_key.is_some_and(|m| k > m) {
            break;
        }
        let off = lane.t_off(i);
        if off >= end {
            break;
        }
        let Some(t) = parse_t_node(c.bytes(), off, prev) else {
            break;
        };
        if t.key != k {
            break; // torn lane: stop, seqlock validation discards the walk
        }
        prev = Some(k);
        out.push(t);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// the scalar find loops (moved verbatim from `read`)
// ---------------------------------------------------------------------------

/// `true` if the flag byte marks unused (zeroed) memory.
#[inline(always)]
fn flag_invalid(flag: u8) -> bool {
    flag & 0b11 == 0
}

/// `true` if the flag byte denotes a T record.
#[inline(always)]
fn flag_is_t(flag: u8) -> bool {
    flag & 0b100 == 0
}

/// `true` if the record stores an inline value (`NodeType::LeafWithValue`).
#[inline(always)]
fn flag_has_value(flag: u8) -> bool {
    flag & 0b11 == 0b11
}

/// Offset just past the S record at `pos`, derived from the flag byte alone
/// (no `SNode` is materialised).
#[inline(always)]
fn s_record_end(bytes: &[u8], pos: usize) -> usize {
    let flag = bytes[pos];
    let explicit = (flag >> 3) & 0b111 == 0;
    let mut cursor =
        pos + 1 + explicit as usize + if flag_has_value(flag) { VALUE_SIZE } else { 0 };
    match (flag >> 6) & 0b11 {
        0 => {}
        1 => cursor += HP_SIZE,
        2 => cursor += (bytes[cursor] as usize).max(1),
        _ => cursor += ((bytes[cursor] & 0x7f) as usize).max(1),
    }
    cursor
}

/// Offset of the T sibling following the record at `pos`, using the
/// jump-successor offset when present and a lean S-record walk otherwise.
#[inline]
fn t_skip(bytes: &[u8], pos: usize, end: usize) -> usize {
    let flag = bytes[pos];
    let explicit = (flag >> 3) & 0b111 == 0;
    let mut cursor =
        pos + 1 + explicit as usize + if flag_has_value(flag) { VALUE_SIZE } else { 0 };
    if flag & (1 << 6) != 0 {
        let v = u16::from_le_bytes([bytes[cursor], bytes[cursor + 1]]) as usize;
        if v != 0 {
            return (pos + v).min(end);
        }
        cursor += JS_SIZE;
    }
    if flag & (1 << 7) != 0 {
        cursor += TNODE_JT_SIZE;
    }
    let mut p = cursor;
    while p < end {
        let f = bytes[p];
        if flag_invalid(f) || flag_is_t(f) {
            break;
        }
        p = s_record_end(bytes, p);
    }
    p.min(end)
}

/// The scalar T find: decodes only each record's key byte, skips
/// mismatching records by flag-derived lengths, parses the match exactly
/// once.  `use_cjt` seeds the start position from the container jump table
/// (valid only when `start` is the container's stream start).
fn t_find_scalar(
    c: &ContainerRef,
    start: usize,
    end: usize,
    target: u8,
    use_cjt: bool,
) -> Option<TNode> {
    let bytes = c.bytes();
    let mut pos = start;
    if use_cjt {
        if let Some(seed) = cjt_seed(c, target, pos, end) {
            pos = seed;
        }
    }
    // The first visited record is always explicit-key (region starts and CJT
    // targets are), so a zero predecessor never leaks into a decoded key.
    let mut prev: u8 = 0;
    while pos < end {
        let flag = bytes[pos];
        if flag_invalid(flag) {
            return None;
        }
        // An S flag here means the stream is torn (optimistic reader racing
        // a writer): miss gracefully, the seqlock validation discards it.
        if !flag_is_t(flag) {
            return None;
        }
        let delta = (flag >> 3) & 0b111;
        let key = if delta == 0 {
            bytes[pos + 1]
        } else {
            prev.wrapping_add(delta)
        };
        if key >= target {
            if key > target {
                return None;
            }
            return parse_t_node(bytes, pos, Some(prev));
        }
        prev = key;
        pos = t_skip(bytes, pos, end);
    }
    None
}

/// Scalar resume-capable T find (see [`ContainerScanner::find_t_from`]).
fn t_find_from_scalar(
    c: &ContainerRef,
    state: &mut Resume,
    end: usize,
    target: u8,
    use_cjt: bool,
) -> Option<TNode> {
    let bytes = c.bytes();
    if use_cjt {
        if let Some(seed) = cjt_seed(c, target, state.pos, end) {
            state.pos = seed;
            state.prev = None;
        }
    }
    loop {
        let pos = state.pos;
        if pos >= end {
            return None;
        }
        let flag = bytes[pos];
        if flag_invalid(flag) {
            return None;
        }
        // Torn stream (see `t_find_scalar`): miss instead of asserting.
        if !flag_is_t(flag) {
            return None;
        }
        let delta = (flag >> 3) & 0b111;
        let key = if delta == 0 {
            bytes[pos + 1]
        } else {
            state.prev.unwrap_or(0).wrapping_add(delta)
        };
        if key >= target {
            if key > target {
                return None;
            }
            let t = parse_t_node(bytes, pos, state.prev);
            // Resume past this record's subtree for the next probe.
            state.pos = t_skip(bytes, pos, end);
            state.prev = Some(key);
            return t;
        }
        state.prev = Some(key);
        state.pos = t_skip(bytes, pos, end);
    }
}

/// Scalar resume-capable S find (see [`ContainerScanner::find_s_from`]).
fn s_find_from_scalar(
    c: &ContainerRef,
    state: &mut Resume,
    end: usize,
    target: u8,
    jt: (usize, Option<usize>),
) -> Option<SNode> {
    let bytes = c.bytes();
    if let (t_off, Some(jt_off)) = jt {
        if let Some(seed) = tnode_jt_seed(c, t_off, jt_off, target, state.pos, end) {
            state.pos = seed;
            state.prev = None;
        }
    }
    loop {
        let pos = state.pos;
        if pos >= end {
            return None;
        }
        let flag = bytes[pos];
        if flag_invalid(flag) || flag_is_t(flag) {
            return None;
        }
        let delta = (flag >> 3) & 0b111;
        let key = if delta == 0 {
            bytes[pos + 1]
        } else {
            state.prev.unwrap_or(0).wrapping_add(delta)
        };
        if key >= target {
            if key > target {
                return None;
            }
            let s = parse_s_node(bytes, pos, state.prev);
            state.pos = s_record_end(bytes, pos);
            state.prev = Some(key);
            return s;
        }
        state.prev = Some(key);
        state.pos = s_record_end(bytes, pos);
    }
}

/// The scalar S find among the children starting at `start`; `jt` carries
/// the owning T record's offset and jump-table offset for seeding.
fn s_find_scalar(
    c: &ContainerRef,
    start: usize,
    end: usize,
    target: u8,
    jt: (usize, Option<usize>),
) -> Option<SNode> {
    let bytes = c.bytes();
    let mut pos = start;
    if let (t_off, Some(jt_off)) = jt {
        if let Some(seed) = tnode_jt_seed(c, t_off, jt_off, target, pos, end) {
            pos = seed;
        }
    }
    let mut prev: u8 = 0;
    while pos < end {
        let flag = bytes[pos];
        if flag_invalid(flag) || flag_is_t(flag) {
            return None;
        }
        let delta = (flag >> 3) & 0b111;
        let key = if delta == 0 {
            bytes[pos + 1]
        } else {
            prev.wrapping_add(delta)
        };
        if key >= target {
            if key > target {
                return None;
            }
            return parse_s_node(bytes, pos, Some(prev));
        }
        prev = key;
        pos = s_record_end(bytes, pos);
    }
    None
}

// ---------------------------------------------------------------------------
// the scanner
// ---------------------------------------------------------------------------

/// A container-region scanner with two interchangeable backends.
///
/// Construction parses the container's key-lane block (when present); every
/// find then self-selects: lane searches for top-level regions of laned
/// containers, the scalar loops everywhere else (embedded windows, unlaned
/// containers, resumes that left the lane's domain).  Both paths honour the
/// same [`Resume`] contract, so they can be mixed within one batch.
///
/// The six find loops of the read engine and cursor route through this API:
/// [`find_t`](Self::find_t)/[`find_s`](Self::find_s) (point descents),
/// [`find_t_from`](Self::find_t_from)/[`find_s_from`](Self::find_s_from)
/// (batched resumes) and [`seek_t`](Self::seek_t)/[`seek_s`](Self::seek_s)
/// (cursor seek seeding).
pub struct ContainerScanner<'a> {
    c: &'a ContainerRef,
    lane: Option<LaneView<'a>>,
    /// Last lane T hit (`record offset`, `lane index`): lets the S-level
    /// find of the same descent skip the offset binary search.
    last_t: Option<(usize, usize)>,
}

impl<'a> ContainerScanner<'a> {
    /// Opens a scanner over one container.  Cheap: a header-bit check plus,
    /// for laned containers, one six-byte header parse.
    pub fn new(c: &'a ContainerRef) -> ContainerScanner<'a> {
        ContainerScanner {
            c,
            lane: LaneView::parse(c),
            last_t: None,
        }
    }

    /// `true` when lane-accelerated paths are active for this container.
    pub fn is_accelerated(&self) -> bool {
        self.lane.is_some()
    }

    /// Finds the T record with key `target` in `[start, end)`, or `None`.
    /// `use_cjt` marks a top-level region scan (required for both the CJT
    /// seed and the lane path; embedded windows pass `false`).
    pub fn find_t(&mut self, start: usize, end: usize, target: u8, use_cjt: bool) -> Option<TNode> {
        if use_cjt {
            if let Some(lane) = self.lane {
                debug_assert_eq!(start, self.c.stream_start());
                let keys = lane.t_keys();
                let idx = lower_bound(keys, target);
                if idx >= keys.len() || keys[idx] != target {
                    return None;
                }
                let off = lane.t_off(idx);
                if off >= end {
                    return None;
                }
                let t = parse_t_node(self.c.bytes(), off, lane.t_prev(idx))
                    .filter(|t| t.key == target)?;
                self.last_t = Some((off, idx));
                return Some(t);
            }
        }
        t_find_scalar(self.c, start, end, target, use_cjt)
    }

    /// Finds the S record with key `target` among `t`'s children.
    pub fn find_s(&mut self, t: &TNode, end: usize, target: u8) -> Option<SNode> {
        if let Some(lane) = self.lane {
            if let Some(ti) = self.lane_t_index(&lane, t.offset) {
                let (lo, hi) = lane.s_range(ti);
                let keys = lane.s_keys(lo, hi);
                let j = lower_bound(keys, target);
                if j >= keys.len() || keys[j] != target {
                    return None;
                }
                let off = lane.s_off(lo + j);
                if off >= end {
                    return None;
                }
                let prev = (j > 0).then(|| keys[j - 1]);
                return parse_s_node(self.c.bytes(), off, prev).filter(|s| s.key == target);
            }
        }
        s_find_scalar(self.c, t.header_end, end, target, (t.offset, t.jt_offset))
    }

    /// Resume-capable T find: continues from (and updates) `state` so a
    /// sorted batch walks each record at most once.  On a match the state
    /// resumes past the record's subtree; on a miss it rests at the first
    /// record past the target with its true delta predecessor — the same
    /// contract for both backends, so later probes may take either path.
    pub fn find_t_from(
        &mut self,
        state: &mut Resume,
        end: usize,
        target: u8,
        use_cjt: bool,
    ) -> Option<TNode> {
        if use_cjt {
            if let Some(lane) = self.lane {
                let keys = lane.t_keys();
                let idx = lower_bound(keys, target);
                if idx >= keys.len() {
                    state.pos = end;
                    return None;
                }
                let off = lane.t_off(idx);
                if off >= end {
                    state.pos = end;
                    return None;
                }
                state.pos = off;
                state.prev = lane.t_prev(idx);
                if keys[idx] != target {
                    return None;
                }
                let t =
                    parse_t_node(self.c.bytes(), off, state.prev).filter(|t| t.key == target)?;
                state.pos = if idx + 1 < keys.len() {
                    lane.t_off(idx + 1).min(end)
                } else {
                    t_skip(self.c.bytes(), off, end)
                };
                state.prev = Some(target);
                self.last_t = Some((off, idx));
                return Some(t);
            }
        }
        t_find_from_scalar(self.c, state, end, target, use_cjt)
    }

    /// Resume-capable S find below the T record described by `jt` (its
    /// offset and jump-table offset); same state contract as
    /// [`find_t_from`](Self::find_t_from).
    pub fn find_s_from(
        &mut self,
        state: &mut Resume,
        end: usize,
        target: u8,
        jt: (usize, Option<usize>),
    ) -> Option<SNode> {
        if let Some(lane) = self.lane {
            if let Some(ti) = self.lane_t_index(&lane, jt.0) {
                let (lo, hi) = lane.s_range(ti);
                let keys = lane.s_keys(lo, hi);
                let j = lower_bound(keys, target);
                if j >= keys.len() {
                    // Past the last child: rest at the next T sibling, where
                    // the scalar loop would stop too.
                    state.pos = if ti + 1 < lane.t_len() {
                        lane.t_off(ti + 1).min(end)
                    } else {
                        end
                    };
                    state.prev = None;
                    return None;
                }
                let off = lane.s_off(lo + j);
                if off >= end {
                    state.pos = end;
                    return None;
                }
                state.pos = off;
                state.prev = (j > 0).then(|| keys[j - 1]);
                if keys[j] != target {
                    return None;
                }
                let s =
                    parse_s_node(self.c.bytes(), off, state.prev).filter(|s| s.key == target)?;
                state.pos = s_record_end(self.c.bytes(), off);
                state.prev = Some(target);
                return Some(s);
            }
        }
        s_find_from_scalar(self.c, state, end, target, jt)
    }

    /// Cursor seek seed at the T level: position and delta predecessor of
    /// the first top-level record with key `>= target` (`end` when none) —
    /// every record skipped sorts below the seek target, the same pruning
    /// argument as the jump-table seeds.  `None` when the container has no
    /// lane (the caller falls back to the container jump table).
    pub fn seek_t(&self, target: u8, end: usize) -> Option<(usize, Option<u8>)> {
        let lane = self.lane?;
        let keys = lane.t_keys();
        let idx = lower_bound(keys, target);
        if idx >= keys.len() {
            return Some((end, None));
        }
        let off = lane.t_off(idx);
        if off >= end {
            return Some((end, None));
        }
        Some((off, lane.t_prev(idx)))
    }

    /// Cursor seek seed at the S level below the top-level T record at
    /// `t_offset`: position and delta predecessor of its first child with
    /// key `>= target` (the next T sibling when none).  `None` when the
    /// container has no lane or the record is not a lane entry (embedded
    /// regions; the caller falls back to the T-node jump table).
    pub fn seek_s(&self, t_offset: usize, target: u8, end: usize) -> Option<(usize, Option<u8>)> {
        let lane = self.lane?;
        let ti = lane.t_index_of(t_offset)?;
        let (lo, hi) = lane.s_range(ti);
        let keys = lane.s_keys(lo, hi);
        let j = lower_bound(keys, target);
        if j >= keys.len() {
            let pos = if ti + 1 < lane.t_len() {
                lane.t_off(ti + 1).min(end)
            } else {
                end
            };
            return Some((pos, None));
        }
        let off = lane.s_off(lo + j);
        if off >= end {
            return Some((end, None));
        }
        Some((off, (j > 0).then(|| keys[j - 1])))
    }

    /// Lane index of the top-level T record at `offset`, consulting the
    /// cached last T hit before binary-searching the offset sidecar.
    #[inline]
    fn lane_t_index(&self, lane: &LaneView<'a>, offset: usize) -> Option<usize> {
        if let Some((off, idx)) = self.last_t {
            if off == offset {
                return Some(idx);
            }
        }
        lane.t_index_of(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::HEADER_SIZE;

    #[test]
    fn lower_bound_matches_scalar_oracle() {
        // Deterministic pseudo-random ascending slices of many lengths,
        // probing every interesting target around each boundary.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for len in [0usize, 1, 2, 7, 15, 16, 17, 31, 32, 33, 64, 100, 255] {
            let mut keys: Vec<u8> = (0..len).map(|_| (rng() & 0xff) as u8).collect();
            keys.sort_unstable();
            keys.dedup();
            for t in 0..=255u8 {
                assert_eq!(
                    lower_bound(&keys, t),
                    lower_bound_scalar(&keys, t),
                    "len {} target {}",
                    keys.len(),
                    t
                );
            }
        }
    }

    #[test]
    fn lane_roundtrip_on_built_container() {
        use crate::builder::{Entry, StreamBuilder};
        use crate::config::HyperionConfig;
        let mut mm = MemoryManager::new();
        let config = HyperionConfig::default();
        let entries: Vec<Entry> = (0u16..60)
            .map(|i| (vec![(i * 4) as u8, (i % 7) as u8], i as u64))
            .collect();
        let stream = {
            let mut b = StreamBuilder::new(&mut mm, &config);
            b.build_stream(None, &entries)
        };
        let mut c = ContainerRef::create(&mut mm, &stream);
        emit_key_lane(&mut mm, &mut c);
        assert!(c.has_key_lane());
        let lane = LaneView::parse(&c).expect("lane parses");
        assert_eq!(lane.t_len(), 60);
        // Every lane entry resolves to a record with the recorded key.
        let keys = lane.t_keys().to_vec();
        for (i, &k) in keys.iter().enumerate() {
            let t = parse_t_node(c.bytes(), lane.t_off(i), lane.t_prev(i)).expect("lane offset");
            assert_eq!(t.key, k);
            let (lo, hi) = lane.s_range(i);
            let skeys = lane.s_keys(lo, hi).to_vec();
            let mut prev = None;
            for (j, &sk) in skeys.iter().enumerate() {
                let s = parse_s_node(c.bytes(), lane.s_off(lo + j), prev).expect("s lane offset");
                assert_eq!(s.key, sk);
                prev = Some(sk);
            }
        }
        // Scanner finds every key through the lane path.
        let mut scanner = ContainerScanner::new(&c);
        assert!(scanner.is_accelerated());
        let end = c.stream_end();
        for i in 0u16..60 {
            let t = scanner
                .find_t(c.stream_start(), end, (i * 4) as u8, true)
                .expect("lane find_t");
            let s = scanner.find_s(&t, end, (i % 7) as u8).expect("lane find_s");
            assert_eq!(s.key, (i % 7) as u8);
        }
        assert!(scanner.find_t(c.stream_start(), end, 1, true).is_none());
        // Stripping restores the original stream bytes at the lane start.
        let before = c.stream_start();
        c.strip_key_lane();
        assert!(!c.has_key_lane());
        assert!(before > c.stream_start());
        assert_eq!(c.stream_start(), HEADER_SIZE);
    }

    #[test]
    fn tiny_regions_stay_unlaned() {
        let mut mm = MemoryManager::new();
        let mut c = ContainerRef::create(&mut mm, &[]);
        assert!(!emit_key_lane(&mut mm, &mut c));
        assert!(!c.has_key_lane());
    }
}

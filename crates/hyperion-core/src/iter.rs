//! Stateful cursors and lazy ordered iterators over the Hyperion trie.
//!
//! This module is the single traversal engine for every ordered read: the
//! [`Cursor`] walks the container/node byte stream *incrementally* with an
//! explicit frame stack, so keys are produced one at a time without ever
//! materialising the key set.  Everything else — [`Iter`], [`Range`],
//! [`Prefix`], the callback helpers (`range_from`, `for_each`) and the
//! [`crate::OrderedRead`] trait plumbing — is a thin adapter over it.
//!
//! ```
//! use hyperion_core::HyperionMap;
//!
//! let map: HyperionMap = [(b"that".to_vec(), 1), (b"the".to_vec(), 2), (b"to".to_vec(), 3)]
//!     .into_iter()
//!     .collect();
//!
//! // Lazy range scan: no Vec of keys is built behind the scenes.
//! let hits: Vec<_> = map.range(&b"th"[..]..&b"ti"[..]).map(|(k, _)| k).collect();
//! assert_eq!(hits, vec![b"that".to_vec(), b"the".to_vec()]);
//!
//! // Seek-and-step with an explicit cursor.
//! let mut cur = map.cursor();
//! cur.seek(b"the");
//! assert_eq!(cur.next(), Some((b"the".to_vec(), 2)));
//! assert_eq!(cur.next(), Some((b"to".to_vec(), 3)));
//! assert_eq!(cur.next(), None);
//! ```

use crate::container::{ContainerHandle, ContainerRef};
use crate::node::{
    is_invalid, is_t_node, parse_pc_node, parse_s_node, parse_t_node, ChildKind, SNode, TNode,
};
use crate::scan::{
    cjt_seed, collect_s_records_from, collect_t_records_trusted_bounded, skip_t_children,
    tnode_jt_seed,
};
use crate::scan_kernel::ContainerScanner;
use crate::trie::HyperionMap;
use hyperion_mem::HyperionPointer;
use std::cmp::Ordering;
use std::ops::{Bound, RangeBounds};

/// Computes the exclusive upper bound of the key range sharing `prefix`:
/// the smallest byte string greater than every key starting with `prefix`.
/// Returns `None` when no such bound exists (`prefix` is empty or all `0xff`).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(&last) = end.last() {
        if last == 0xff {
            end.pop();
        } else {
            *end.last_mut().unwrap() += 1;
            return Some(end);
        }
    }
    None
}

/// `true` if every key below the subtree identified by `prefix` is strictly
/// smaller than `start` (prune condition for seeks).
#[inline]
fn subtree_before_start(prefix: &[u8], start: &[u8]) -> bool {
    let l = prefix.len().min(start.len());
    prefix[..l] < start[..l]
}

/// One suspended position inside the depth-first walk of the trie.
///
/// The stack discipline mirrors the byte-stream layout: a `Tops` frame walks
/// the T records of one container region, pushing one `Subs` frame per
/// T record; a `Subs` frame walks that T-node's S children, pushing child
/// frames (embedded regions, standalone containers, chained bins or
/// path-compressed emissions) on top of itself.  When a `Subs` frame is
/// exhausted it has, as a side effect, discovered the offset of the next
/// T sibling and writes it back into its parent `Tops` frame.
///
/// `Tops` and `Subs` frames carry the *resolved* [`ContainerRef`] (raw
/// pointer + capacity), not just the handle: the container is opened once
/// when the frame is created instead of on every advance step.  The cached
/// pointer stays valid because the cursor's shared borrow of the map
/// prevents any reallocation while frames are live.
enum Frame {
    /// Iterate the valid slots of a chained extended bin in key order.
    Chain {
        head: HyperionPointer,
        slots: Vec<usize>,
        next: usize,
        base: usize,
    },
    /// Walk the T records of the region `[pos, end)` of one container.
    Tops {
        c: ContainerRef,
        pos: usize,
        end: usize,
        prev_key: Option<u8>,
        base: usize,
    },
    /// Walk the S children of the current T record, starting at `pos`.
    Subs {
        c: ContainerRef,
        pos: usize,
        end: usize,
        prev_key: Option<u8>,
        base: usize,
    },
    /// A fully materialised pending emission (path-compressed suffix).
    Emit { key: Vec<u8>, value: u64 },
}

/// One suspended position of the *backward* walk.
///
/// The byte stream only links forward (delta-encoded siblings, jump
/// successors), so the reverse engine works by *checkpointing*: when a region
/// is entered, one forward scan records every sibling offset (bounded by the
/// seek target — siblings above the bound are never collected), and the
/// resulting records are pushed in ascending order so the stack pops them in
/// descending order.  Each frame expands on pop: a `Region` expands to its
/// `TRec`s, a `TRec` to its value emission plus its `SRec`s, an `SRec` to its
/// value emission plus its child subtree — always pushing what must be
/// emitted *last* (the shortest key) first.
enum RevFrame {
    /// A pointer child (chained extended bin or standalone container).
    Pointer { hp: HyperionPointer, base: usize },
    /// One slot of a chained extended bin, visited in descending slot order.
    Slot {
        head: HyperionPointer,
        index: usize,
        base: usize,
    },
    /// The T records of the region `[start, end)` of one container.
    Region {
        c: ContainerRef,
        start: usize,
        end: usize,
        base: usize,
    },
    /// One checkpointed T record with its children region.
    TRec {
        c: ContainerRef,
        t: TNode,
        end: usize,
        base: usize,
    },
    /// One checkpointed S record.
    SRec {
        c: ContainerRef,
        s: SNode,
        base: usize,
    },
    /// A deferred run of S records `[start, end)` below a jump-table seed:
    /// expanded lazily only when the walk backtracks past the seed.
    SRun {
        c: ContainerRef,
        start: usize,
        end: usize,
        base: usize,
    },
    /// Emit `prefix[..len]` with `value`; pops after every deeper frame, so
    /// the truncated prefix is exactly the key that terminates here.
    EmitAt { len: usize, value: u64 },
    /// A fully materialised pending emission (path-compressed suffix).
    EmitKey { key: Vec<u8>, value: u64 },
}

/// Per-level pruning decision of the backward walk: which sibling keys of a
/// region at key depth `base` can still reach keys within the seek bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LevelCut {
    /// No restriction (bound already passed, or this path is below it).
    All,
    /// Only siblings with key `<= byte` can hold in-bound keys.
    UpTo(u8),
    /// Every key below this path exceeds the bound: skip the region.
    Nothing,
}

impl LevelCut {
    #[inline]
    fn max_key(self) -> Option<u8> {
        match self {
            LevelCut::All => None,
            LevelCut::UpTo(b) => Some(b),
            LevelCut::Nothing => unreachable!("Nothing regions are never scanned"),
        }
    }
}

/// A stateful, *bidirectional* cursor over a [`HyperionMap`].
///
/// The cursor walks the exact-fit container byte stream incrementally: each
/// [`Cursor::next`] call parses just enough T/S records to reach the next
/// key/value pair, in ascending key order.  [`Cursor::seek`] repositions the
/// cursor at the first key `>= target`, pruning whole subtrees (and using
/// jump successors to skip over their byte ranges) on the way down.
///
/// The backward walk mirrors it: [`Cursor::seek_last`] positions past the
/// greatest key, [`Cursor::seek_for_pred`] just after the last key
/// `<= target`, and [`Cursor::prev`] steps to strictly smaller keys.  Because
/// the byte stream only links forward, the reverse engine checkpoints each
/// region it enters with one bounded forward scan (recording the sibling
/// offsets at or below the seek target) and replays the checkpoints in
/// descending order — see the `RevFrame` docs in this module's source.
///
/// Direction can be switched mid-walk: the reference point is always the
/// *last returned key* (or, before anything was returned, the seek target).
/// `next()` returns the smallest stored key strictly greater than that
/// reference, `prev()` the greatest strictly smaller one — neither ever
/// returns the same key twice in a row.
///
/// Keys handed out are in the *original* key space: when the map was built
/// with key pre-processing, the cursor transforms the seek target and
/// restores emitted keys transparently.  Pre-processing is order-preserving
/// only for keys of uniform width (see
/// [`crate::HyperionConfig::with_preprocessing`]); with mixed key widths the
/// cursor's order follows the transformed byte stream, not the original keys.
pub struct Cursor<'a> {
    map: &'a HyperionMap,
    stack: Vec<Frame>,
    /// Backward frame stack; live only while `backward` is set.
    rstack: Vec<RevFrame>,
    /// Current (transformed) key prefix along the active root-to-node path.
    prefix: Vec<u8>,
    /// Transformed seek bound; emission starts at the first key `>= start`
    /// (`> start` for an exclusive seek).
    start: Vec<u8>,
    /// Exclusive seek bound: the resume protocol used by `DbScan` chunk
    /// refills and excluded range starts — skip a key equal to the bound.
    exclusive: bool,
    /// Set once the first in-bound key was emitted; disables bound checks.
    started: bool,
    /// The empty key is stored out-of-line and emitted before the root walk.
    pending_empty: bool,
    /// `true` while the cursor walks backward (`prev` steps).
    backward: bool,
    /// Transformed backward seek bound (`None` after `seek_last`): emission
    /// starts at the last key `<= bound` (`< bound` when not inclusive).
    bound: Option<Vec<u8>>,
    /// Whether a key equal to the backward bound is yielded.
    bound_inclusive: bool,
    /// The empty key sorts first, so the backward walk emits it *last*.
    rpending_empty: bool,
    /// Last key returned by `next`/`prev` (transformed space), the reference
    /// point for direction turn-arounds.  Buffer reused across steps.
    last_key: Vec<u8>,
    has_last: bool,
    /// Pending forward continuation of a shortcut-seeded seek: the cached
    /// container only covers keys strictly extending `start[..d]`, so when
    /// the seeded walk runs dry the cursor re-seeks (without the shortcut)
    /// at the prefix's exclusive upper bound.  `None` both when no seeding
    /// happened and when nothing sorts above the subtree (all-`0xff` prefix).
    fwd_cont: Option<Vec<u8>>,
    /// Pending backward continuation of a shortcut-seeded predecessor seek:
    /// the seeded prefix itself, re-entered as an *inclusive* backward bound
    /// (a key equal to the prefix lives in the parent container, not below
    /// the cached one, so the continuation must admit it).
    bwd_cont: Option<Vec<u8>>,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor positioned at the first key of the map.
    pub fn new(map: &'a HyperionMap) -> Cursor<'a> {
        let mut cursor = Cursor {
            map,
            stack: Vec::new(),
            rstack: Vec::new(),
            prefix: Vec::new(),
            start: Vec::new(),
            exclusive: false,
            started: false,
            pending_empty: false,
            backward: false,
            bound: None,
            bound_inclusive: false,
            rpending_empty: false,
            last_key: Vec::new(),
            has_last: false,
            fwd_cont: None,
            bwd_cont: None,
        };
        cursor.seek(&[]);
        cursor
    }

    /// Repositions the cursor at the first key `>= target` (original key
    /// space).  Seeking past the last key leaves the cursor exhausted.
    pub fn seek(&mut self, target: &[u8]) {
        self.seek_impl(target, false);
    }

    /// Repositions the cursor at the first key *strictly greater than*
    /// `target` — the resume primitive: a scan that consumed up to some key
    /// continues after it without re-yielding or re-comparing it.  Used by
    /// `DbScan` chunk refills and excluded range start bounds.
    pub fn seek_exclusive(&mut self, target: &[u8]) {
        self.seek_impl(target, true);
    }

    fn seek_impl(&mut self, target: &[u8], exclusive: bool) {
        // Re-fill the owned bound in place: repeated seeks (chunked scans
        // re-seek per refill) reuse the buffer instead of allocating.
        let transformed = self.map.transform_key(target);
        self.start.clear();
        self.start.extend_from_slice(&transformed);
        self.exclusive = exclusive;
        self.seek_fwd_start(true);
    }

    /// (Re-)enters forward mode with `self.start`/`self.exclusive` already
    /// set — the shared tail of `seek_impl` and the `next()` turn-around.
    ///
    /// With `use_shortcut` set, the hashed shortcut layer is probed with the
    /// seek target: on a hit at depth `d` the descent starts directly at the
    /// cached deep container (prefix pre-filled, container/T-node jump
    /// tables still seed within it), skipping every level above.  The cached
    /// container only holds keys strictly extending `start[..d]`, so the
    /// rest of the key space is deferred as a continuation re-seek at the
    /// prefix's upper bound (see [`Cursor::next_transformed`]); keys in
    /// `[start, upper_bound)` all carry the prefix, so none are skipped.
    fn seek_fwd_start(&mut self, use_shortcut: bool) {
        self.started = false;
        self.has_last = false;
        self.backward = false;
        self.prefix.clear();
        self.stack.clear();
        self.rstack.clear();
        self.rpending_empty = false;
        self.pending_empty = true;
        self.fwd_cont = None;
        self.bwd_cont = None;
        let Some(root) = self.map.root_pointer() else {
            return;
        };
        if use_shortcut {
            if let Some((d, hp)) = self.map.shortcut.probe(&self.start) {
                self.fwd_cont = prefix_upper_bound(&self.start[..d]);
                let Cursor { prefix, start, .. } = self;
                prefix.extend_from_slice(&start[..d]);
                self.push_pointer(hp, d);
                return;
            }
        }
        self.push_pointer(root, 0);
    }

    /// Positions the cursor just past the greatest key: the next
    /// [`Cursor::prev`] returns the last key/value pair of the map.
    pub fn seek_last(&mut self) {
        self.bound = None;
        self.seek_back_start(false, false);
    }

    /// Positions the cursor just past the last key `<= target` (original key
    /// space): the next [`Cursor::prev`] returns that key — the predecessor
    /// seek, mirroring [`Cursor::seek`] on the other side.
    pub fn seek_for_pred(&mut self, target: &[u8]) {
        self.seek_back_impl(target, true);
    }

    /// Positions the cursor just past the last key *strictly less than*
    /// `target` — the backward resume primitive used by reverse `DbScan`
    /// chunk refills and by [`HyperionMap::pred`].
    pub fn seek_for_pred_exclusive(&mut self, target: &[u8]) {
        self.seek_back_impl(target, false);
    }

    fn seek_back_impl(&mut self, target: &[u8], inclusive: bool) {
        let transformed = self.map.transform_key(target);
        let mut bound = self.bound.take().unwrap_or_default();
        bound.clear();
        bound.extend_from_slice(&transformed);
        self.bound = Some(bound);
        self.seek_back_start(inclusive, true);
    }

    /// (Re-)enters backward mode with `self.bound` already set.
    ///
    /// With `use_shortcut` set, the hashed shortcut layer is probed with the
    /// bound (skipped after `seek_last`, which has none): on a hit at depth
    /// `d` the backward walk starts inside the cached deep container.  Keys
    /// at or below the prefix itself — including the prefix key, which lives
    /// in the *parent* container — and the out-of-line empty key re-enter
    /// through an inclusive continuation re-seek at the prefix (see
    /// [`Cursor::prev_transformed`]).
    fn seek_back_start(&mut self, inclusive: bool, use_shortcut: bool) {
        self.bound_inclusive = inclusive;
        self.started = false;
        self.has_last = false;
        self.backward = true;
        self.prefix.clear();
        self.stack.clear();
        self.rstack.clear();
        self.pending_empty = false;
        self.rpending_empty = true;
        self.fwd_cont = None;
        self.bwd_cont = None;
        let Some(root) = self.map.root_pointer() else {
            return;
        };
        if use_shortcut {
            let hit = self
                .bound
                .as_deref()
                .and_then(|b| self.map.shortcut.probe(b));
            if let Some((d, hp)) = hit {
                let seeded = self.bound.as_deref().expect("probed bound")[..d].to_vec();
                self.prefix.extend_from_slice(&seeded);
                self.bwd_cont = Some(seeded);
                self.rpending_empty = false;
                self.rstack.push(RevFrame::Pointer { hp, base: d });
                return;
            }
        }
        self.rstack.push(RevFrame::Pointer { hp: root, base: 0 });
    }

    /// Records the last returned key (transformed space) for turn-arounds.
    #[inline]
    fn remember(&mut self, key: &[u8]) {
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.has_last = true;
    }

    /// Returns the next key/value pair in ascending order, or `None` when the
    /// map is exhausted.
    ///
    /// When the cursor is in backward mode, this *turns around*: it returns
    /// the smallest key strictly greater than the last returned key (or, if
    /// nothing was returned since the seek, the first key the backward seek
    /// bound excludes upward).  The turn-around re-seeks, so alternating
    /// `next`/`prev` costs a descent per switch.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.backward {
            if self.has_last {
                let anchor = std::mem::take(&mut self.last_key);
                self.start.clear();
                self.start.extend_from_slice(&anchor);
                self.last_key = anchor;
                self.exclusive = true;
                self.seek_fwd_start(true);
                // The last returned key stays the reference point: if this
                // step comes up dry, a later `prev()` must anchor on it
                // (exclusively), not on the re-seek bound.
                self.has_last = true;
            } else {
                match self.bound.take() {
                    // After `seek_last` the cursor sits past every key.
                    None => return None,
                    Some(bound) => {
                        self.start.clear();
                        self.start.extend_from_slice(&bound);
                        self.bound = Some(bound);
                        // Backward-inclusive bound b admits b itself, so the
                        // forward continuation starts strictly above it.
                        self.exclusive = self.bound_inclusive;
                        self.seek_fwd_start(true);
                    }
                }
            }
        }
        let (key, value) = self.next_transformed()?;
        self.remember(&key);
        Some((self.map.restore_key_bytes(&key), value))
    }

    /// Returns the previous key/value pair in descending order, or `None`
    /// when the walk reached below the first key.
    ///
    /// In forward mode this turns around symmetrically to [`Cursor::next`]:
    /// it returns the greatest key strictly smaller than the last returned
    /// key (or, with nothing returned since the seek, the last key below the
    /// forward seek bound).
    pub fn prev(&mut self) -> Option<(Vec<u8>, u64)> {
        if !self.backward {
            if self.has_last {
                let anchor = std::mem::take(&mut self.last_key);
                let mut bound = self.bound.take().unwrap_or_default();
                bound.clear();
                bound.extend_from_slice(&anchor);
                self.last_key = anchor;
                self.bound = Some(bound);
                self.seek_back_start(false, true);
                // Keep the reference point across the turn-around (see
                // `next`): a dry backward step must not forget it.
                self.has_last = true;
            } else {
                let mut bound = self.bound.take().unwrap_or_default();
                bound.clear();
                bound.extend_from_slice(&self.start);
                self.bound = Some(bound);
                // A forward-exclusive seek at t admits everything <= t on
                // the backward side; an inclusive one only everything < t.
                let inclusive = self.exclusive;
                self.seek_back_start(inclusive, true);
            }
        }
        let (key, value) = self.prev_transformed()?;
        self.remember(&key);
        Some((self.map.restore_key_bytes(&key), value))
    }

    /// `true` if `key` (transformed space) is within the seek bound; flips
    /// `started` on the first hit so later comparisons are skipped.
    #[inline]
    fn passes(&mut self, key: &[u8]) -> bool {
        if self.started {
            return true;
        }
        let within = if self.exclusive {
            key > self.start.as_slice()
        } else {
            key >= self.start.as_slice()
        };
        if within {
            self.started = true;
        }
        within
    }

    /// Pushes the frame(s) for the container(s) referenced by `hp`.
    fn push_pointer(&mut self, hp: HyperionPointer, base: usize) {
        // A torn pointer read (optimistic reader racing a writer) could cycle
        // the descent through an ancestor container; a quiescent trie's depth
        // is bounded by its longest key.  The panic is caught by the
        // optimistic read's unwind backstop and the attempt retried.
        assert!(
            self.stack.len() < (1 << 16) && base < (1 << 20),
            "cursor descent exceeded any plausible trie depth (torn read?)"
        );
        let mm = self.map.memory_manager();
        if hp.superbin() == 0 && mm.is_chained(hp) {
            self.stack.push(Frame::Chain {
                head: hp,
                slots: mm.chained_valid_slots(hp),
                next: 0,
                base,
            });
        } else {
            let c = ContainerRef::open(mm, ContainerHandle::Standalone(hp));
            let ((pos, prev_key), end) = (self.seek_seed(&c, base), c.stream_end());
            self.stack.push(Frame::Tops {
                c,
                pos,
                end,
                prev_key,
                base,
            });
        }
    }

    /// The initial S-walk position (and its delta predecessor) below the T
    /// record `t` for a cursor at key depth `base`: when the cursor is still
    /// seeking and `t` lies exactly on the seek path, the key lane jumps to
    /// the first child at or past the target byte (its predecessor comes
    /// from the lane) and the T-node jump table seeds the best explicit-key
    /// slot otherwise; off the seek path the walk starts at the first child.
    fn subs_seed(
        &self,
        c: &ContainerRef,
        t: &crate::node::TNode,
        base: usize,
        end: usize,
    ) -> (usize, Option<u8>) {
        let default = (t.header_end, None);
        if !self.on_seek_path(base) {
            return default;
        }
        let target = self.start[base];
        // Skipping every child below the target is sound on the seek path:
        // each skipped child's subtree precedes the seek target (the same
        // pruning argument as the jump-table seed, which can only land *at
        // or below* the target rather than past it).
        if let Some(seed) = ContainerScanner::new(c).seek_s(t.offset, target, end) {
            return seed;
        }
        let Some(jt_off) = t.jt_offset else {
            return default;
        };
        (
            tnode_jt_seed(c, t.offset, jt_off, target, default.0, end).unwrap_or(default.0),
            None,
        )
    }

    /// `true` while the cursor is still seeking and the path walked so far
    /// equals the seek prefix up to `base` (with a target byte at `base`):
    /// only then may a jump table skip records, because everything skipped
    /// sorts below the seek target and would be pruned anyway.
    fn on_seek_path(&self, base: usize) -> bool {
        !self.started
            && base < self.start.len()
            && self.prefix.len() >= base
            && self.prefix[..base] == self.start[..base]
    }

    /// The initial T-walk position (and its delta predecessor) for a
    /// container entered at key depth `base`: when the cursor is still
    /// seeking and this container lies exactly on the seek path, the key
    /// lane jumps to the first record at or past the seek byte and the
    /// container jump table seeds its best entry otherwise; off the seek
    /// path the walk starts at the stream start.
    ///
    /// Seeding is sound because every T record skipped over has a key below
    /// the seek byte, so its whole subtree precedes the seek target — the
    /// walk would have pruned it record by record.  CJT entries reference
    /// explicit-key records, so that path resumes without a predecessor;
    /// lane seeds carry the skipped sibling's key for delta decoding.
    fn seek_seed(&self, c: &ContainerRef, base: usize) -> (usize, Option<u8>) {
        let default = (c.stream_start(), None);
        if !self.on_seek_path(base) {
            return default;
        }
        let target = self.start[base];
        let end = c.stream_end();
        if let Some(seed) = ContainerScanner::new(c).seek_t(target, end) {
            return seed;
        }
        (
            cjt_seed(c, target, default.0, end).unwrap_or(default.0),
            None,
        )
    }

    /// [`Cursor::next_transformed_inner`] plus the shortcut-continuation
    /// protocol: a shortcut-seeded seek only walks the cached deep subtree,
    /// so when that walk runs dry the cursor re-seeks — without the shortcut
    /// — at the seeded prefix's upper bound and keeps going.  The turn-around
    /// reference point survives the re-seek.
    fn next_transformed(&mut self) -> Option<(Vec<u8>, u64)> {
        loop {
            if let Some(pair) = self.next_transformed_inner() {
                return Some(pair);
            }
            let cont = self.fwd_cont.take()?;
            let saved_has_last = self.has_last;
            self.start.clear();
            self.start.extend_from_slice(&cont);
            self.exclusive = false;
            self.seek_fwd_start(false);
            self.has_last = saved_has_last;
        }
    }

    /// The traversal engine: advances the frame stack until the next
    /// key/value pair (in transformed key space) is produced.
    fn next_transformed_inner(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.pending_empty {
            self.pending_empty = false;
            if let Some(v) = self.map.empty_key_value() {
                if self.passes(&[]) {
                    return Some((Vec::new(), v));
                }
            }
        }
        loop {
            let frame = self.stack.pop()?;
            match frame {
                Frame::Emit { key, value } => {
                    if self.passes(&key) {
                        return Some((key, value));
                    }
                }
                Frame::Chain {
                    head,
                    slots,
                    mut next,
                    base,
                } => {
                    self.prefix.truncate(base);
                    if next >= slots.len() {
                        continue;
                    }
                    let index = slots[next];
                    next += 1;
                    self.stack.push(Frame::Chain {
                        head,
                        slots,
                        next,
                        base,
                    });
                    let handle = ContainerHandle::ChainSlot { head, index };
                    let c = ContainerRef::open(self.map.memory_manager(), handle);
                    let ((pos, prev_key), end) = (self.seek_seed(&c, base), c.stream_end());
                    self.stack.push(Frame::Tops {
                        c,
                        pos,
                        end,
                        prev_key,
                        base,
                    });
                }
                Frame::Tops {
                    c,
                    mut pos,
                    end,
                    mut prev_key,
                    base,
                } => {
                    self.prefix.truncate(base);
                    let bytes = c.bytes();
                    if pos >= end || is_invalid(bytes[pos]) {
                        continue; // region exhausted: frame stays popped
                    }
                    let t = parse_t_node(bytes, pos, prev_key).expect("corrupt T record");
                    prev_key = Some(t.key);
                    self.prefix.push(t.key);
                    if !self.started && subtree_before_start(&self.prefix, &self.start) {
                        // The whole T subtree precedes the seek target: use the
                        // jump successor (when present) to skip its byte range.
                        pos = skip_t_children(&c, &t, end);
                        self.stack.push(Frame::Tops {
                            c,
                            pos,
                            end,
                            prev_key,
                            base,
                        });
                        continue;
                    }
                    let value = t.value_offset.map(|off| c.read_u64(off));
                    self.stack.push(Frame::Tops {
                        c: c.clone(),
                        pos,
                        end,
                        prev_key,
                        base,
                    });
                    // While still seeking along the target path, the T-node
                    // jump table (when present) positions the S walk close
                    // to the target byte — same pruning argument as
                    // `seek_seed`, one level down.
                    let (sub_pos, sub_prev) = self.subs_seed(&c, &t, base + 1, end);
                    // The Subs frame discovers the next T sibling offset and
                    // writes it back into the Tops frame when it pops.
                    self.stack.push(Frame::Subs {
                        c,
                        pos: sub_pos,
                        end,
                        prev_key: sub_prev,
                        base: base + 1,
                    });
                    if let Some(value) = value {
                        let key = self.prefix.clone();
                        if self.passes(&key) {
                            return Some((key, value));
                        }
                    }
                }
                Frame::Subs {
                    c,
                    mut pos,
                    end,
                    mut prev_key,
                    base,
                } => {
                    self.prefix.truncate(base);
                    let bytes = c.bytes();
                    if pos >= end || is_invalid(bytes[pos]) || is_t_node(bytes[pos]) {
                        // All S children consumed: `pos` is the next T sibling.
                        if let Some(Frame::Tops { pos: t_pos, .. }) = self.stack.last_mut() {
                            *t_pos = pos;
                        }
                        continue;
                    }
                    let s = parse_s_node(bytes, pos, prev_key).expect("corrupt S record");
                    pos = s.end;
                    prev_key = Some(s.key);
                    self.prefix.push(s.key);
                    if !self.started && subtree_before_start(&self.prefix, &self.start) {
                        self.prefix.pop();
                        self.stack.push(Frame::Subs {
                            c,
                            pos,
                            end,
                            prev_key,
                            base,
                        });
                        continue;
                    }
                    let value = s.value_offset.map(|off| c.read_u64(off));
                    // Push the child subtree above the resumed Subs frame so it
                    // is visited *after* the value stored at this node
                    // (shorter keys sort first).
                    match s.child {
                        ChildKind::None => {
                            self.stack.push(Frame::Subs {
                                c,
                                pos,
                                end,
                                prev_key,
                                base,
                            });
                        }
                        ChildKind::PathCompressed => {
                            let (has_value, pc_value, range) =
                                parse_pc_node(bytes, s.child_offset.expect("pc child offset"));
                            let emit = has_value.then(|| {
                                let mut key = self.prefix.clone();
                                key.extend_from_slice(&bytes[range]);
                                (key, pc_value)
                            });
                            self.stack.push(Frame::Subs {
                                c,
                                pos,
                                end,
                                prev_key,
                                base,
                            });
                            if let Some((key, value)) = emit {
                                self.stack.push(Frame::Emit { key, value });
                            }
                        }
                        ChildKind::Embedded => {
                            let child_off = s.child_offset.expect("embedded child offset");
                            let size = bytes[child_off] as usize;
                            self.stack.push(Frame::Subs {
                                c: c.clone(),
                                pos,
                                end,
                                prev_key,
                                base,
                            });
                            self.stack.push(Frame::Tops {
                                c,
                                pos: child_off + 1,
                                end: child_off + size,
                                prev_key: None,
                                base: base + 1,
                            });
                        }
                        ChildKind::Pointer => {
                            let hp = c.read_hp(s.child_offset.expect("pointer child offset"));
                            self.stack.push(Frame::Subs {
                                c,
                                pos,
                                end,
                                prev_key,
                                base,
                            });
                            self.push_pointer(hp, base + 1);
                        }
                    }
                    if let Some(value) = value {
                        let key = self.prefix.clone();
                        if self.passes(&key) {
                            return Some((key, value));
                        }
                    }
                }
            }
        }
    }

    /// `true` if `key` (transformed space) is within the backward seek bound;
    /// flips `started` on the first hit.  Keys are produced in descending
    /// order, so once one key passes every later key passes too.
    #[inline]
    fn passes_back(&mut self, key: &[u8]) -> bool {
        if self.started {
            return true;
        }
        let within = match &self.bound {
            None => true,
            Some(b) => {
                if self.bound_inclusive {
                    key <= b.as_slice()
                } else {
                    key < b.as_slice()
                }
            }
        };
        if within {
            self.started = true;
        }
        within
    }

    /// Pruning decision for a region at key depth `base` during the backward
    /// descent: the *minimum* key below a sibling with key byte `k` is
    /// exactly `prefix[..base] ++ [k]`, so a sibling can be skipped as soon
    /// as that candidate exceeds the bound — and since siblings ascend, the
    /// checkpoint scan can stop at the first over-bound key byte.
    fn rev_level_cut(&self, base: usize) -> LevelCut {
        if self.started {
            return LevelCut::All;
        }
        let Some(bound) = &self.bound else {
            return LevelCut::All;
        };
        let b = bound.as_slice();
        if base <= b.len() {
            match self.prefix[..base].cmp(&b[..base]) {
                Ordering::Less => LevelCut::All,
                Ordering::Greater => LevelCut::Nothing,
                Ordering::Equal => {
                    if base == b.len() {
                        // Every key below extends the bound: strictly greater.
                        LevelCut::Nothing
                    } else {
                        LevelCut::UpTo(b[base])
                    }
                }
            }
        } else {
            // The path is already longer than the bound: in bound only if it
            // compares below; extending an exact bound match exceeds it.
            match self.prefix[..b.len()].cmp(b) {
                Ordering::Less => LevelCut::All,
                _ => LevelCut::Nothing,
            }
        }
    }

    /// [`Cursor::prev_transformed_inner`] plus the shortcut-continuation
    /// protocol mirroring [`Cursor::next_transformed`]: when the seeded
    /// backward walk runs dry, re-enter below (and including) the seeded
    /// prefix via an inclusive backward re-seek without the shortcut.
    fn prev_transformed(&mut self) -> Option<(Vec<u8>, u64)> {
        loop {
            if let Some(pair) = self.prev_transformed_inner() {
                return Some(pair);
            }
            let cont = self.bwd_cont.take()?;
            let saved_has_last = self.has_last;
            let mut bound = self.bound.take().unwrap_or_default();
            bound.clear();
            bound.extend_from_slice(&cont);
            self.bound = Some(bound);
            self.seek_back_start(true, false);
            self.has_last = saved_has_last;
        }
    }

    /// The backward traversal engine: advances the reverse frame stack until
    /// the next key/value pair in *descending* (transformed) key order is
    /// produced.
    fn prev_transformed_inner(&mut self) -> Option<(Vec<u8>, u64)> {
        loop {
            let Some(frame) = self.rstack.pop() else {
                // The empty key is the global minimum: emitted after the
                // whole trie walk is exhausted.
                if self.rpending_empty {
                    self.rpending_empty = false;
                    if let Some(v) = self.map.empty_key_value() {
                        if self.passes_back(&[]) {
                            return Some((Vec::new(), v));
                        }
                    }
                }
                return None;
            };
            match frame {
                RevFrame::Pointer { hp, base } => {
                    // Same torn-pointer cycle guard as the forward
                    // `push_pointer`: bound the descent, let the optimistic
                    // read backstop catch the panic.
                    assert!(
                        self.rstack.len() < (1 << 16) && base < (1 << 20),
                        "reverse descent exceeded any plausible trie depth (torn read?)"
                    );
                    self.prefix.truncate(base);
                    let mm = self.map.memory_manager();
                    if hp.superbin() == 0 && mm.is_chained(hp) {
                        // Ascending pushes pop in descending slot order.
                        for index in mm.chained_valid_slots(hp) {
                            self.rstack.push(RevFrame::Slot {
                                head: hp,
                                index,
                                base,
                            });
                        }
                    } else {
                        let c = ContainerRef::open(mm, ContainerHandle::Standalone(hp));
                        let (start, end) = (c.stream_start(), c.stream_end());
                        self.rstack.push(RevFrame::Region {
                            c,
                            start,
                            end,
                            base,
                        });
                    }
                }
                RevFrame::Slot { head, index, base } => {
                    self.prefix.truncate(base);
                    let handle = ContainerHandle::ChainSlot { head, index };
                    let c = ContainerRef::open(self.map.memory_manager(), handle);
                    let (start, end) = (c.stream_start(), c.stream_end());
                    self.rstack.push(RevFrame::Region {
                        c,
                        start,
                        end,
                        base,
                    });
                }
                RevFrame::Region {
                    c,
                    start,
                    end,
                    base,
                } => {
                    self.prefix.truncate(base);
                    let cut = self.rev_level_cut(base);
                    if cut == LevelCut::Nothing {
                        continue;
                    }
                    // While still seeking, the container jump table bounds
                    // the checkpoint pass from below: records before the
                    // greatest entry <= the target byte are deferred as a
                    // lazy sub-region (re-expanded only if the walk
                    // backtracks past the seed), so a predecessor seek scans
                    // one CJT span instead of the whole region.
                    let mut scan_start = start;
                    if let LevelCut::UpTo(byte) = cut {
                        if start == c.stream_start() {
                            if let Some(seed) = cjt_seed(&c, byte, start, end) {
                                self.rstack.push(RevFrame::Region {
                                    c: c.clone(),
                                    start,
                                    end: seed,
                                    base,
                                });
                                scan_start = seed;
                            }
                        }
                    }
                    // Checkpoint pass: one bounded forward scan records the
                    // sibling offsets; ascending pushes pop in reverse.
                    for t in collect_t_records_trusted_bounded(&c, scan_start, end, cut.max_key()) {
                        self.rstack.push(RevFrame::TRec {
                            c: c.clone(),
                            t,
                            end,
                            base,
                        });
                    }
                }
                RevFrame::TRec { c, t, end, base } => {
                    self.prefix.truncate(base);
                    self.prefix.push(t.key);
                    // The T value is the shortest key of this subtree: in
                    // descending order it pops after every S child.
                    if let Some(off) = t.value_offset {
                        self.rstack.push(RevFrame::EmitAt {
                            len: base + 1,
                            value: c.read_u64(off),
                        });
                    }
                    let cut = self.rev_level_cut(base + 1);
                    if cut != LevelCut::Nothing {
                        // Same seeding as `Region`, one level down: the
                        // T-node jump table bounds the S checkpoint pass,
                        // deferring the records below the seed.
                        let mut scan_start = t.header_end;
                        if let LevelCut::UpTo(byte) = cut {
                            if let Some(jt_off) = t.jt_offset {
                                if let Some(seed) =
                                    tnode_jt_seed(&c, t.offset, jt_off, byte, t.header_end, end)
                                {
                                    self.rstack.push(RevFrame::SRun {
                                        c: c.clone(),
                                        start: t.header_end,
                                        end: seed,
                                        base: base + 1,
                                    });
                                    scan_start = seed;
                                }
                            }
                        }
                        for s in collect_s_records_from(&c, scan_start, end, cut.max_key()) {
                            self.rstack.push(RevFrame::SRec {
                                c: c.clone(),
                                s,
                                base: base + 1,
                            });
                        }
                    }
                }
                RevFrame::SRun {
                    c,
                    start,
                    end,
                    base,
                } => {
                    let cut = self.rev_level_cut(base);
                    if cut == LevelCut::Nothing {
                        continue;
                    }
                    for s in collect_s_records_from(&c, start, end, cut.max_key()) {
                        self.rstack.push(RevFrame::SRec {
                            c: c.clone(),
                            s,
                            base,
                        });
                    }
                }
                RevFrame::SRec { c, s, base } => {
                    self.prefix.truncate(base);
                    self.prefix.push(s.key);
                    // Value first (pops last): the key ending here is shorter
                    // than everything in the child subtree.
                    if let Some(off) = s.value_offset {
                        self.rstack.push(RevFrame::EmitAt {
                            len: base + 1,
                            value: c.read_u64(off),
                        });
                    }
                    match s.child {
                        ChildKind::None => {}
                        ChildKind::PathCompressed => {
                            let (has_value, pc_value, range) =
                                parse_pc_node(c.bytes(), s.child_offset.expect("pc child offset"));
                            if has_value {
                                let mut key = self.prefix.clone();
                                key.extend_from_slice(&c.bytes()[range]);
                                self.rstack.push(RevFrame::EmitKey {
                                    key,
                                    value: pc_value,
                                });
                            }
                        }
                        ChildKind::Embedded => {
                            let child_off = s.child_offset.expect("embedded child offset");
                            let size = c.bytes()[child_off] as usize;
                            self.rstack.push(RevFrame::Region {
                                c,
                                start: child_off + 1,
                                end: child_off + size,
                                base: base + 1,
                            });
                        }
                        ChildKind::Pointer => {
                            let hp = c.read_hp(s.child_offset.expect("pointer child offset"));
                            self.rstack.push(RevFrame::Pointer { hp, base: base + 1 });
                        }
                    }
                }
                RevFrame::EmitAt { len, value } => {
                    self.prefix.truncate(len);
                    if self.started || self.passes_back_prefix() {
                        return Some((self.prefix.clone(), value));
                    }
                }
                RevFrame::EmitKey { key, value } => {
                    if self.passes_back(&key) {
                        return Some((key, value));
                    }
                }
            }
        }
    }

    /// [`Cursor::passes_back`] on the current prefix, split out to satisfy
    /// the borrow checker (the prefix is both the key and cursor state).
    #[inline]
    fn passes_back_prefix(&mut self) -> bool {
        let within = match &self.bound {
            None => true,
            Some(b) => {
                if self.bound_inclusive {
                    self.prefix.as_slice() <= b.as_slice()
                } else {
                    self.prefix.as_slice() < b.as_slice()
                }
            }
        };
        if within {
            self.started = true;
        }
        within
    }
}

impl Iterator for Cursor<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        Cursor::next(self)
    }
}

impl std::fmt::Debug for Cursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor")
            .field(
                "depth",
                &if self.backward {
                    self.rstack.len()
                } else {
                    self.stack.len()
                },
            )
            .field("backward", &self.backward)
            .field("started", &self.started)
            .finish()
    }
}

/// Exclusive or inclusive upper bound of a [`Range`] or a reverse
/// [`crate::DbScan`] (original key space).
pub(crate) enum UpperBound {
    Unbounded,
    Excluded(Vec<u8>),
    Included(Vec<u8>),
}

impl UpperBound {
    #[inline]
    pub(crate) fn admits(&self, key: &[u8]) -> bool {
        match self {
            UpperBound::Unbounded => true,
            UpperBound::Excluded(end) => key < end.as_slice(),
            UpperBound::Included(end) => key <= end.as_slice(),
        }
    }
}

/// Exclusive or inclusive lower bound of a [`Range`] or a reverse
/// [`crate::DbScan`] (original key space); checked by the backward walk,
/// which cannot rely on the forward cursor's seek bound.
pub(crate) enum LowerBound {
    Unbounded,
    Excluded(Vec<u8>),
    Included(Vec<u8>),
}

impl LowerBound {
    #[inline]
    pub(crate) fn admits(&self, key: &[u8]) -> bool {
        match self {
            LowerBound::Unbounded => true,
            LowerBound::Excluded(start) => key > start.as_slice(),
            LowerBound::Included(start) => key >= start.as_slice(),
        }
    }
}

/// Lazy iterator over all key/value pairs of a [`HyperionMap`] in ascending
/// key order.  Created by [`HyperionMap::iter`].
///
/// Covers the whole map, so the number of remaining entries is known exactly:
/// [`Iterator::size_hint`] is tight and [`ExactSizeIterator`] is implemented.
/// [`DoubleEndedIterator`] walks from the other end with a second (lazily
/// created) backward cursor; the exact count makes the two ends meet without
/// any key comparison.
pub struct Iter<'a> {
    cursor: Cursor<'a>,
    /// Backward cursor, created on the first `next_back` call.
    back: Option<Cursor<'a>>,
    remaining: usize,
}

impl Iterator for Iter<'_> {
    type Item = (Vec<u8>, u64);

    #[inline]
    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.remaining == 0 {
            return None;
        }
        match self.cursor.next() {
            Some(pair) => {
                self.remaining -= 1;
                Some(pair)
            }
            None => {
                debug_assert_eq!(self.remaining, 0, "cursor ended early");
                self.remaining = 0;
                None
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let back = self.back.get_or_insert_with(|| {
            let mut cursor = Cursor::new(self.cursor.map);
            cursor.seek_last();
            cursor
        });
        match back.prev() {
            Some(pair) => {
                self.remaining -= 1;
                Some(pair)
            }
            None => {
                debug_assert_eq!(self.remaining, 0, "backward cursor ended early");
                self.remaining = 0;
                None
            }
        }
    }
}

impl ExactSizeIterator for Iter<'_> {}
impl std::iter::FusedIterator for Iter<'_> {}

/// Lazy iterator over a contiguous key range of a [`HyperionMap`].  Created
/// by [`HyperionMap::range`].
///
/// How many keys fall inside the bounds is unknown until the walk finishes,
/// so [`Iterator::size_hint`] honestly reports a lower bound of zero; the
/// upper bound is the number of keys the map can still yield.
///
/// [`DoubleEndedIterator`] is implemented with a second backward cursor
/// seeked to the end bound: `range(..).rev()` walks the bounds in descending
/// order, and the two ends never yield the same key (each end remembers the
/// other's last key and stops at the crossing).
pub struct Range<'a> {
    cursor: Cursor<'a>,
    /// Backward cursor, created on the first `next_back` call.
    back: Option<Cursor<'a>>,
    start: LowerBound,
    end: UpperBound,
    /// Last key yielded by the forward end (crossing detection).  Reused
    /// buffer + flag instead of `Option<Vec<u8>>`: forward-only scans pay
    /// one memcpy per yield, never a per-key allocation.
    front_key: Vec<u8>,
    has_front: bool,
    /// Last key yielded by the backward end (crossing detection).
    back_key: Vec<u8>,
    has_back: bool,
    done: bool,
    /// Upper bound on the remaining yields (total map size minus yields).
    at_most: usize,
}

impl Iterator for Range<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.done {
            return None;
        }
        // Excluded start bounds are handled by `Cursor::seek_exclusive`, so
        // every yielded key only needs the upper-bound check.
        let Some((key, value)) = self.cursor.next() else {
            self.done = true;
            return None;
        };
        if !self.end.admits(&key) {
            self.done = true;
            return None;
        }
        // Meeting the backward end exhausts the range.
        if self.has_back && key >= self.back_key {
            self.done = true;
            return None;
        }
        self.at_most = self.at_most.saturating_sub(1);
        self.front_key.clear();
        self.front_key.extend_from_slice(&key);
        self.has_front = true;
        Some((key, value))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            (0, Some(self.at_most))
        }
    }
}

impl DoubleEndedIterator for Range<'_> {
    fn next_back(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.done {
            return None;
        }
        let back = match &mut self.back {
            Some(back) => back,
            None => {
                let mut cursor = Cursor::new(self.cursor.map);
                match &self.end {
                    UpperBound::Unbounded => cursor.seek_last(),
                    UpperBound::Excluded(end) => cursor.seek_for_pred_exclusive(end),
                    UpperBound::Included(end) => cursor.seek_for_pred(end),
                }
                self.back.insert(cursor)
            }
        };
        let Some((key, value)) = back.prev() else {
            self.done = true;
            return None;
        };
        if !self.start.admits(&key) {
            self.done = true;
            return None;
        }
        if self.has_front && key <= self.front_key {
            self.done = true;
            return None;
        }
        self.at_most = self.at_most.saturating_sub(1);
        self.back_key.clear();
        self.back_key.extend_from_slice(&key);
        self.has_back = true;
        Some((key, value))
    }
}

impl std::iter::FusedIterator for Range<'_> {}

/// Lazy iterator over all keys sharing a prefix.  Created by
/// [`HyperionMap::prefix`].  Double-ended like [`Range`].
pub struct Prefix<'a>(Range<'a>);

impl Iterator for Prefix<'_> {
    type Item = (Vec<u8>, u64);

    #[inline]
    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for Prefix<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<(Vec<u8>, u64)> {
        self.0.next_back()
    }
}

impl std::iter::FusedIterator for Prefix<'_> {}

impl HyperionMap {
    /// Returns a [`Cursor`] positioned at the first key.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor::new(self)
    }

    /// Lazily iterates over all key/value pairs in ascending key order.
    /// The iterator is double-ended: `.rev()` walks in descending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            cursor: Cursor::new(self),
            back: None,
            remaining: self.len(),
        }
    }

    /// Returns the greatest key with its value, or `None` on an empty map.
    ///
    /// ```
    /// use hyperion_core::HyperionMap;
    ///
    /// let mut map = HyperionMap::new();
    /// map.put(b"a", 1);
    /// map.put(b"b", 2);
    /// assert_eq!(map.last(), Some((b"b".to_vec(), 2)));
    /// ```
    pub fn last(&self) -> Option<(Vec<u8>, u64)> {
        let mut cursor = Cursor::new(self);
        cursor.seek_last();
        cursor.prev()
    }

    /// Returns the greatest key *strictly less than* `key` with its value
    /// (the predecessor query), or `None` when no stored key sorts below
    /// `key`.
    ///
    /// ```
    /// use hyperion_core::HyperionMap;
    ///
    /// let mut map = HyperionMap::new();
    /// map.put(b"a", 1);
    /// map.put(b"c", 3);
    /// assert_eq!(map.pred(b"c"), Some((b"a".to_vec(), 1)));
    /// assert_eq!(map.pred(b"b"), Some((b"a".to_vec(), 1)));
    /// assert_eq!(map.pred(b"a"), None);
    /// ```
    pub fn pred(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let mut cursor = Cursor::new(self);
        cursor.seek_for_pred_exclusive(key);
        cursor.prev()
    }

    /// Lazily iterates over the keys within `bounds`, in ascending order.
    ///
    /// Accepts any [`RangeBounds`] over byte-string-like keys:
    ///
    /// ```
    /// use hyperion_core::HyperionMap;
    ///
    /// let mut map = HyperionMap::new();
    /// map.put(b"a", 1);
    /// map.put(b"b", 2);
    /// map.put(b"c", 3);
    /// let keys: Vec<_> = map.range(&b"a"[..]..&b"c"[..]).map(|(k, _)| k).collect();
    /// assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()]);
    /// assert_eq!(map.range(&b"b"[..]..).count(), 2);
    /// ```
    pub fn range<K, R>(&self, bounds: R) -> Range<'_>
    where
        K: AsRef<[u8]> + ?Sized,
        R: RangeBounds<K>,
    {
        let mut cursor = Cursor::new(self);
        let start = match bounds.start_bound() {
            Bound::Unbounded => LowerBound::Unbounded,
            Bound::Included(start) => {
                cursor.seek(start.as_ref());
                LowerBound::Included(start.as_ref().to_vec())
            }
            Bound::Excluded(start) => {
                cursor.seek_exclusive(start.as_ref());
                LowerBound::Excluded(start.as_ref().to_vec())
            }
        };
        let end = match bounds.end_bound() {
            Bound::Unbounded => UpperBound::Unbounded,
            Bound::Excluded(end) => UpperBound::Excluded(end.as_ref().to_vec()),
            Bound::Included(end) => UpperBound::Included(end.as_ref().to_vec()),
        };
        Range {
            cursor,
            back: None,
            start,
            end,
            front_key: Vec::new(),
            has_front: false,
            back_key: Vec::new(),
            has_back: false,
            done: false,
            at_most: self.len(),
        }
    }

    /// Lazily iterates over all keys starting with `prefix`, in ascending
    /// order.
    ///
    /// ```
    /// use hyperion_core::HyperionMap;
    ///
    /// let mut map = HyperionMap::new();
    /// map.put(b"the", 1);
    /// map.put(b"that", 2);
    /// map.put(b"to", 3);
    /// let th: Vec<_> = map.prefix(b"th").map(|(k, _)| k).collect();
    /// assert_eq!(th, vec![b"that".to_vec(), b"the".to_vec()]);
    /// ```
    pub fn prefix(&self, prefix: &[u8]) -> Prefix<'_> {
        let mut cursor = Cursor::new(self);
        cursor.seek(prefix);
        let end = match prefix_upper_bound(prefix) {
            Some(end) => UpperBound::Excluded(end),
            None => UpperBound::Unbounded,
        };
        Prefix(Range {
            cursor,
            back: None,
            start: LowerBound::Included(prefix.to_vec()),
            end,
            front_key: Vec::new(),
            has_front: false,
            back_key: Vec::new(),
            has_back: false,
            done: false,
            at_most: self.len(),
        })
    }
}

/// A type-erased ordered iterator over `(key, value)` pairs, the return type
/// of the [`crate::OrderedRead`] iterator methods.
///
/// Structures with a native cursor (Hyperion) return a lazy variant; the
/// default trait implementation materialises via the callback walk, which is
/// what the pointer-based baselines use.
pub struct Entries<'a> {
    inner: EntriesInner<'a>,
    /// Optional exclusive upper bound in the original key space.
    end: Option<Vec<u8>>,
    done: bool,
}

enum EntriesInner<'a> {
    /// An eagerly collected, sorted snapshot.
    Sorted(std::vec::IntoIter<(Vec<u8>, u64)>),
    /// A lazily advancing iterator (e.g. a Hyperion [`Cursor`]).
    Lazy(Box<dyn Iterator<Item = (Vec<u8>, u64)> + 'a>),
    /// A lazily advancing double-ended iterator (e.g. a Hyperion [`Range`]):
    /// `next_back` stays lazy instead of materialising the tail.
    Bidi(Box<dyn DoubleEndedIterator<Item = (Vec<u8>, u64)> + 'a>),
}

impl<'a> Entries<'a> {
    /// Wraps an eagerly collected vector of pairs (must be sorted by key).
    pub fn from_sorted_vec(pairs: Vec<(Vec<u8>, u64)>) -> Entries<'a> {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
        Entries {
            inner: EntriesInner::Sorted(pairs.into_iter()),
            end: None,
            done: false,
        }
    }

    /// Wraps a lazy iterator that yields pairs in ascending key order.
    pub fn from_lazy<I>(iter: I) -> Entries<'a>
    where
        I: Iterator<Item = (Vec<u8>, u64)> + 'a,
    {
        Entries {
            inner: EntriesInner::Lazy(Box::new(iter)),
            end: None,
            done: false,
        }
    }

    /// Wraps a lazy *double-ended* iterator (ascending from the front,
    /// descending from the back); [`Entries::next_back`] then walks the tail
    /// without materialising it.
    pub fn from_bidi<I>(iter: I) -> Entries<'a>
    where
        I: DoubleEndedIterator<Item = (Vec<u8>, u64)> + 'a,
    {
        Entries {
            inner: EntriesInner::Bidi(Box::new(iter)),
            end: None,
            done: false,
        }
    }

    /// Restricts the iterator to keys strictly below `end`, keeping the
    /// tighter bound if one is already set.
    pub fn below(mut self, end: Vec<u8>) -> Entries<'a> {
        self.end = Some(match self.end.take() {
            Some(existing) => existing.min(end),
            None => end,
        });
        self
    }
}

impl Iterator for Entries<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.done {
            return None;
        }
        let next = match &mut self.inner {
            EntriesInner::Sorted(it) => it.next(),
            EntriesInner::Lazy(it) => it.next(),
            EntriesInner::Bidi(it) => it.next(),
        };
        match next {
            Some((key, value)) => {
                if let Some(end) = &self.end {
                    if key.as_slice() >= end.as_slice() {
                        // Ascending front: everything still inside the inner
                        // iterator sorts at or above this key, so the whole
                        // iterator (both ends) is exhausted.
                        self.done = true;
                        return None;
                    }
                }
                Some((key, value))
            }
            None => {
                self.done = true;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let (lower, upper) = match &self.inner {
            EntriesInner::Sorted(it) => it.size_hint(),
            EntriesInner::Lazy(it) => it.size_hint(),
            EntriesInner::Bidi(it) => it.size_hint(),
        };
        // An end bound can cut the walk short, making the inner lower bound
        // dishonest; without one the inner hints pass through unchanged.
        if self.end.is_some() {
            (0, upper)
        } else {
            (lower, upper)
        }
    }
}

impl DoubleEndedIterator for Entries<'_> {
    /// Yields the remaining entries from the greatest key downward.
    ///
    /// Sorted and bidirectional inners step backward natively; a plain lazy
    /// inner is drained into a sorted snapshot on the first back step (the
    /// eager baselines hand over sorted vectors, so this fallback only
    /// triggers for custom `from_lazy` sources).
    fn next_back(&mut self) -> Option<(Vec<u8>, u64)> {
        if self.done {
            return None;
        }
        if matches!(self.inner, EntriesInner::Lazy(_)) {
            let EntriesInner::Lazy(it) = std::mem::replace(
                &mut self.inner,
                EntriesInner::Sorted(Vec::new().into_iter()),
            ) else {
                unreachable!()
            };
            self.inner = EntriesInner::Sorted(it.collect::<Vec<_>>().into_iter());
        }
        loop {
            let next = match &mut self.inner {
                EntriesInner::Sorted(it) => it.next_back(),
                EntriesInner::Bidi(it) => it.next_back(),
                EntriesInner::Lazy(_) => unreachable!("lazy inner drained above"),
            };
            let Some((key, value)) = next else {
                self.done = true;
                return None;
            };
            if let Some(end) = &self.end {
                if key.as_slice() >= end.as_slice() {
                    // Descending back end: out-of-bound keys come first;
                    // skip them until the walk drops below the bound.
                    continue;
                }
            }
            return Some((key, value));
        }
    }
}

impl std::iter::FusedIterator for Entries<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_map(n: u64) -> (HyperionMap, BTreeMap<Vec<u8>, u64>) {
        let mut map = HyperionMap::new();
        let mut reference = BTreeMap::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mix of short string keys and raw integer keys.
            let key = if i % 3 == 0 {
                format!("k{:06}", x % 100_000).into_bytes()
            } else {
                x.to_be_bytes().to_vec()
            };
            map.put(&key, i);
            reference.insert(key, i);
        }
        (map, reference)
    }

    #[test]
    fn cursor_yields_all_keys_in_order() {
        let (map, reference) = sample_map(5_000);
        let got: Vec<_> = map.iter().collect();
        let expected: Vec<_> = reference.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn cursor_seek_matches_btreemap_range() {
        let (map, reference) = sample_map(3_000);
        for probe in [
            &b""[..],
            b"k0",
            b"k05",
            b"k099999",
            b"zzz",
            &[0x00],
            &[0x80, 0x00],
            &[0xff, 0xff, 0xff],
        ] {
            let mut cur = map.cursor();
            cur.seek(probe);
            let got: Vec<_> = (&mut cur).take(50).collect();
            let expected: Vec<_> = reference
                .range(probe.to_vec()..)
                .take(50)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "seek {probe:?}");
        }
    }

    #[test]
    fn seek_past_end_is_exhausted() {
        let (map, _) = sample_map(500);
        let mut cur = map.cursor();
        cur.seek(&[0xff; 16]);
        assert_eq!(cur.next(), None);
        // A cursor can be re-seeked after exhaustion.
        cur.seek(&[]);
        assert!(cur.next().is_some());
    }

    #[test]
    fn range_bounds_semantics() {
        let mut map = HyperionMap::new();
        for b in [b"a", b"b", b"c", b"d"] {
            map.put(b, b[0] as u64);
        }
        let keys = |r: Range| r.map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(
            keys(map.range(&b"b"[..]..&b"d"[..])),
            vec![b"b".to_vec(), b"c".to_vec()]
        );
        assert_eq!(
            keys(map.range(&b"b"[..]..=&b"d"[..])),
            vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        assert_eq!(keys(map.range(&b"b"[..]..&b"b"[..])), Vec::<Vec<u8>>::new());
        assert_eq!(map.range::<[u8], _>(..).count(), 4);
        use std::ops::Bound;
        let after_b: Vec<_> = map
            .range::<[u8], _>((Bound::Excluded(&b"b"[..]), Bound::Unbounded))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(after_b, vec![b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn prefix_iteration_with_0xff_boundary() {
        let mut map = HyperionMap::new();
        map.put(&[0xff, 0x01], 1);
        map.put(&[0xff, 0xff], 2);
        map.put(&[0xff, 0xff, 0x00], 3);
        map.put(&[0xfe], 4);
        assert_eq!(map.prefix(&[0xff]).count(), 3);
        assert_eq!(map.prefix(&[0xff, 0xff]).count(), 2);
        assert_eq!(map.prefix(&[]).count(), 4);
    }

    #[test]
    fn prefix_upper_bound_edge_cases() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_upper_bound(&[0xff, 0xff]), None);
        assert_eq!(prefix_upper_bound(&[]), None);
    }

    #[test]
    fn empty_key_is_iterated_first() {
        let mut map = HyperionMap::new();
        map.put(b"", 7);
        map.put(b"a", 1);
        let got: Vec<_> = map.iter().collect();
        assert_eq!(got, vec![(Vec::new(), 7), (b"a".to_vec(), 1)]);
        let mut cur = map.cursor();
        cur.seek(b"a");
        assert_eq!(cur.next(), Some((b"a".to_vec(), 1)));
    }

    #[test]
    fn iteration_restores_preprocessed_keys() {
        let mut map = HyperionMap::with_config(crate::HyperionConfig::with_preprocessing());
        let mut reference = BTreeMap::new();
        let mut x: u64 = 99;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x.to_be_bytes();
            map.put(&key, i);
            reference.insert(key.to_vec(), i);
        }
        let got: Vec<_> = map.iter().collect();
        let expected: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(got, expected);
        // Seek in original key space must also work under pre-processing.
        let mid = expected[1000].0.clone();
        let mut cur = map.cursor();
        cur.seek(&mid);
        assert_eq!(cur.next(), Some(expected[1000].clone()));
    }

    #[test]
    fn iter_is_exact_size_and_fused() {
        let (map, reference) = sample_map(2_000);
        let mut iter = map.iter();
        assert_eq!(iter.len(), reference.len());
        assert_eq!(iter.size_hint(), (reference.len(), Some(reference.len())));
        for remaining in (0..reference.len()).rev() {
            assert!(iter.next().is_some());
            assert_eq!(iter.len(), remaining);
        }
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None, "fused after exhaustion");
        assert_eq!(iter.size_hint(), (0, Some(0)));
        // `count` and friends can rely on the exact hint.
        assert_eq!(map.iter().count(), reference.len());
    }

    #[test]
    fn range_and_prefix_size_hints_are_honest() {
        let (map, reference) = sample_map(1_000);
        let total = reference.len();
        let mut range = map.range(&b"k"[..]..&b"l"[..]);
        let (lo, hi) = range.size_hint();
        assert_eq!(lo, 0, "bounded range cannot promise entries");
        assert_eq!(hi, Some(total));
        let mut yielded = 0usize;
        while let Some(_) = range.next() {
            yielded += 1;
            let (lo, hi) = range.size_hint();
            assert_eq!(lo, 0);
            assert!(hi.unwrap() <= total - yielded);
        }
        assert!(yielded > 0);
        assert_eq!(range.next(), None, "fused after exhaustion");
        assert_eq!(range.size_hint(), (0, Some(0)));

        let mut prefix = map.prefix(b"k");
        assert_eq!(prefix.size_hint().0, 0);
        assert_eq!(prefix.size_hint().1, Some(total));
        assert_eq!(prefix.by_ref().count(), yielded);
        assert_eq!(prefix.next(), None);
        assert_eq!(prefix.size_hint(), (0, Some(0)));
    }

    #[test]
    fn entries_size_hint_passthrough_and_bounded() {
        let pairs: Vec<(Vec<u8>, u64)> = (0..10u64).map(|i| (vec![i as u8], i)).collect();
        let entries = Entries::from_sorted_vec(pairs.clone());
        assert_eq!(entries.size_hint(), (10, Some(10)));
        let bounded = Entries::from_sorted_vec(pairs).below(vec![5]);
        assert_eq!(bounded.size_hint().0, 0, "end bound may cut the walk short");
        assert_eq!(bounded.count(), 5);
    }

    #[test]
    fn reverse_cursor_yields_all_keys_in_descending_order() {
        let (map, reference) = sample_map(5_000);
        let mut cur = map.cursor();
        cur.seek_last();
        let mut got = Vec::new();
        while let Some(pair) = cur.prev() {
            got.push(pair);
        }
        let expected: Vec<_> = reference.into_iter().rev().collect();
        assert_eq!(got, expected);
        assert_eq!(cur.prev(), None, "exhausted backward cursor stays dry");
    }

    #[test]
    fn seek_for_pred_matches_btreemap() {
        let (map, reference) = sample_map(3_000);
        for probe in [
            &b""[..],
            b"k0",
            b"k05",
            b"k099999",
            b"zzz",
            &[0x00],
            &[0x80, 0x00],
            &[0xff, 0xff, 0xff],
        ] {
            // Inclusive: last key <= probe.
            let mut cur = map.cursor();
            cur.seek_for_pred(probe);
            let got: Vec<_> = std::iter::from_fn(|| cur.prev()).take(50).collect();
            let expected: Vec<_> = reference
                .range(..=probe.to_vec())
                .rev()
                .take(50)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "seek_for_pred {probe:?}");
            // Exclusive: last key < probe.
            let mut cur = map.cursor();
            cur.seek_for_pred_exclusive(probe);
            let got: Vec<_> = std::iter::from_fn(|| cur.prev()).take(50).collect();
            let expected: Vec<_> = reference
                .range(..probe.to_vec())
                .rev()
                .take(50)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "seek_for_pred_exclusive {probe:?}");
        }
    }

    #[test]
    fn last_and_pred_queries() {
        let (map, reference) = sample_map(2_000);
        assert_eq!(
            map.last(),
            reference.iter().next_back().map(|(k, v)| (k.clone(), *v))
        );
        for (k, _) in reference.iter().step_by(97) {
            let expected = reference
                .range(..k.clone())
                .next_back()
                .map(|(k, v)| (k.clone(), *v));
            assert_eq!(map.pred(k), expected, "pred {k:x?}");
        }
        assert_eq!(HyperionMap::new().last(), None);
        assert_eq!(HyperionMap::new().pred(b"anything"), None);
        assert_eq!(map.pred(b""), None, "nothing sorts below the empty key");
    }

    #[test]
    fn cursor_turn_around_steps_to_neighbours() {
        let mut map = HyperionMap::new();
        for b in [b"a", b"b", b"c", b"d", b"e"] {
            map.put(b, b[0] as u64);
        }
        let mut cur = map.cursor();
        cur.seek(b"c");
        assert_eq!(cur.next(), Some((b"c".to_vec(), b'c' as u64)));
        // prev() after next() steps to the strict predecessor of the last
        // returned key, not back to the same key.
        assert_eq!(cur.prev(), Some((b"b".to_vec(), b'b' as u64)));
        assert_eq!(cur.prev(), Some((b"a".to_vec(), b'a' as u64)));
        assert_eq!(cur.prev(), None);
        // And next() after prev() steps to the strict successor of the last
        // returned key ("a" is the reference point even after the None).
        assert_eq!(cur.next(), Some((b"b".to_vec(), b'b' as u64)));

        // Turn-around before anything was returned anchors on the target.
        let mut cur = map.cursor();
        cur.seek(b"c");
        assert_eq!(cur.prev(), Some((b"b".to_vec(), b'b' as u64)));
        let mut cur = map.cursor();
        cur.seek_exclusive(b"c");
        assert_eq!(cur.prev(), Some((b"c".to_vec(), b'c' as u64)));
        let mut cur = map.cursor();
        cur.seek_for_pred(b"c");
        assert_eq!(cur.next(), Some((b"d".to_vec(), b'd' as u64)));
        let mut cur = map.cursor();
        cur.seek_for_pred_exclusive(b"c");
        assert_eq!(cur.next(), Some((b"c".to_vec(), b'c' as u64)));
        // After seek_last the cursor sits past every key: next() is dry but
        // prev() still returns the last key.
        let mut cur = map.cursor();
        cur.seek_last();
        assert_eq!(cur.next(), None);
        assert_eq!(cur.prev(), Some((b"e".to_vec(), b'e' as u64)));
    }

    #[test]
    fn iter_rev_matches_btreemap() {
        let (map, reference) = sample_map(4_000);
        let got: Vec<_> = map.iter().rev().collect();
        let expected: Vec<_> = reference
            .iter()
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected);
        // Meet-in-the-middle: consume from both ends alternately.
        let mut iter = map.iter();
        let mut front = Vec::new();
        let mut back = Vec::new();
        while let Some(pair) = iter.next() {
            front.push(pair);
            match iter.next_back() {
                Some(pair) => back.push(pair),
                None => break,
            }
        }
        back.reverse();
        front.extend(back);
        let all: Vec<_> = reference.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(front, all, "two-ended consumption covers every key once");
    }

    #[test]
    fn range_and_prefix_rev_match_btreemap() {
        let (map, reference) = sample_map(3_000);
        let ranges: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"k0".to_vec(), b"k06".to_vec()),
            (Vec::new(), vec![0xff; 4]),
            (b"a".to_vec(), b"z".to_vec()),
            (vec![0x10], vec![0xf0]),
        ];
        for (lo, hi) in &ranges {
            let got: Vec<_> = map.range(&lo[..]..&hi[..]).rev().collect();
            let expected: Vec<_> = reference
                .range(lo.clone()..hi.clone())
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "rev range {lo:x?}..{hi:x?}");
            // Inclusive end.
            let got: Vec<_> = map.range(&lo[..]..=&hi[..]).rev().collect();
            let expected: Vec<_> = reference
                .range(lo.clone()..=hi.clone())
                .rev()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(got, expected, "rev inclusive range {lo:x?}..={hi:x?}");
        }
        for prefix in [&b"k0"[..], b"k00", b"", &[0x80]] {
            let got: Vec<_> = map.prefix(prefix).rev().map(|(k, _)| k).collect();
            let mut expected: Vec<_> = reference
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect();
            expected.reverse();
            assert_eq!(got, expected, "rev prefix {prefix:x?}");
        }
        // Two-ended range consumption never yields a key twice.
        let mut range = map.range(&b"k"[..]..&b"l"[..]);
        let mut seen = std::collections::BTreeSet::new();
        while let Some((k, _)) = range.next() {
            assert!(seen.insert(k), "front re-yielded a key");
            let Some((k, _)) = range.next_back() else {
                break;
            };
            assert!(seen.insert(k), "back re-yielded a key");
        }
        let expected = reference.range(b"k".to_vec()..b"l".to_vec()).count();
        assert_eq!(seen.len(), expected);
    }

    #[test]
    fn reverse_iteration_restores_preprocessed_keys() {
        let mut map = HyperionMap::with_config(crate::HyperionConfig::with_preprocessing());
        let mut reference = BTreeMap::new();
        let mut x: u64 = 7;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x.to_be_bytes();
            map.put(&key, i);
            reference.insert(key.to_vec(), i);
        }
        let got: Vec<_> = map.iter().rev().collect();
        let expected: Vec<_> = reference
            .iter()
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected);
        let mid = expected[1000].0.clone();
        assert_eq!(
            map.pred(&mid),
            reference
                .range(..mid.clone())
                .next_back()
                .map(|(k, v)| (k.clone(), *v))
        );
    }

    #[test]
    fn empty_key_is_reverse_iterated_last() {
        let mut map = HyperionMap::new();
        map.put(b"", 7);
        map.put(b"a", 1);
        let got: Vec<_> = map.iter().rev().collect();
        assert_eq!(got, vec![(b"a".to_vec(), 1), (Vec::new(), 7)]);
        assert_eq!(map.pred(b"a"), Some((Vec::new(), 7)));
        assert_eq!(map.last(), Some((b"a".to_vec(), 1)));
        let mut only_empty = HyperionMap::new();
        only_empty.put(b"", 9);
        assert_eq!(only_empty.last(), Some((Vec::new(), 9)));
        assert_eq!(only_empty.pred(b""), None);
    }

    #[test]
    fn entries_are_double_ended() {
        let pairs: Vec<(Vec<u8>, u64)> = (0..10u64).map(|i| (vec![i as u8], i)).collect();
        // Sorted inner.
        let entries = Entries::from_sorted_vec(pairs.clone());
        let got: Vec<_> = entries.rev().map(|(_, v)| v).collect();
        assert_eq!(got, (0..10u64).rev().collect::<Vec<_>>());
        // Bounded back end skips out-of-bound entries.
        let bounded = Entries::from_sorted_vec(pairs.clone()).below(vec![5]);
        let got: Vec<_> = bounded.rev().map(|(_, v)| v).collect();
        assert_eq!(got, vec![4, 3, 2, 1, 0]);
        // Lazy inner falls back to a drained snapshot.
        let lazy = Entries::from_lazy(pairs.clone().into_iter()).below(vec![7]);
        let got: Vec<_> = lazy.rev().map(|(_, v)| v).collect();
        assert_eq!(got, vec![6, 5, 4, 3, 2, 1, 0]);
        // Bidi inner (the Hyperion override path) stays lazy.
        let (map, reference) = sample_map(500);
        let entries = Entries::from_bidi(map.range::<[u8], _>(..));
        let got: Vec<_> = entries.rev().collect();
        let expected: Vec<_> = reference
            .iter()
            .rev()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn lazy_iteration_stops_early_without_full_walk() {
        let (map, reference) = sample_map(20_000);
        // Taking 3 items from a lazy iterator must agree with the reference.
        let got: Vec<_> = map.iter().take(3).collect();
        let expected: Vec<_> = reference
            .iter()
            .take(3)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert_eq!(got, expected);
    }
}

//! Key transformations.
//!
//! * Binary-comparable encodings following Leis et al. (used by the paper for
//!   all structures so that memcmp order equals the natural order of the key
//!   domain): big-endian unsigned integers, sign-flipped signed integers.
//! * Reverse-key transformation (Oracle-style) for balancing monotonically
//!   increasing keys.
//! * The Hyperion key pre-processor (Section 3.4): an online, injective,
//!   order-preserving zero-bit injection that reduces the entropy of the first
//!   four key bytes, producing fewer but larger third-level containers.

/// Encodes a `u64` as a binary-comparable (big-endian) 8-byte key.
#[inline]
pub fn encode_u64(value: u64) -> [u8; 8] {
    value.to_be_bytes()
}

/// Decodes a binary-comparable 8-byte key back into a `u64`.
#[inline]
pub fn decode_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..key.len().min(8)].copy_from_slice(&key[..key.len().min(8)]);
    u64::from_be_bytes(buf)
}

/// Encodes an `i64` as a binary-comparable 8-byte key (sign bit flipped so
/// that negative values sort before positive ones).
#[inline]
pub fn encode_i64(value: i64) -> [u8; 8] {
    ((value as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decodes a binary-comparable 8-byte key back into an `i64`.
#[inline]
pub fn decode_i64(key: &[u8]) -> i64 {
    (decode_u64(key) ^ (1u64 << 63)) as i64
}

/// Reverses the byte order of a key (Oracle's *reverse key index*), used to
/// balance indexes over monotonically increasing keys.  The paper reverses
/// little-endian integer keys for ART, HAT and Hyperion so that the tries are
/// filled depth-first starting at the most significant byte.
#[inline]
pub fn reverse_key(key: &[u8]) -> Vec<u8> {
    key.iter().rev().copied().collect()
}

/// Number of leading key bytes affected by the pre-processor.
const PREPROCESS_INPUT_PREFIX: usize = 4;
/// Number of leading bytes the transformed prefix occupies.
const PREPROCESS_OUTPUT_PREFIX: usize = 5;

/// Applies the Hyperion key pre-processor (Section 3.4, Figure 12).
///
/// The first byte is kept; the following three bytes (24 bits) are re-grouped
/// into four 6-bit groups, each shifted left by two, so every output byte has
/// its two least significant bits zeroed.  The remaining key bytes follow
/// unchanged.  The transformation is injective, invertible and preserves the
/// binary-comparable order; the key grows by exactly one byte.
///
/// Keys shorter than four bytes are returned unchanged (the pre-processor is
/// intended for fixed-size uniformly distributed keys such as random 64-bit
/// integers or hashes).
pub fn preprocess_key(key: &[u8]) -> Vec<u8> {
    if key.len() < PREPROCESS_INPUT_PREFIX {
        return key.to_vec();
    }
    let mut out = Vec::with_capacity(key.len() + 1);
    out.push(key[0]);
    let bits: u32 = ((key[1] as u32) << 16) | ((key[2] as u32) << 8) | key[3] as u32;
    for group in 0..4 {
        let shift = 18 - 6 * group;
        let six = ((bits >> shift) & 0x3f) as u8;
        out.push(six << 2);
    }
    out.extend_from_slice(&key[PREPROCESS_INPUT_PREFIX..]);
    out
}

/// Inverts [`preprocess_key`].
///
/// Returns `None` if the input is malformed (e.g. the injected zero bits are
/// not zero), which indicates that the key was not produced by the
/// pre-processor.
pub fn postprocess_key(key: &[u8]) -> Option<Vec<u8>> {
    if key.len() < PREPROCESS_OUTPUT_PREFIX {
        return Some(key.to_vec());
    }
    let mut out = Vec::with_capacity(key.len().saturating_sub(1));
    out.push(key[0]);
    let mut bits: u32 = 0;
    for i in 0..4 {
        let byte = key[1 + i];
        if byte & 0b11 != 0 {
            return None;
        }
        bits = (bits << 6) | ((byte >> 2) as u32);
    }
    out.push((bits >> 16) as u8);
    out.push((bits >> 8) as u8);
    out.push(bits as u8);
    out.extend_from_slice(&key[PREPROCESS_OUTPUT_PREFIX..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_encoding_is_order_preserving() {
        let values = [0u64, 1, 255, 256, 65_535, 1 << 32, u64::MAX - 1, u64::MAX];
        for w in values.windows(2) {
            assert!(encode_u64(w[0]) < encode_u64(w[1]));
        }
        for v in values {
            assert_eq!(decode_u64(&encode_u64(v)), v);
        }
    }

    #[test]
    fn i64_encoding_is_order_preserving() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 1_000_000, i64::MAX];
        for w in values.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]));
        }
        for v in values {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn reverse_key_is_involutive() {
        let key = [1u8, 2, 3, 4, 5];
        assert_eq!(reverse_key(&reverse_key(&key)), key.to_vec());
    }

    #[test]
    fn preprocess_grows_key_by_one_byte() {
        let key = encode_u64(0x0123_4567_89ab_cdef);
        let pre = preprocess_key(&key);
        assert_eq!(pre.len(), key.len() + 1);
        assert_eq!(pre[0], key[0]);
        // All transformed bytes have their two least significant bits zeroed.
        for &b in &pre[1..5] {
            assert_eq!(b & 0b11, 0);
        }
        assert_eq!(postprocess_key(&pre).unwrap(), key.to_vec());
    }

    #[test]
    fn preprocess_preserves_order() {
        let mut values: Vec<u64> = vec![
            0,
            1,
            42,
            0xff,
            0x100,
            0xffff,
            0x1_0000,
            0xdead_beef,
            0x0123_4567_89ab_cdef,
            u64::MAX,
        ];
        values.sort_unstable();
        let keys: Vec<Vec<u8>> = values
            .iter()
            .map(|&v| preprocess_key(&encode_u64(v)))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "pre-processing must preserve order");
        }
    }

    #[test]
    fn preprocess_is_injective_on_random_keys() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pre = preprocess_key(&encode_u64(x));
            assert!(seen.insert(pre), "collision detected");
        }
    }

    #[test]
    fn short_keys_pass_through_unchanged() {
        assert_eq!(preprocess_key(b"ab"), b"ab".to_vec());
        assert_eq!(postprocess_key(b"ab").unwrap(), b"ab".to_vec());
    }

    #[test]
    fn postprocess_rejects_non_preprocessed_input() {
        // 0xff has its low bits set, which the pre-processor never produces.
        assert_eq!(postprocess_key(&[1, 0xff, 0, 0, 0, 0]), None);
    }
}

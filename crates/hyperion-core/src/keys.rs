//! Key transformations.
//!
//! * Binary-comparable encodings following Leis et al. (used by the paper for
//!   all structures so that memcmp order equals the natural order of the key
//!   domain): big-endian unsigned integers, sign-flipped signed integers.
//! * Reverse-key transformation (Oracle-style) for balancing monotonically
//!   increasing keys.
//! * The Hyperion key pre-processor (Section 3.4): an online, injective,
//!   order-preserving zero-bit injection that reduces the entropy of the first
//!   four key bytes, producing fewer but larger third-level containers.

/// Encodes a `u64` as a binary-comparable (big-endian) 8-byte key.
#[inline]
pub fn encode_u64(value: u64) -> [u8; 8] {
    value.to_be_bytes()
}

/// Decodes a binary-comparable 8-byte key back into a `u64`.
#[inline]
pub fn decode_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..key.len().min(8)].copy_from_slice(&key[..key.len().min(8)]);
    u64::from_be_bytes(buf)
}

/// Encodes an `i64` as a binary-comparable 8-byte key (sign bit flipped so
/// that negative values sort before positive ones).
#[inline]
pub fn encode_i64(value: i64) -> [u8; 8] {
    ((value as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decodes a binary-comparable 8-byte key back into an `i64`.
#[inline]
pub fn decode_i64(key: &[u8]) -> i64 {
    (decode_u64(key) ^ (1u64 << 63)) as i64
}

/// Reverses the byte order of a key (Oracle's *reverse key index*), used to
/// balance indexes over monotonically increasing keys.  The paper reverses
/// little-endian integer keys for ART, HAT and Hyperion so that the tries are
/// filled depth-first starting at the most significant byte.
#[inline]
pub fn reverse_key(key: &[u8]) -> Vec<u8> {
    key.iter().rev().copied().collect()
}

/// Number of leading key bytes affected by the pre-processor.
const PREPROCESS_INPUT_PREFIX: usize = 4;
/// Number of leading bytes the transformed prefix occupies.
const PREPROCESS_OUTPUT_PREFIX: usize = 5;

/// Applies the Hyperion key pre-processor (Section 3.4, Figure 12).
///
/// The first byte is kept; the following three bytes (24 bits) are re-grouped
/// into four 6-bit groups, each shifted left by two, so every output byte has
/// its two least significant bits zeroed.  The remaining key bytes follow
/// unchanged.  The transformation is injective, invertible and preserves the
/// binary-comparable order; the key grows by exactly one byte.
///
/// Keys shorter than four bytes are returned unchanged (the pre-processor is
/// intended for fixed-size uniformly distributed keys such as random 64-bit
/// integers or hashes).
pub fn preprocess_key(key: &[u8]) -> Vec<u8> {
    if key.len() < PREPROCESS_INPUT_PREFIX {
        return key.to_vec();
    }
    let mut out = vec![0u8; key.len() + 1];
    preprocess_into(key, &mut out);
    out
}

/// Writes the transformed form of `key` (which must be at least
/// [`PREPROCESS_INPUT_PREFIX`] bytes) into `out[..key.len() + 1]`.  The one
/// definition of the Section 3.4 bit regrouping, shared by the allocating
/// [`preprocess_key`] and the stack-buffer [`TransformedKey`] so the two
/// transforms cannot drift apart.
fn preprocess_into(key: &[u8], out: &mut [u8]) {
    out[0] = key[0];
    let bits: u32 = ((key[1] as u32) << 16) | ((key[2] as u32) << 8) | key[3] as u32;
    for group in 0..4 {
        let shift = 18 - 6 * group;
        out[1 + group] = (((bits >> shift) & 0x3f) as u8) << 2;
    }
    out[PREPROCESS_OUTPUT_PREFIX..key.len() + 1].copy_from_slice(&key[PREPROCESS_INPUT_PREFIX..]);
}

/// Stack capacity of a [`TransformedKey`]: transformed keys up to this many
/// bytes (original keys one byte shorter) never touch the heap.
pub const TRANSFORM_STACK_BYTES: usize = 64;

/// A key in transformed (trie-internal) key space, produced without a heap
/// allocation whenever possible.
///
/// The read path calls the key pre-processor once per `get`; forcing a `Vec`
/// per lookup (the old `Cow::into_owned` shape) put an allocator round-trip
/// on the hottest path in the system.  This type borrows the caller's bytes
/// when no transformation applies, spills into an inline stack buffer for
/// typical key lengths, and only heap-allocates for keys longer than
/// [`TRANSFORM_STACK_BYTES`] bytes.
pub enum TransformedKey<'a> {
    /// No transformation applied: the caller's bytes are the transformed key.
    Borrowed(&'a [u8]),
    /// Transformed into an inline buffer; `len` bytes are valid.
    Stack {
        /// Inline storage.
        buf: [u8; TRANSFORM_STACK_BYTES],
        /// Number of valid bytes in `buf`.
        len: u8,
    },
    /// Transformed key too long for the inline buffer.
    Heap(Vec<u8>),
}

impl<'a> TransformedKey<'a> {
    /// Applies the Hyperion key pre-processor when `preprocess` is set,
    /// avoiding heap allocation for keys that fit the inline buffer.
    pub fn new(key: &'a [u8], preprocess: bool) -> TransformedKey<'a> {
        if !preprocess || key.len() < PREPROCESS_INPUT_PREFIX {
            return TransformedKey::Borrowed(key);
        }
        if key.len() + 1 > TRANSFORM_STACK_BYTES {
            return TransformedKey::Heap(preprocess_key(key));
        }
        let mut buf = [0u8; TRANSFORM_STACK_BYTES];
        preprocess_into(key, &mut buf);
        TransformedKey::Stack {
            buf,
            len: (key.len() + 1) as u8,
        }
    }

    /// The transformed key bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            TransformedKey::Borrowed(key) => key,
            TransformedKey::Stack { buf, len } => &buf[..*len as usize],
            TransformedKey::Heap(key) => key,
        }
    }
}

impl std::ops::Deref for TransformedKey<'_> {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Inverts [`preprocess_key`].
///
/// Returns `None` if the input is malformed (e.g. the injected zero bits are
/// not zero), which indicates that the key was not produced by the
/// pre-processor.
pub fn postprocess_key(key: &[u8]) -> Option<Vec<u8>> {
    if key.len() < PREPROCESS_OUTPUT_PREFIX {
        return Some(key.to_vec());
    }
    let mut out = Vec::with_capacity(key.len().saturating_sub(1));
    out.push(key[0]);
    let mut bits: u32 = 0;
    for i in 0..4 {
        let byte = key[1 + i];
        if byte & 0b11 != 0 {
            return None;
        }
        bits = (bits << 6) | ((byte >> 2) as u32);
    }
    out.push((bits >> 16) as u8);
    out.push((bits >> 8) as u8);
    out.push(bits as u8);
    out.extend_from_slice(&key[PREPROCESS_OUTPUT_PREFIX..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_encoding_is_order_preserving() {
        let values = [0u64, 1, 255, 256, 65_535, 1 << 32, u64::MAX - 1, u64::MAX];
        for w in values.windows(2) {
            assert!(encode_u64(w[0]) < encode_u64(w[1]));
        }
        for v in values {
            assert_eq!(decode_u64(&encode_u64(v)), v);
        }
    }

    #[test]
    fn i64_encoding_is_order_preserving() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 1_000_000, i64::MAX];
        for w in values.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]));
        }
        for v in values {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn reverse_key_is_involutive() {
        let key = [1u8, 2, 3, 4, 5];
        assert_eq!(reverse_key(&reverse_key(&key)), key.to_vec());
    }

    #[test]
    fn preprocess_grows_key_by_one_byte() {
        let key = encode_u64(0x0123_4567_89ab_cdef);
        let pre = preprocess_key(&key);
        assert_eq!(pre.len(), key.len() + 1);
        assert_eq!(pre[0], key[0]);
        // All transformed bytes have their two least significant bits zeroed.
        for &b in &pre[1..5] {
            assert_eq!(b & 0b11, 0);
        }
        assert_eq!(postprocess_key(&pre).unwrap(), key.to_vec());
    }

    #[test]
    fn preprocess_preserves_order() {
        let mut values: Vec<u64> = vec![
            0,
            1,
            42,
            0xff,
            0x100,
            0xffff,
            0x1_0000,
            0xdead_beef,
            0x0123_4567_89ab_cdef,
            u64::MAX,
        ];
        values.sort_unstable();
        let keys: Vec<Vec<u8>> = values
            .iter()
            .map(|&v| preprocess_key(&encode_u64(v)))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "pre-processing must preserve order");
        }
    }

    #[test]
    fn preprocess_is_injective_on_random_keys() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pre = preprocess_key(&encode_u64(x));
            assert!(seen.insert(pre), "collision detected");
        }
    }

    #[test]
    fn short_keys_pass_through_unchanged() {
        assert_eq!(preprocess_key(b"ab"), b"ab".to_vec());
        assert_eq!(postprocess_key(b"ab").unwrap(), b"ab".to_vec());
    }

    #[test]
    fn postprocess_rejects_non_preprocessed_input() {
        // 0xff has its low bits set, which the pre-processor never produces.
        assert_eq!(postprocess_key(&[1, 0xff, 0, 0, 0, 0]), None);
    }

    #[test]
    fn transformed_key_matches_preprocess_key() {
        // Borrowed when preprocessing is off or the key is too short.
        assert!(matches!(
            TransformedKey::new(b"whatever", false),
            TransformedKey::Borrowed(_)
        ));
        assert!(matches!(
            TransformedKey::new(b"ab", true),
            TransformedKey::Borrowed(_)
        ));
        // Stack for typical keys, heap beyond the inline buffer — all three
        // shapes must agree byte-for-byte with the allocating transform.
        for len in [4usize, 8, 17, 63, 64, 200] {
            let key: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let t = TransformedKey::new(&key, true);
            assert_eq!(t.as_slice(), preprocess_key(&key).as_slice(), "len {len}");
            match &t {
                TransformedKey::Stack { .. } => assert!(len < TRANSFORM_STACK_BYTES),
                TransformedKey::Heap(_) => assert!(len + 1 > TRANSFORM_STACK_BYTES),
                TransformedKey::Borrowed(_) => panic!("len {len} should transform"),
            }
        }
    }
}

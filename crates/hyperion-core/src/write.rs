//! The single-pass write engine.
//!
//! Every mutation of the trie — point puts, sorted batch puts, deletes —
//! goes through the `WriteEngine` in this module.  The engine replaces the
//! old retry-loop write path (which restarted the whole container descent
//! after every embedded-container ejection, up to 32 attempts) with a *write
//! cursor*: a descent that visits every container region exactly once per
//! key group and performs structural changes **in place** at the point where
//! they are discovered.
//!
//! # The descent protocol
//!
//! A write positions itself exactly like the read-side [`crate::Cursor`]:
//!
//! 1. **T level** — `t_scan_from` walks the T records of a region, seeding
//!    its start position from the *container jump table* (CJT) and resuming
//!    from the previous key's position when several sorted keys are applied
//!    to the same region (no rescan from region start).
//! 2. **S level** — `s_scan_from` walks the matched T record's children,
//!    seeded by the per-T-node jump table, again resuming across consecutive
//!    keys.
//! 3. **Child level** — path-compressed rewrites, embedded-region recursion
//!    or a pointer hop into a child container.
//!
//! The cursor carries a `Frame` per region: the resolved container (by
//! registry index, so a reallocation updates every holder at once), and the
//! chain of enclosing embedded containers with their eject contexts.
//!
//! # Structural changes without restarts
//!
//! Before splicing bytes into a region the engine calls `make_room`: while an
//! enclosing embedded container would overflow (or the surrounding container
//! passes the eject threshold), the *outermost* embedded container on the
//! path is ejected into a standalone container — and instead of restarting,
//! the engine **remaps** every live frame and offset through the eject (the
//! moved byte range shifts by a constant) and continues exactly where it
//! was.  All edits are logged as `Event`s (grow / shrink / eject) in the
//! per-container-visit `Site`; suspended frames re-synchronise lazily
//! against the log when control returns to them.
//!
//! # Gap coalescing
//!
//! When a batch of sorted keys misses in the same spot (between the same two
//! existing records), the engine builds **one** node stream for the whole
//! run and opens **one** gap (`Container::insert_gap`) for it, instead of
//! one memmove per record.  Runs are bounded by `MAX_SPLICE_BYTES` so a
//! giant batch cannot blow the 19-bit container size field; the T-level loop
//! then resumes at the splice point.  Containers are checked against the
//! split threshold between key groups, so a batch splits a container as
//! eagerly as point puts do (vertical splits, paper Figure 11).
//!
//! # Errors
//!
//! The old `assert!(attempts <= 32)` process abort is gone.  The only loop
//! left — ejecting enclosing embeds until the edit fits — is bounded by the
//! embed nesting depth; if it ever fails to converge the engine returns
//! [`WriteError::StructuralLoop`], surfaced as a typed error through
//! [`crate::HyperionDb`].

use crate::builder::StreamBuilder;
use crate::config::HyperionConfig;
use crate::container::{ContainerHandle, ContainerRef, CJT_GROUP, CJT_MAX_GROUPS, HEADER_SIZE};
use crate::node::{
    delta_for, delta_of, is_invalid, is_t_node, parse_pc_node, parse_s_node, parse_t_node,
    ChildKind, NodeType, SNode, TNode, HP_SIZE, JS_SIZE, TNODE_JT_ENTRIES, TNODE_JT_SIZE,
    TNODE_JT_STRIDE, VALUE_SIZE,
};
use crate::scan::{
    collect_s_records, collect_t_records_trusted, s_scan, s_scan_from, skip_t_children, t_scan,
    t_scan_from,
};
use crate::scan_kernel::{emit_key_lane, ScanBackend};
use crate::seqlock::MapSeq;
use crate::shortcut::Shortcut;
use crate::stats::TrieCounters;
use hyperion_mem::{HyperionPointer, MemoryManager};

/// Lower bound of the adaptive splice cap (the old fixed cap): even a
/// container already past its split threshold still coalesces runs of this
/// many bytes.
pub(crate) const MAX_SPLICE_BYTES: usize = 3072;

/// Upper bound of the adaptive splice cap.  Together with the split
/// threshold ceiling (208 KiB at maximum split delay) this keeps transient
/// container growth far below the 19-bit container size field.
const MAX_SPLICE_CAP: usize = 48 * 1024;

/// Slop added to `make_room` requests so follow-up fix-ups (sibling delta
/// re-encoding materialising an explicit key byte) cannot overflow an
/// embedded container that was measured only for the primary splice.
const ROOM_SLOP: usize = 8;

/// Defensive bound on consecutive ejections for a single edit.  Embeds nest
/// at most ~85 deep (each costs ≥ 3 bytes of a ≤ 255-byte body chain), so
/// hitting this bound means a structural invariant is broken.
const MAX_EJECTS_PER_EDIT: usize = 130;

/// Typed failure of the write engine.
///
/// The engine performs a bounded number of in-place structural changes per
/// edit; exceeding the bound indicates a broken structural invariant.  The
/// error is surfaced through [`crate::HyperionDb`] as
/// [`crate::HyperionError::StructuralLoop`] instead of aborting the process
/// (the old write path panicked after 32 retry attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WriteError {
    /// A single edit required more structural changes than the nesting depth
    /// of the trie allows; the map should be considered corrupt.
    StructuralLoop,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::StructuralLoop => {
                write!(f, "write engine failed to converge (structural loop)")
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// One pending offset-field adjustment gathered before a byte shift.
enum Fix {
    /// Add `delta` to the u16 at `pos` (jump successor / T-node jump table).
    U16 { pos: usize, delta: i64 },
    /// Zero the u16 at `pos` (the target was removed).
    U16Clear { pos: usize },
    /// Add `delta` to the offset part of the container-jump-table entry at `pos`.
    Cjt { pos: usize, delta: i64 },
    /// Zero the container-jump-table entry at `pos`.
    CjtClear { pos: usize },
}

/// A byte-shift performed by the low-level plumbing, recorded so the batch
/// layer can convert it into a [`Event`] with the right container id.
enum RawEdit {
    Grow { at: usize, len: usize },
    Shrink { at: usize, len: usize },
}

/// A structural edit inside a [`Site`]; suspended frames replay events to
/// re-synchronise their offsets.
enum Event {
    /// `len` bytes inserted at `at` in container `cid`; offsets `>= at`
    /// shift right.
    Grow { cid: usize, at: usize, len: usize },
    /// `len` bytes removed at `at` in container `cid`; offsets `>= at + len`
    /// shift left.
    Shrink { cid: usize, at: usize, len: usize },
    /// The embedded container whose size byte sat at `embed_off` in
    /// container `old` was ejected: its body `[lo, hi)` moved into the fresh
    /// standalone container `new` (starting at [`HEADER_SIZE`]), and the
    /// embed was replaced by a 5-byte Hyperion Pointer.
    Eject {
        old: usize,
        embed_off: usize,
        lo: usize,
        hi: usize,
        new: usize,
    },
}

/// An enclosing embedded container on the descent path: the flag byte of the
/// S record owning it, and the offset of its size byte (both in the frame's
/// container).
#[derive(Clone, Copy)]
struct EmbedCtx {
    s_flag: usize,
    child: usize,
}

/// The write cursor's per-region context: which container the region lives
/// in (registry index) and the enclosing embedded containers, outermost
/// first.  Frames are cheap to clone; each recursion level owns one and
/// re-synchronises it against the event log after a callee returns.
#[derive(Clone)]
struct Frame {
    cid: usize,
    embeds: Vec<EmbedCtx>,
}

impl Frame {
    fn top() -> Frame {
        Frame {
            cid: 0,
            embeds: Vec::new(),
        }
    }

    /// Offsets of the enclosing embed size bytes (the legacy "embed chain").
    fn chain(&self) -> Vec<usize> {
        self.embeds.iter().map(|e| e.child).collect()
    }
}

/// A deferred Hyperion-Pointer write-back: container `child` was ejected out
/// of `(cid, off)`; if the child's HP changes later (its container was
/// reallocated while growing), the parent field must be rewritten.
struct Link {
    epoch: usize,
    cid: usize,
    off: usize,
    child: usize,
}

/// Per-container-visit state of the write cursor: the registry of open
/// containers (index-addressed so a reallocation is visible to every frame),
/// the event log, and pending HP write-backs.
struct Site {
    regs: Vec<ContainerRef>,
    events: Vec<Event>,
    links: Vec<Link>,
}

impl Site {
    fn new(c: ContainerRef) -> Site {
        Site {
            regs: vec![c],
            events: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Replays `events[*epoch..]` onto `frame` and the raw offsets `offs`
    /// (all located in `frame.cid`'s container), advancing `epoch`.
    fn sync(&self, epoch: &mut usize, frame: &mut Frame, offs: &mut [&mut usize]) {
        for event in &self.events[*epoch..] {
            match *event {
                Event::Grow { cid, at, len } if cid == frame.cid => {
                    for e in frame.embeds.iter_mut() {
                        if e.s_flag >= at {
                            e.s_flag += len;
                        }
                        if e.child >= at {
                            e.child += len;
                        }
                    }
                    for o in offs.iter_mut() {
                        if **o >= at {
                            **o += len;
                        }
                    }
                }
                Event::Shrink { cid, at, len } if cid == frame.cid => {
                    for e in frame.embeds.iter_mut() {
                        debug_assert!(e.s_flag < at || e.s_flag >= at + len);
                        if e.s_flag >= at + len {
                            e.s_flag -= len;
                        }
                        debug_assert!(e.child < at || e.child >= at + len);
                        if e.child >= at + len {
                            e.child -= len;
                        }
                    }
                    for o in offs.iter_mut() {
                        debug_assert!(**o < at || **o >= at + len, "anchor in shrunk range");
                        if **o >= at + len {
                            **o -= len;
                        }
                    }
                }
                Event::Eject {
                    old,
                    embed_off,
                    lo,
                    hi,
                    new,
                } if old == frame.cid => {
                    let inside = frame.embeds.first().is_some_and(|e| e.child == embed_off);
                    if inside {
                        // This frame's region lies inside the moved body: the
                        // ejected embed disappears from the chain and every
                        // offset shifts by a constant into the new container.
                        frame.embeds.remove(0);
                        for e in frame.embeds.iter_mut() {
                            debug_assert!(e.s_flag >= lo && e.s_flag < hi);
                            e.s_flag = HEADER_SIZE + (e.s_flag - lo);
                            e.child = HEADER_SIZE + (e.child - lo);
                        }
                        for o in offs.iter_mut() {
                            // `hi` itself is a valid anchor: an insert point
                            // at the end of the embedded body.
                            debug_assert!(**o >= lo && **o <= hi, "anchor outside ejected body");
                            **o = HEADER_SIZE + (**o - lo);
                        }
                        frame.cid = new;
                    } else {
                        // The frame encloses (or precedes) the ejected embed:
                        // the embed's bytes were replaced by a 5-byte HP.
                        let shift = HP_SIZE as isize - (hi - embed_off) as isize;
                        for e in frame.embeds.iter_mut() {
                            debug_assert!(e.child < embed_off || e.child >= hi);
                            if e.s_flag >= hi {
                                e.s_flag = (e.s_flag as isize + shift) as usize;
                            }
                            if e.child >= hi {
                                e.child = (e.child as isize + shift) as usize;
                            }
                        }
                        for o in offs.iter_mut() {
                            debug_assert!(**o < embed_off || **o >= hi);
                            if **o >= hi {
                                **o = (**o as isize + shift) as usize;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        *epoch = self.events.len();
    }

    /// Replays `events[epoch..]` onto a single point, which — unlike frame
    /// anchors — may also sit *inside* a later-ejected body (HP write-back
    /// positions do).  Returns the point's current `(cid, off)`.
    fn sync_point(&self, epoch: usize, mut cid: usize, mut off: usize) -> (usize, usize) {
        for event in &self.events[epoch..] {
            match *event {
                Event::Grow { cid: c, at, len } if c == cid && off >= at => {
                    off += len;
                }
                Event::Shrink { cid: c, at, len } if c == cid && off >= at + len => {
                    off -= len;
                }
                Event::Eject {
                    old,
                    embed_off,
                    lo,
                    hi,
                    new,
                } if old == cid => {
                    if off >= lo && off < hi {
                        cid = new;
                        off = HEADER_SIZE + (off - lo);
                    } else if off >= hi {
                        off =
                            (off as isize + HP_SIZE as isize - (hi - embed_off) as isize) as usize;
                    }
                }
                _ => {}
            }
        }
        (cid, off)
    }

    /// The bounds of the region `frame` addresses: the innermost embedded
    /// body, or the whole node stream.
    fn region(&self, frame: &Frame) -> (usize, usize) {
        let c = &self.regs[frame.cid];
        match frame.embeds.last() {
            Some(e) => {
                let size = c.bytes()[e.child] as usize;
                (e.child + 1, e.child + size)
            }
            None => (c.stream_start(), c.stream_end()),
        }
    }
}

/// Outcome of one `write_tops` pass over a region.
struct TopsOutcome {
    /// Entries consumed (the top-level loop may stop early at a split
    /// boundary; embedded regions always consume everything).
    consumed: usize,
    /// How many of the consumed entries created a new key.
    inserted: usize,
    /// Total T records walked across the visit (container-jump-table
    /// trigger).  A point put contributes its single scan; a batch's resumed
    /// scans sum to roughly one walk of the container — either way the
    /// trigger reflects how much linear scanning the container costs, which
    /// a per-scan maximum under resumed batch scans never did (batch-built
    /// containers used to end up with no jump table at all).
    scanned: usize,
}

/// The write engine: a borrow of the map's memory manager, configuration and
/// structural counters for the duration of one mutation.
pub(crate) struct WriteEngine<'a> {
    mm: &'a mut MemoryManager,
    config: &'a HyperionConfig,
    counters: &'a mut TrieCounters,
    /// The map's hashed shortcut layer.  The engine keeps it coherent while
    /// applying its event log: whenever the container pointer stored in a
    /// parent S-node changes or is freed (splits, reallocations, subtree
    /// deletes), the entry for that prefix is retagged or invalidated, and
    /// completed descents publish fresh entries so writes warm the cache.
    shortcut: &'a Shortcut,
    /// The owning map's seqlock.  The engine never moves it itself — the
    /// trie-level entry points open the mutation span — but it asserts the
    /// span is held (the version is odd) on entry and notes structural
    /// events (splits, ejections) against it, since those are the moments a
    /// concurrent optimistic reader is most likely to observe torn state.
    seq: &'a MapSeq,
    /// Byte shifts performed by the low-level plumbing since the last drain;
    /// the batch layer converts them into [`Event`]s.
    edits: Vec<RawEdit>,
}

impl<'a> WriteEngine<'a> {
    pub(crate) fn new(
        mm: &'a mut MemoryManager,
        config: &'a HyperionConfig,
        counters: &'a mut TrieCounters,
        shortcut: &'a Shortcut,
        seq: &'a MapSeq,
    ) -> WriteEngine<'a> {
        seq.assert_mutating();
        WriteEngine {
            mm,
            config,
            counters,
            shortcut,
            seq,
            edits: Vec::new(),
        }
    }

    /// Byte cap of one coalesced splice into `c`: a quarter of the
    /// container's current split threshold (clamped to
    /// `[MAX_SPLICE_BYTES, MAX_SPLICE_CAP]`), so large sorted runs coalesce
    /// proportionally to how far the container is allowed to grow before the
    /// next split check instead of stopping at a fixed 3 KiB.
    fn splice_cap(&self, c: &ContainerRef) -> usize {
        (self.config.split_threshold(c.split_delay()) / 4).clamp(MAX_SPLICE_BYTES, MAX_SPLICE_CAP)
    }

    fn resolve_handle(&self, hp: HyperionPointer, hint: u8) -> ContainerHandle {
        if hp.superbin() == 0 && self.mm.is_chained(hp) {
            let (index, _, _) = self
                .mm
                .resolve_chained(hp, hint)
                .expect("chained pointer without valid slot");
            ContainerHandle::ChainSlot { head: hp, index }
        } else {
            ContainerHandle::Standalone(hp)
        }
    }

    // =====================================================================
    // batch descent: pointer -> container -> T level -> S level -> children
    // =====================================================================

    /// Applies `entries` (strictly ascending full keys, suffixes starting at
    /// `depth` all non-empty) below the container(s) referenced by `*stored`.
    ///
    /// Progress is reported through the out-parameters so that a mid-batch
    /// engine failure leaves the caller with the last *committed* stored
    /// pointer (splits free the old allocation — returning the stale HP
    /// would dangle) and the inserts applied so far; only the failing
    /// container visit's own tally is indeterminate.
    pub(crate) fn write_into_pointer(
        &mut self,
        stored: &mut HyperionPointer,
        depth: usize,
        entries: &[(Vec<u8>, u64)],
        inserted: &mut usize,
    ) -> Result<(), WriteError> {
        debug_assert!(!entries.is_empty());
        let mut rest = entries;
        while !rest.is_empty() {
            // Crash-consistent boundary for deferred failpoint trips — but
            // only at the top-level loop: nested descents hold pending HP
            // write-backs in the enclosing visits, and the enclosing top
            // container may itself have moved without `*stored` hearing yet.
            #[cfg(feature = "failpoints")]
            if depth == 0 {
                hyperion_mem::failpoint::safe_point();
            }
            let hint = rest[0].0[depth];
            let (handle, group_len) = if stored.superbin() == 0 && self.mm.is_chained(*stored) {
                // Slot routing is monotone in the first key byte (chunk
                // `key >> 5`, falling back to the next valid slot below), so
                // one valid-slot lookup and a binary search bound the whole
                // same-slot run — no per-entry probing.
                let valid = self.mm.chained_valid_slots(*stored);
                let hint_block = (hint >> 5) as usize;
                let index = valid
                    .iter()
                    .copied()
                    .filter(|&slot| slot <= hint_block)
                    .max()
                    .expect("chained pointer without valid slot");
                let j = match valid.iter().copied().find(|&slot| slot > hint_block) {
                    Some(next) => {
                        let boundary = (next * 32) as u8;
                        rest.partition_point(|(key, _)| key[depth] < boundary)
                    }
                    None => rest.len(),
                };
                (
                    ContainerHandle::ChainSlot {
                        head: *stored,
                        index,
                    },
                    j,
                )
            } else {
                (ContainerHandle::Standalone(*stored), rest.len())
            };
            let (consumed, n, new_stored) =
                self.write_container(handle, depth, &rest[..group_len])?;
            debug_assert!(consumed >= 1, "write_container must make progress");
            *inserted += n;
            *stored = new_stored;
            rest = &rest[consumed..];
        }
        Ok(())
    }

    /// Applies a prefix of `entries` to one container, then performs the
    /// deferred maintenance (HP write-backs, container-jump-table rebuild,
    /// vertical split).  Returns `(entries consumed, inserted, stored HP)`.
    fn write_container(
        &mut self,
        handle: ContainerHandle,
        depth: usize,
        entries: &[(Vec<u8>, u64)],
    ) -> Result<(usize, usize, HyperionPointer), WriteError> {
        let mut opened = ContainerRef::open(self.mm, handle);
        // The engine's offsets all assume the lane-free layout; strip any
        // key lane up front and re-emit it when the operation completes.
        opened.strip_key_lane();
        let mut site = Site::new(opened);
        let outcome = self.write_tops(&mut site, Frame::top(), depth, entries, true)?;
        self.flush_links(&mut site);
        let c = &mut site.regs[0];
        if self.config.container_jump_table
            && outcome.scanned >= self.config.container_jump_table_scan_limit
        {
            // Site sits at this call only: the mid-split rebuild in
            // `rebuild_split_halves` runs after the old container is freed,
            // where even a deferred trip schedule should not add noise.
            hyperion_mem::fail_point!("write.cjt_rebuild");
            self.rebuild_container_jump_table(c);
            self.edits.clear();
        }
        let stored = if self.config.container_split {
            // `maybe_split` owns lane re-emission on its no-split and abort
            // exits; after an in-chain split (also `None`) the old slot
            // block is freed and `c`'s bytes must not be touched — only the
            // handle-derived stored pointer is still meaningful.
            match self.maybe_split(c) {
                Some(new_stored) => new_stored,
                None => c.handle().stored_pointer(),
            }
        } else {
            // Re-emit before the stored pointer is read: the insert may
            // grow the allocation, and the caller propagates the pointer it
            // reads here.
            self.maybe_emit_lane(c);
            c.handle().stored_pointer()
        };
        Ok((outcome.consumed, outcome.inserted, stored))
    }

    /// Writes every pending Hyperion-Pointer write-back (innermost first)
    /// *without* discharging the links: containers that keep growing are
    /// re-flushed later.  Used to make the container bytes coherent before
    /// the write cursor re-reads a child pointer mid-group.
    fn flush_links_keep(&mut self, site: &mut Site) {
        for i in (0..site.links.len()).rev() {
            let link = &site.links[i];
            let current = site.regs[link.child].handle().stored_pointer();
            let (cid, off) = site.sync_point(link.epoch, link.cid, link.off);
            if site.regs[cid].read_hp(off) != current {
                site.regs[cid].write_hp(off, current);
            }
        }
    }

    /// Discharges the pending write-back anchored at `(cid, off)` and every
    /// link parented inside the released child's container subtree.  Called
    /// after a pointer-path descent took over that subtree: the descent
    /// performs its own write-backs (possibly splitting or reallocating the
    /// containers), so this site's cached `ContainerRef`s for the subtree —
    /// and therefore its links — are no longer authoritative.
    fn release_subtree_links(&mut self, site: &mut Site, cid: usize, off: usize) {
        let mut released: Vec<usize> = Vec::new();
        let mut k = 0;
        // Links are created outermost-first, so one forward pass sees every
        // parent before the links it owns.
        while k < site.links.len() {
            let link = &site.links[k];
            let (link_cid, link_off) = site.sync_point(link.epoch, link.cid, link.off);
            if (link_cid == cid && link_off == off) || released.contains(&link_cid) {
                released.push(site.links[k].child);
                site.links.remove(k);
            } else {
                k += 1;
            }
        }
    }

    /// Rewrites every ejected child's Hyperion Pointer whose container was
    /// reallocated after the eject, and discharges the links.
    ///
    /// This is the op-close write-back, so each ejected child is also laned
    /// here, innermost first: the lane insert may reallocate the child, so it
    /// must precede the parent-slot write, and the parent itself is laned
    /// only when its own (earlier-created, later-visited) link is flushed —
    /// the slot offset is therefore still valid in the lane-free layout.
    fn flush_links(&mut self, site: &mut Site) {
        for i in (0..site.links.len()).rev() {
            let Link {
                epoch,
                cid,
                off,
                child,
            } = site.links[i];
            self.maybe_emit_lane(&mut site.regs[child]);
            let current = site.regs[child].handle().stored_pointer();
            let (cid, off) = site.sync_point(epoch, cid, off);
            if site.regs[cid].read_hp(off) != current {
                site.regs[cid].write_hp(off, current);
            }
        }
        site.links.clear();
    }

    /// The T-level loop of the write cursor: walks one region's T records,
    /// resuming the scan across consecutive keys, splicing coalesced runs of
    /// new subtrees at misses and descending at hits.
    ///
    /// `top` marks the top-level call for a container (enables CJT seeding
    /// and between-group split checks); embedded regions pass `false`.
    fn write_tops(
        &mut self,
        site: &mut Site,
        mut frame: Frame,
        depth: usize,
        entries: &[(Vec<u8>, u64)],
        top: bool,
    ) -> Result<TopsOutcome, WriteError> {
        let mut epoch = site.events.len();
        let (mut pos, _) = site.region(&frame);
        let mut prev: Option<u8> = None;
        let mut first_scan = true;
        let mut inserted = 0usize;
        let mut scanned_total = 0usize;
        let mut i = 0usize;
        while i < entries.len() {
            let (_, region_end) = site.region(&frame);
            let target = entries[i].0[depth];
            let ts = t_scan_from(
                &site.regs[frame.cid],
                pos,
                region_end,
                prev,
                target,
                top && first_scan,
            );
            first_scan = false;
            scanned_total += ts.scanned;
            match ts.found {
                None => {
                    // Coalesced run: every consecutive entry whose first byte
                    // sorts before the successor record joins one splice.
                    let cap = self.splice_cap(&site.regs[frame.cid]);
                    let limit = ts.successor.as_ref().map(|s| s.key);
                    let mut est = splice_estimate(&entries[i].0, depth);
                    let mut j = i + 1;
                    while j < entries.len() {
                        let k0 = entries[j].0[depth];
                        if limit.is_some_and(|l| k0 >= l) {
                            break;
                        }
                        let e = splice_estimate(&entries[j].0, depth);
                        if est + e > cap {
                            break;
                        }
                        est += e;
                        j += 1;
                    }
                    let capped =
                        j < entries.len() && !limit.is_some_and(|l| entries[j].0[depth] >= l);
                    let run: Vec<(Vec<u8>, u64)> = entries[i..j]
                        .iter()
                        .map(|(k, v)| (k[depth..].to_vec(), *v))
                        .collect();
                    let stream = {
                        let parent_size = site.regs[frame.cid].size();
                        let mut b = StreamBuilder::new(self.mm, self.config)
                            .with_parent_size(parent_size)
                            .with_shortcut(self.shortcut, &entries[i].0[..depth])
                            .with_jumps(top);
                        b.build_stream(ts.prev_key, &run)
                    };
                    self.edits.clear();
                    let mut at = ts.insert_at;
                    self.make_room(
                        site,
                        &mut frame,
                        &mut epoch,
                        stream.len() + ROOM_SLOP,
                        &mut [&mut at],
                    )?;
                    self.grow_level(site, &frame, at, stream.len(), true);
                    site.regs[frame.cid].bytes_mut()[at..at + stream.len()]
                        .copy_from_slice(&stream);
                    let last_key = *run.last().map(|(k, _)| &k[0]).expect("non-empty run");
                    if let Some(succ) = &ts.successor {
                        self.fix_sibling_delta_level(
                            site,
                            &frame,
                            at + stream.len(),
                            succ.key,
                            Some(last_key),
                        );
                    }
                    // The events just logged all lie at or after the splice
                    // point; no live anchor of this level shifts.
                    epoch = site.events.len();
                    inserted += j - i;
                    if capped {
                        // The run was cut inside a T group: rescan the just
                        // written records so the next key finds its T record.
                        pos = at;
                        prev = ts.prev_key;
                    } else {
                        pos = at + stream.len();
                        prev = Some(last_key);
                    }
                    i = j;
                }
                Some(t) => {
                    let mut j = i + 1;
                    while j < entries.len() && entries[j].0[depth] == t.key {
                        j += 1;
                    }
                    let mut t_off = t.offset;
                    let (group_inserted, next_pos) = self.write_t_group(
                        site,
                        &mut frame,
                        &mut epoch,
                        &mut t_off,
                        ts.prev_key,
                        depth,
                        &entries[i..j],
                    )?;
                    inserted += group_inserted;
                    pos = next_pos;
                    prev = Some(t.key);
                    i = j;
                }
            }
            if top {
                // Group boundary: no suspended frame references the event
                // log here, so pending HP write-backs can be flushed and the
                // log truncated — keeping both the log and the per-link
                // replay cost proportional to one group, not the batch.
                self.flush_links(site);
                site.events.clear();
                epoch = 0;
                if i < entries.len() {
                    let c = &site.regs[0];
                    if self.config.container_split
                        && c.size() >= self.config.split_threshold(c.split_delay())
                    {
                        // Stop early so the container is split before it
                        // grows further; the caller re-dispatches the
                        // remaining keys.
                        break;
                    }
                }
            }
        }
        Ok(TopsOutcome {
            consumed: i,
            inserted,
            scanned: scanned_total,
        })
    }

    /// Applies a group of entries sharing `key[depth]` below the T record at
    /// `t_off`.  Returns the insert count and the offset just past the T
    /// subtree (the resume position for the next T sibling).
    #[allow(clippy::too_many_arguments)]
    fn write_t_group(
        &mut self,
        site: &mut Site,
        frame: &mut Frame,
        epoch: &mut usize,
        t_off: &mut usize,
        t_prev_key: Option<u8>,
        depth: usize,
        entries: &[(Vec<u8>, u64)],
    ) -> Result<(usize, usize), WriteError> {
        let mut inserted = 0usize;
        let mut i = 0usize;
        // A suffix of length one terminates at the T record itself.
        if entries[0].0.len() == depth + 1 {
            let t = parse_t_node(site.regs[frame.cid].bytes(), *t_off, t_prev_key)
                .expect("T record for value update");
            if let Some(off) = t.value_offset {
                site.regs[frame.cid].write_u64(off, entries[0].1);
            } else {
                self.make_room(site, frame, epoch, VALUE_SIZE + ROOM_SLOP, &mut [t_off])?;
                let value_pos = *t_off + 1 + t.explicit_key as usize;
                self.grow_level(site, &frame.clone(), value_pos, VALUE_SIZE, false);
                site.sync(epoch, frame, &mut [t_off]);
                let c = &mut site.regs[frame.cid];
                c.write_u64(*t_off + 1 + t.explicit_key as usize, entries[0].1);
                let flag = c.bytes()[*t_off];
                c.bytes_mut()[*t_off] = (flag & !0b11) | NodeType::LeafWithValue as u8;
                inserted += 1;
            }
            i = 1;
        }
        let mut children_seen = 0usize;
        let mut s_inserted_any = false;
        if i < entries.len() {
            // S-level loop, resuming the child scan across consecutive keys.
            let t = parse_t_node(site.regs[frame.cid].bytes(), *t_off, t_prev_key)
                .expect("T record for child walk");
            let jt = Some((t.offset, t.jt_offset));
            let mut s_pos = t.header_end;
            let mut s_prev: Option<u8> = None;
            let mut first_scan = true;
            while i < entries.len() {
                let (_, region_end) = site.region(frame);
                let target = entries[i].0[depth + 1];
                let ss = s_scan_from(
                    &site.regs[frame.cid],
                    s_pos,
                    region_end,
                    s_prev,
                    target,
                    if first_scan { jt } else { None },
                );
                first_scan = false;
                children_seen += ss.visited;
                match ss.found {
                    None => {
                        let cap = self.splice_cap(&site.regs[frame.cid]);
                        let limit = ss.successor.as_ref().map(|s| s.key);
                        let mut est = splice_estimate(&entries[i].0, depth + 1);
                        let mut j = i + 1;
                        while j < entries.len() {
                            let k1 = entries[j].0[depth + 1];
                            if limit.is_some_and(|l| k1 >= l) {
                                break;
                            }
                            let e = splice_estimate(&entries[j].0, depth + 1);
                            if est + e > cap {
                                break;
                            }
                            est += e;
                            j += 1;
                        }
                        let capped = j < entries.len()
                            && !limit.is_some_and(|l| entries[j].0[depth + 1] >= l);
                        let run: Vec<(Vec<u8>, u64)> = entries[i..j]
                            .iter()
                            .map(|(k, v)| (k[depth + 1..].to_vec(), *v))
                            .collect();
                        let stream = {
                            let parent_size = site.regs[frame.cid].size();
                            let mut b = StreamBuilder::new(self.mm, self.config)
                                .with_parent_size(parent_size)
                                .with_shortcut(self.shortcut, &entries[i].0[..depth + 1]);
                            b.build_s_records(ss.prev_key, &run)
                        };
                        self.edits.clear();
                        let mut at = ss.insert_at;
                        self.make_room(
                            site,
                            frame,
                            epoch,
                            stream.len() + ROOM_SLOP,
                            &mut [&mut at, t_off],
                        )?;
                        self.grow_level(site, &frame.clone(), at, stream.len(), false);
                        site.regs[frame.cid].bytes_mut()[at..at + stream.len()]
                            .copy_from_slice(&stream);
                        let last_key = *run.last().map(|(k, _)| &k[0]).expect("non-empty run");
                        if let Some(succ) = &ss.successor {
                            self.fix_sibling_delta_level(
                                site,
                                &frame.clone(),
                                at + stream.len(),
                                succ.key,
                                Some(last_key),
                            );
                        }
                        // Self-inflicted events only; anchors precede them.
                        *epoch = site.events.len();
                        inserted += j - i;
                        s_inserted_any = true;
                        children_seen += j - i;
                        if capped {
                            s_pos = at;
                            s_prev = ss.prev_key;
                        } else {
                            s_pos = at + stream.len();
                            s_prev = Some(last_key);
                        }
                        i = j;
                    }
                    Some(s) => {
                        let mut j = i + 1;
                        while j < entries.len() && entries[j].0[depth + 1] == s.key {
                            j += 1;
                        }
                        let mut s_off = s.offset;
                        let (group_inserted, new_any, next_s) = self.write_s_group(
                            site,
                            frame,
                            epoch,
                            &mut s_off,
                            t_off,
                            ss.prev_key,
                            depth,
                            &entries[i..j],
                        )?;
                        inserted += group_inserted;
                        s_inserted_any |= new_any;
                        children_seen += 1;
                        s_pos = next_s;
                        s_prev = Some(s.key);
                        i = j;
                    }
                }
            }
        }
        // Jump maintenance mirrors the point-put policy: after new children
        // were added at the top level of a container, the T record may earn
        // a jump successor and a jump table.
        if frame.embeds.is_empty() && s_inserted_any {
            self.maintain_t_jumps_level(site, frame, epoch, *t_off, children_seen);
        }
        let c = &site.regs[frame.cid];
        let t = parse_t_node(c.bytes(), *t_off, t_prev_key).expect("T record after group");
        let (_, region_end) = site.region(frame);
        Ok((inserted, skip_t_children(c, &t, region_end)))
    }

    /// Applies a group of entries sharing `key[..depth + 2]` below the S
    /// record at `s_off`.  Returns `(inserted, any structural insert, offset
    /// just past the S record)`.
    #[allow(clippy::too_many_arguments)]
    fn write_s_group(
        &mut self,
        site: &mut Site,
        frame: &mut Frame,
        epoch: &mut usize,
        s_off: &mut usize,
        t_off: &mut usize,
        s_prev_key: Option<u8>,
        depth: usize,
        entries: &[(Vec<u8>, u64)],
    ) -> Result<(usize, bool, usize), WriteError> {
        let mut inserted = 0usize;
        let mut structural = false;
        let mut i = 0usize;
        // A suffix of length two terminates at the S record itself.
        if entries[0].0.len() == depth + 2 {
            let s = parse_s_node(site.regs[frame.cid].bytes(), *s_off, s_prev_key)
                .expect("S record for value update");
            if let Some(off) = s.value_offset {
                site.regs[frame.cid].write_u64(off, entries[0].1);
            } else {
                self.make_room(
                    site,
                    frame,
                    epoch,
                    VALUE_SIZE + ROOM_SLOP,
                    &mut [s_off, t_off],
                )?;
                let value_pos = *s_off + 1 + s.explicit_key as usize;
                self.grow_level(site, &frame.clone(), value_pos, VALUE_SIZE, false);
                site.sync(epoch, frame, &mut [s_off, t_off]);
                let c = &mut site.regs[frame.cid];
                c.write_u64(*s_off + 1 + s.explicit_key as usize, entries[0].1);
                let flag = c.bytes()[*s_off];
                c.bytes_mut()[*s_off] = (flag & !0b11) | NodeType::LeafWithValue as u8;
                inserted += 1;
                structural = true;
            }
            i = 1;
        }
        // Child dispatch loop: a huge group sharing this 2-byte prefix is
        // fed to the child in size-bounded chunks.  Encoding the whole group
        // at once could build a child body past the 19-bit container size
        // field; after each chunk the S record is re-read, because the child
        // kind upgrades along the way (None -> PC/Embedded -> Pointer), and
        // the later chunks flow through the split-checked pointer path.
        while i < entries.len() {
            let s = parse_s_node(site.regs[frame.cid].bytes(), *s_off, s_prev_key)
                .expect("S record for child edit");
            let cap = self.splice_cap(&site.regs[frame.cid]);
            let chunk_end = |entries: &[(Vec<u8>, u64)], from: usize| -> usize {
                let mut est = 0usize;
                let mut j = from;
                while j < entries.len() {
                    let e = splice_estimate(&entries[j].0, depth + 2);
                    if j > from && est + e > cap {
                        break;
                    }
                    est += e;
                    j += 1;
                }
                j
            };
            match s.child {
                ChildKind::None => {
                    let j = chunk_end(entries, i);
                    let run: Vec<(Vec<u8>, u64)> = entries[i..j]
                        .iter()
                        .map(|(k, v)| (k[depth + 2..].to_vec(), *v))
                        .collect();
                    let (kind, bytes) = {
                        let parent_size = site.regs[frame.cid].size();
                        let mut b = StreamBuilder::new(self.mm, self.config)
                            .with_parent_size(parent_size)
                            .with_shortcut(self.shortcut, &entries[i].0[..depth + 2]);
                        b.encode_child(&run)
                    };
                    self.edits.clear();
                    let mut at = s.end;
                    self.make_room(
                        site,
                        frame,
                        epoch,
                        bytes.len() + ROOM_SLOP,
                        &mut [&mut at, s_off, t_off],
                    )?;
                    self.grow_level(site, &frame.clone(), at, bytes.len(), false);
                    site.regs[frame.cid].bytes_mut()[at..at + bytes.len()].copy_from_slice(&bytes);
                    self.set_child_kind(&mut site.regs[frame.cid], *s_off, kind);
                    // Self-inflicted events only; anchors precede the splice.
                    *epoch = site.events.len();
                    inserted += j - i;
                    structural = true;
                    i = j;
                }
                ChildKind::Pointer => {
                    // Child containers run their own split checks; the whole
                    // rest of the group can descend at once.
                    let group = &entries[i..];
                    let hp_pos = s.child_offset.expect("pointer child offset");
                    // An earlier chunk may have ejected this child (and
                    // nested children) and grown them, with the HP
                    // write-backs still pending — make the bytes coherent
                    // before trusting them, then hand the subtree's
                    // write-back responsibility to the pointer path.
                    self.flush_links_keep(site);
                    let child_hp = site.regs[frame.cid].read_hp(hp_pos);
                    let mut new_hp = child_hp;
                    let mut n = 0usize;
                    let result = self.write_into_pointer(&mut new_hp, depth + 2, group, &mut n);
                    // Commit the child's new stored pointer even on failure:
                    // a split may have freed the old allocation.
                    if new_hp != child_hp {
                        site.regs[frame.cid].write_hp(hp_pos, new_hp);
                    }
                    self.release_subtree_links(site, frame.cid, hp_pos);
                    // Publish the descent target: retags the entry if the
                    // child moved (the old allocation may be freed) and warms
                    // the cache for the keys just written.
                    if result.is_ok() {
                        self.shortcut.publish(&group[0].0[..depth + 2], new_hp);
                    } else {
                        self.shortcut.invalidate(&group[0].0[..depth + 2]);
                    }
                    inserted += n;
                    result?;
                    i = entries.len();
                }
                ChildKind::Embedded => {
                    let j = chunk_end(entries, i);
                    let child_off = s.child_offset.expect("embedded child offset");
                    let mut child_frame = frame.clone();
                    child_frame.embeds.push(EmbedCtx {
                        s_flag: *s_off,
                        child: child_off,
                    });
                    let out =
                        self.write_tops(site, child_frame, depth + 2, &entries[i..j], false)?;
                    debug_assert_eq!(out.consumed, j - i);
                    site.sync(epoch, frame, &mut [s_off, t_off]);
                    inserted += out.inserted;
                    structural |= out.inserted > 0;
                    i = j;
                }
                ChildKind::PathCompressed => {
                    let j = chunk_end(entries, i);
                    let (n, any) = self.write_pc_group(
                        site,
                        frame,
                        epoch,
                        s_off,
                        t_off,
                        &s,
                        depth,
                        &entries[i..j],
                    )?;
                    inserted += n;
                    structural |= any;
                    i = j;
                }
            }
        }
        let c = &site.regs[frame.cid];
        let s = parse_s_node(c.bytes(), *s_off, s_prev_key).expect("S record after group");
        Ok((inserted, structural, s.end))
    }

    /// Merges a group of new suffixes into an existing path-compressed node,
    /// rewriting it as whatever child encoding now fits.
    #[allow(clippy::too_many_arguments)]
    fn write_pc_group(
        &mut self,
        site: &mut Site,
        frame: &mut Frame,
        epoch: &mut usize,
        s_off: &mut usize,
        t_off: &mut usize,
        s: &SNode,
        depth: usize,
        group: &[(Vec<u8>, u64)],
    ) -> Result<(usize, bool), WriteError> {
        hyperion_mem::fail_point!("write.pc_rewrite");
        let child_off = s.child_offset.expect("pc child offset");
        let c = &site.regs[frame.cid];
        let (has_value, pc_value, range) = parse_pc_node(c.bytes(), child_off);
        let suffix: Vec<u8> = c.bytes()[range].to_vec();
        let total = (c.bytes()[child_off] & 0x7f) as usize;
        // Pure value update: a single entry matching the stored suffix.
        if group.len() == 1 && has_value && group[0].0[depth + 2..] == suffix[..] {
            site.regs[frame.cid].write_u64(child_off + 1, group[0].1);
            return Ok((0, false));
        }
        let mut merged: Vec<(Vec<u8>, u64)> = group
            .iter()
            .map(|(k, v)| (k[depth + 2..].to_vec(), *v))
            .collect();
        let mut updates = 0usize;
        match merged.binary_search_by(|(k, _)| k.as_slice().cmp(&suffix)) {
            Ok(_) => {
                // One entry overwrites the stored suffix's value.
                if has_value {
                    updates = 1;
                }
            }
            Err(idx) => {
                merged.insert(idx, (suffix, if has_value { pc_value } else { 0 }));
            }
        }
        let (kind, bytes) = {
            let parent_size = site.regs[frame.cid].size();
            let mut b = StreamBuilder::new(self.mm, self.config)
                .with_parent_size(parent_size)
                .with_shortcut(self.shortcut, &group[0].0[..depth + 2]);
            b.encode_child(&merged)
        };
        self.edits.clear();
        let mut at = child_off;
        let need = bytes.len().saturating_sub(total) + ROOM_SLOP;
        self.make_room(site, frame, epoch, need, &mut [&mut at, s_off, t_off])?;
        match bytes.len().cmp(&total) {
            std::cmp::Ordering::Greater => {
                self.grow_level(site, &frame.clone(), at + total, bytes.len() - total, false);
            }
            std::cmp::Ordering::Less => {
                self.shrink_level(site, &frame.clone(), at + bytes.len(), total - bytes.len());
            }
            std::cmp::Ordering::Equal => {}
        }
        // The grow/shrink happened past `at`; anchors are unaffected.
        *epoch = site.events.len();
        site.regs[frame.cid].bytes_mut()[at..at + bytes.len()].copy_from_slice(&bytes);
        self.set_child_kind(&mut site.regs[frame.cid], *s_off, kind);
        Ok((group.len() - updates, true))
    }

    // =====================================================================
    // in-place room making (ejects without restarts)
    // =====================================================================

    /// Ensures `need` bytes can be spliced into the frame's region without
    /// overflowing an enclosing embedded container or pushing the real
    /// container past the eject threshold, ejecting enclosing embeds (and
    /// remapping `frame` plus the `tracked` offsets) until the edit fits.
    fn make_room(
        &mut self,
        site: &mut Site,
        frame: &mut Frame,
        epoch: &mut usize,
        need: usize,
        tracked: &mut [&mut usize],
    ) -> Result<(), WriteError> {
        debug_assert_eq!(*epoch, site.events.len(), "stale epoch entering make_room");
        hyperion_mem::fail_point!("write.splice");
        let mut attempts = 0usize;
        loop {
            if frame.embeds.is_empty() {
                return Ok(());
            }
            let c = &site.regs[frame.cid];
            let overflow = frame
                .embeds
                .iter()
                .any(|e| c.bytes()[e.child] as usize + need > self.config.embedded_max)
                || c.size() + need > self.config.eject_threshold;
            if !overflow {
                return Ok(());
            }
            attempts += 1;
            if attempts > MAX_EJECTS_PER_EDIT {
                return Err(WriteError::StructuralLoop);
            }
            self.eject_outermost(site, frame, epoch, tracked);
        }
    }

    /// Ejects the outermost embedded container on the frame's path into a
    /// standalone container (paper Figure 8) and remaps the frame and the
    /// tracked offsets through the move — the write cursor keeps its
    /// position; no restart.
    fn eject_outermost(
        &mut self,
        site: &mut Site,
        frame: &mut Frame,
        epoch: &mut usize,
        tracked: &mut [&mut usize],
    ) {
        hyperion_mem::fail_point!("write.eject");
        let ctx = frame.embeds[0];
        let old = frame.cid;
        let size = site.regs[old].bytes()[ctx.child] as usize;
        let (lo, hi) = (ctx.child + 1, ctx.child + size);
        let body: Vec<u8> = site.regs[old].bytes()[lo..hi].to_vec();
        // No lane yet: the write cursor keeps writing into this child with
        // lane-free offsets.  `flush_links` lanes it when the op closes.
        let child = ContainerRef::create(self.mm, &body);
        let child_hp = child.handle().stored_pointer();
        // Replace the embed with a 5-byte HP in the old container.  The
        // byte shifts are fully described by the Eject event; the raw edits
        // from the plumbing are redundant and dropped.
        match size.cmp(&HP_SIZE) {
            std::cmp::Ordering::Greater => {
                self.shrink_stream(
                    &mut site.regs[old],
                    &[],
                    ctx.child + HP_SIZE,
                    size - HP_SIZE,
                );
            }
            std::cmp::Ordering::Less => {
                self.grow_stream(
                    &mut site.regs[old],
                    &[],
                    ctx.child + size,
                    HP_SIZE - size,
                    false,
                );
            }
            std::cmp::Ordering::Equal => {}
        }
        self.edits.clear();
        site.regs[old].write_hp(ctx.child, child_hp);
        self.set_child_kind(&mut site.regs[old], ctx.s_flag, ChildKind::Pointer);
        self.counters.ejections += 1;
        self.seq.note_structural();
        let new = site.regs.len();
        site.regs.push(child);
        site.events.push(Event::Eject {
            old,
            embed_off: ctx.child,
            lo,
            hi,
            new,
        });
        site.links.push(Link {
            epoch: site.events.len(),
            cid: old,
            off: ctx.child,
            child: new,
        });
        site.sync(epoch, frame, tracked);
    }

    // =====================================================================
    // event-logging wrappers over the byte-shift plumbing
    // =====================================================================

    fn grow_level(&mut self, site: &mut Site, frame: &Frame, at: usize, len: usize, t_ins: bool) {
        debug_assert!(self.edits.is_empty());
        let chain = frame.chain();
        self.grow_stream(&mut site.regs[frame.cid], &chain, at, len, t_ins);
        self.flush_edits(site, frame.cid);
    }

    fn shrink_level(&mut self, site: &mut Site, frame: &Frame, at: usize, len: usize) {
        debug_assert!(self.edits.is_empty());
        let chain = frame.chain();
        self.shrink_stream(&mut site.regs[frame.cid], &chain, at, len);
        self.flush_edits(site, frame.cid);
    }

    fn fix_sibling_delta_level(
        &mut self,
        site: &mut Site,
        frame: &Frame,
        offset: usize,
        node_key: u8,
        new_prev_key: Option<u8>,
    ) {
        debug_assert!(self.edits.is_empty());
        let chain = frame.chain();
        self.fix_sibling_delta(
            &mut site.regs[frame.cid],
            &chain,
            offset,
            node_key,
            new_prev_key,
        );
        self.flush_edits(site, frame.cid);
    }

    fn maintain_t_jumps_level(
        &mut self,
        site: &mut Site,
        frame: &Frame,
        epoch: &mut usize,
        t_offset: usize,
        child_count: usize,
    ) {
        debug_assert!(self.edits.is_empty());
        debug_assert!(frame.embeds.is_empty());
        self.maintain_t_jumps(&mut site.regs[frame.cid], t_offset, child_count);
        self.flush_edits(site, frame.cid);
        // The grows happened inside the T header, after `t_offset`: no live
        // anchor of the caller shifts, but its epoch must pass the events.
        *epoch = site.events.len();
    }

    fn flush_edits(&mut self, site: &mut Site, cid: usize) {
        for edit in self.edits.drain(..) {
            site.events.push(match edit {
                RawEdit::Grow { at, len } => Event::Grow { cid, at, len },
                RawEdit::Shrink { at, len } => Event::Shrink { cid, at, len },
            });
        }
    }

    // =====================================================================
    // byte-shift plumbing: offset fix-ups for js / jt / container jump table
    // =====================================================================

    fn set_child_kind(&mut self, c: &mut ContainerRef, s_flag_offset: usize, kind: ChildKind) {
        let flag = c.bytes()[s_flag_offset];
        c.bytes_mut()[s_flag_offset] = (flag & 0b0011_1111) | ((kind as u8) << 6);
    }

    fn collect_fixes(
        &self,
        c: &ContainerRef,
        at: usize,
        len: usize,
        is_insert: bool,
        t_record_inserted: bool,
    ) -> Vec<Fix> {
        let mut fixes = Vec::new();
        let stream_start = c.stream_start();
        let delta = if is_insert { len as i64 } else { -(len as i64) };
        // Container jump table entries.
        for i in 0..c.jt_groups() * CJT_GROUP {
            let pos = HEADER_SIZE + i * 4;
            let raw = u32::from_le_bytes(c.bytes()[pos..pos + 4].try_into().unwrap());
            if raw == 0 {
                continue;
            }
            let target = stream_start + (raw >> 8) as usize;
            if is_insert {
                if target >= at {
                    fixes.push(Fix::Cjt { pos, delta });
                }
            } else if target >= at + len {
                fixes.push(Fix::Cjt { pos, delta });
            } else if target >= at {
                fixes.push(Fix::CjtClear { pos });
            }
        }
        // Per-T-node jump successors and jump tables.  Only top-level T
        // records *before* the edit point can hold jumps that cross it (jump
        // targets never reach past the record's next sibling), so the walk
        // stops at `at` — and it hops over each record's children via the
        // jump successor and seeds from the container jump table instead of
        // re-walking every S record like a maintenance scan.
        let bytes = c.bytes();
        let stream_end = c.stream_end();
        let mut pos = stream_start;
        for i in 0..c.jt_groups() * CJT_GROUP {
            let entry_pos = HEADER_SIZE + i * 4;
            let raw = u32::from_le_bytes(bytes[entry_pos..entry_pos + 4].try_into().unwrap());
            if raw == 0 {
                continue;
            }
            let target = stream_start + (raw >> 8) as usize;
            if target < at && target > pos {
                pos = target;
            }
        }
        while pos < at && pos < stream_end && !is_invalid(bytes[pos]) {
            // Keys are irrelevant here (only offsets matter), so parsing
            // without predecessor context is fine.
            let Some(t) = parse_t_node(bytes, pos, None) else {
                break;
            };
            if let Some(js_off) = t.js_offset {
                let v = c.read_u16(js_off) as usize;
                if v != 0 {
                    let target = t.offset + v;
                    if is_insert {
                        let shift = target > at || (target == at && !t_record_inserted);
                        if shift {
                            fixes.push(Fix::U16 { pos: js_off, delta });
                        }
                    } else if target >= at + len {
                        fixes.push(Fix::U16 { pos: js_off, delta });
                    } else if target > at {
                        fixes.push(Fix::U16Clear { pos: js_off });
                    }
                }
            }
            if let Some(jt_off) = t.jt_offset {
                for slot in 0..TNODE_JT_ENTRIES {
                    let pos = jt_off + slot * 2;
                    let v = c.read_u16(pos) as usize;
                    if v == 0 {
                        continue;
                    }
                    let target = t.offset + v;
                    if is_insert {
                        if target >= at {
                            fixes.push(Fix::U16 { pos, delta });
                        }
                    } else if target >= at + len {
                        fixes.push(Fix::U16 { pos, delta });
                    } else if target >= at {
                        fixes.push(Fix::U16Clear { pos });
                    }
                }
            }
            pos = skip_t_children(c, &t, stream_end);
        }
        fixes
    }

    fn apply_fixes(
        &self,
        c: &mut ContainerRef,
        fixes: &[Fix],
        at: usize,
        len: usize,
        is_insert: bool,
    ) {
        let adjust = |pos: usize| -> usize {
            if is_insert {
                if pos >= at {
                    pos + len
                } else {
                    pos
                }
            } else if pos >= at + len {
                pos - len
            } else {
                pos
            }
        };
        for fix in fixes {
            match fix {
                Fix::U16 { pos, delta } => {
                    let pos = adjust(*pos);
                    let v = c.read_u16(pos) as i64 + delta;
                    if v > 0 && v <= u16::MAX as i64 {
                        c.write_u16(pos, v as u16);
                    } else {
                        // The jump no longer fits into 16 bits: disable it (0
                        // means "walk the records"), never store a wrong jump.
                        c.write_u16(pos, 0);
                    }
                }
                Fix::U16Clear { pos } => {
                    let pos = adjust(*pos);
                    c.write_u16(pos, 0);
                }
                Fix::Cjt { pos, delta } => {
                    let pos = adjust(*pos);
                    let raw = u32::from_le_bytes(c.bytes()[pos..pos + 4].try_into().unwrap());
                    let key = raw & 0xff;
                    let offset = (raw >> 8) as i64 + delta;
                    debug_assert!(offset >= 0);
                    let new_raw = key | ((offset as u32) << 8);
                    c.bytes_mut()[pos..pos + 4].copy_from_slice(&new_raw.to_le_bytes());
                }
                Fix::CjtClear { pos } => {
                    let pos = adjust(*pos);
                    c.bytes_mut()[pos..pos + 4].copy_from_slice(&0u32.to_le_bytes());
                }
            }
        }
    }

    pub(crate) fn grow_stream(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        at: usize,
        len: usize,
        t_record_inserted: bool,
    ) {
        // The "a new T sibling now starts at the insertion point" special case
        // only applies when the record is inserted at the top level of the
        // container; a T record inserted inside an embedded body still lives
        // within some top-level T's child region, so jump successors pointing
        // at the insertion point must shift.
        let top_level_t_insert = t_record_inserted && embed_chain.is_empty();
        let fixes = self.collect_fixes(c, at, len, true, top_level_t_insert);
        c.insert_gap(self.mm, at, len);
        for &off in embed_chain {
            let b = c.bytes()[off] as usize;
            debug_assert!(b + len <= 255, "embedded container size overflow");
            c.bytes_mut()[off] = (b + len) as u8;
        }
        self.apply_fixes(c, &fixes, at, len, true);
        self.edits.push(RawEdit::Grow { at, len });
    }

    pub(crate) fn shrink_stream(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        at: usize,
        len: usize,
    ) {
        let fixes = self.collect_fixes(c, at, len, false, false);
        c.remove_range(at, len);
        for &off in embed_chain {
            let b = c.bytes()[off] as usize;
            debug_assert!(b >= len);
            c.bytes_mut()[off] = (b - len) as u8;
        }
        self.apply_fixes(c, &fixes, at, len, false);
        self.edits.push(RawEdit::Shrink { at, len });
    }

    /// Re-encodes the delta field of the sibling at `offset` after its
    /// predecessor changed to `new_prev_key` (or disappeared).
    fn fix_sibling_delta(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        offset: usize,
        node_key: u8,
        new_prev_key: Option<u8>,
    ) {
        let flag = c.bytes()[offset];
        if delta_of(flag) == 0 {
            return;
        }
        match delta_for(new_prev_key, node_key, self.config.delta_encoding) {
            Some(d) => {
                c.bytes_mut()[offset] = (flag & !(0b111 << 3)) | (d << 3);
            }
            None => {
                // The delta no longer fits: materialise an explicit key byte.
                self.grow_stream(c, embed_chain, offset + 1, 1, false);
                let flag = c.bytes()[offset];
                c.bytes_mut()[offset] = flag & !(0b111 << 3);
                c.bytes_mut()[offset + 1] = node_key;
            }
        }
    }

    // =====================================================================
    // jump successor / jump table maintenance
    // =====================================================================

    fn maintain_t_jumps(&mut self, c: &mut ContainerRef, t_offset: usize, visited: usize) {
        // The thresholds compare against the T record's *actual* child count.
        // The caller's visited count is only a lower bound — a batch's
        // resumed scans visit each child once across the whole batch, so a
        // per-descent count would leave batch-built T records without jumps
        // (and their readers scanning hundreds of S records linearly).  The
        // count walk is lean (flag-derived record ends) and only runs while
        // a jump structure is actually missing.
        let t0 = parse_t_node(c.bytes(), t_offset, None).expect("T record for jump maintenance");
        let needs_js = self.config.jump_successor && !t0.has_js;
        let needs_jt = self.config.tnode_jump_table && !t0.has_jt;
        if !needs_js && !needs_jt {
            return;
        }
        let child_count = visited.max(count_s_children(c, t0.header_end, c.stream_end()));
        if needs_js && child_count >= self.config.jump_successor_threshold {
            let t = parse_t_node(c.bytes(), t_offset, None).expect("T record for js maintenance");
            if !t.has_js {
                let js_pos = t
                    .value_offset
                    .map(|v| v + VALUE_SIZE)
                    .unwrap_or(t.offset + 1 + t.explicit_key as usize);
                let next_t = skip_t_children(c, &t, c.stream_end());
                self.grow_stream(c, &[], js_pos, JS_SIZE, false);
                let flag = c.bytes()[t_offset];
                c.bytes_mut()[t_offset] = flag | (1 << 6);
                let js_value = next_t + JS_SIZE - t.offset;
                if js_value <= u16::MAX as usize {
                    c.write_u16(js_pos, js_value as u16);
                }
            }
        }
        if needs_jt && child_count >= self.config.tnode_jump_table_threshold {
            let t = parse_t_node(c.bytes(), t_offset, None).expect("T record for jt maintenance");
            if !t.has_jt {
                let jt_pos = t
                    .js_offset
                    .map(|o| o + JS_SIZE)
                    .or(t.value_offset.map(|v| v + VALUE_SIZE))
                    .unwrap_or(t.offset + 1 + t.explicit_key as usize);
                self.grow_stream(c, &[], jt_pos, TNODE_JT_SIZE, false);
                let flag = c.bytes()[t_offset];
                c.bytes_mut()[t_offset] = flag | (1 << 7);
                // Jump-table entries may only reference *explicit-key*
                // S records (a seeded scan has no predecessor context).
                // Sorted batch streams delta-encode nearly every sibling, so
                // a table built over them would have nothing usable to point
                // at — all slots would fall back to the first child and the
                // seeded walk would be as linear as no table at all.
                // Materialise an explicit key byte for the best seed of
                // every slot first, one record at a time (each grow shifts
                // the offsets behind it).
                loop {
                    let t = parse_t_node(c.bytes(), t_offset, None).expect("T record for jt fill");
                    let children = collect_s_records(c, &t, c.stream_end());
                    let mut convert: Option<(usize, u8)> = None;
                    'slots: for slot in 0..TNODE_JT_ENTRIES {
                        let bound = TNODE_JT_STRIDE * (slot + 1);
                        for s in children.iter().rev() {
                            if (s.key as usize) <= bound {
                                if !s.explicit_key {
                                    convert = Some((s.offset, s.key));
                                }
                                continue 'slots;
                            }
                        }
                    }
                    let Some((offset, key)) = convert else { break };
                    self.grow_stream(c, &[], offset + 1, 1, false);
                    let flag = c.bytes()[offset];
                    c.bytes_mut()[offset] = flag & !(0b111 << 3);
                    c.bytes_mut()[offset + 1] = key;
                }
                // Fill the entries: slot i references the greatest explicit-key
                // S child with key <= 16 * (i + 1).
                let t = parse_t_node(c.bytes(), t_offset, None).expect("T record after jt insert");
                let jt_off = t.jt_offset.expect("jt offset just created");
                let children = collect_s_records(c, &t, c.stream_end());
                let mut entries = [0u16; TNODE_JT_ENTRIES];
                for s in &children {
                    if !s.explicit_key {
                        continue;
                    }
                    let rel = (s.offset - t.offset) as u16;
                    let first_slot = (s.key as usize).div_ceil(TNODE_JT_STRIDE).saturating_sub(1);
                    for entry in entries.iter_mut().skip(first_slot) {
                        *entry = rel;
                    }
                }
                for (i, v) in entries.iter().enumerate() {
                    c.write_u16(jt_off + i * 2, *v);
                }
            }
        }
    }

    fn rebuild_container_jump_table(&mut self, c: &mut ContainerRef) {
        // The rebuild runs between edits, when jump successors are exact:
        // the trusted walk hops over children instead of re-parsing every
        // S record (the untrusting walk made rebuilds the dominant cost of
        // the whole insert path).
        //
        // Entries may only reference *explicit-key* T records (a seeded scan
        // has no predecessor context), but sorted batch streams delta-encode
        // most T siblings — sampling only what happens to be explicit left
        // batch-built containers without a usable table.  The rebuild
        // therefore samples evenly over *all* records and materialises an
        // explicit key byte for each sampled record first, one at a time
        // (each grow shifts the offsets behind it, so re-walk after each).
        let max_entries = CJT_MAX_GROUPS * CJT_GROUP;
        loop {
            let stream_start = c.stream_start();
            let records = collect_t_records_trusted(c, stream_start, c.stream_end());
            // Below two groups' worth of records a table saves almost no
            // walking (jump-successor hops already bound the walk) but costs
            // 28 bytes plus explicit-key conversions per container — on the
            // string data sets most containers are this small.
            if records.len() < 2 * CJT_GROUP {
                return;
            }
            // Half-density sampling: one entry per two records bounds the
            // post-seed walk at two hops for half the table (and half the
            // explicit-key conversion bytes) of a full-density table.
            let take = (records.len() / 2).clamp(CJT_GROUP, max_entries);
            let mut convert: Option<(usize, u8)> = None;
            for i in 0..take {
                let t = &records[i * records.len() / take];
                if !t.explicit_key {
                    convert = Some((t.offset, t.key));
                    break;
                }
            }
            let Some((offset, key)) = convert else {
                let mut entries = Vec::with_capacity(take);
                for i in 0..take {
                    let t = &records[i * records.len() / take];
                    entries.push((t.key, (t.offset - stream_start) as u32));
                }
                entries.dedup_by_key(|(k, _)| *k);
                c.set_cjt_entries(self.mm, &entries);
                self.counters.cjt_rebuilds += 1;
                return;
            };
            self.grow_stream(c, &[], offset + 1, 1, false);
            let flag = c.bytes()[offset];
            c.bytes_mut()[offset] = flag & !(0b111 << 3);
            c.bytes_mut()[offset + 1] = key;
        }
    }

    // =====================================================================
    // vertical container splits (paper Figure 11)
    // =====================================================================

    fn maybe_split(&mut self, c: &mut ContainerRef) -> Option<HyperionPointer> {
        let threshold = self.config.split_threshold(c.split_delay());
        if c.size() < threshold {
            // Laned after the size check so both backends compare the same
            // lane-free size against the split threshold.
            self.maybe_emit_lane(c);
            return None;
        }
        let stream_start = c.stream_start();
        let stream_end = c.stream_end();
        let (range_start, range_end) = match c.handle() {
            ContainerHandle::Standalone(_) => (0usize, 256usize),
            ContainerHandle::ChainSlot { head, index } => {
                let valid = self.mm.chained_valid_slots(head);
                let next = valid
                    .iter()
                    .copied()
                    .filter(|&i| i > index)
                    .min()
                    .unwrap_or(8);
                (index * 32, next * 32)
            }
        };
        if range_end - range_start <= 32 {
            // A chain slot covering a single 32-key block has no legal cut;
            // skip the record walk entirely.
            return self.abort_split(c);
        }
        // The split runs between edits, when jump successors are exact, so
        // the record walk can hop over children (see the rebuild above).
        let records = collect_t_records_trusted(c, stream_start, stream_end);
        if records.len() < 2 {
            return self.abort_split(c);
        }
        // Find the multiple-of-32 cut that best balances the two halves.
        let mut best: Option<(usize, usize)> = None; // (cut_block, cut_record_idx)
        let mut best_imbalance = usize::MAX;
        for cut_block in 1..8usize {
            let cut_key = cut_block * 32;
            if cut_key <= range_start || cut_key >= range_end {
                continue;
            }
            let Some(idx) = records.iter().position(|t| (t.key as usize) >= cut_key) else {
                continue;
            };
            if idx == 0 {
                continue;
            }
            let cut_offset = records[idx].offset;
            let left = cut_offset - stream_start;
            let right = stream_end - cut_offset;
            if left < self.config.split_min_part || right < self.config.split_min_part {
                continue;
            }
            let imbalance = left.abs_diff(right);
            if imbalance < best_imbalance {
                best_imbalance = imbalance;
                best = Some((cut_block, idx));
            }
        }
        let Some((cut_block, cut_idx)) = best else {
            return self.abort_split(c);
        };
        let cut_offset = records[cut_idx].offset;
        let left: Vec<u8> = c.bytes()[stream_start..cut_offset].to_vec();
        let mut right: Vec<u8> = c.bytes()[cut_offset..stream_end].to_vec();
        // The first record of the right half may no longer have a predecessor:
        // force an explicit key byte.  The record grows by one byte, so its
        // own jump-successor / jump-table offsets (which point past its
        // children, relative to the record start) must grow by one as well.
        if delta_of(right[0]) != 0 {
            let first = &records[cut_idx];
            right[0] &= !(0b111 << 3);
            right.insert(1, first.key);
            if let Some(js_off) = first.js_offset {
                let pos = js_off - cut_offset + 1;
                let v = u16::from_le_bytes([right[pos], right[pos + 1]]);
                if v != 0 {
                    let bumped = v.checked_add(1).unwrap_or(0).to_le_bytes();
                    right[pos..pos + 2].copy_from_slice(&bumped);
                }
            }
            if let Some(jt_off) = first.jt_offset {
                for slot in 0..TNODE_JT_ENTRIES {
                    let pos = jt_off - cut_offset + 1 + slot * 2;
                    let v = u16::from_le_bytes([right[pos], right[pos + 1]]);
                    if v != 0 {
                        let bumped = v.checked_add(1).unwrap_or(0).to_le_bytes();
                        right[pos..pos + 2].copy_from_slice(&bumped);
                    }
                }
            }
        }
        hyperion_mem::fail_point!("write.split");
        self.counters.splits += 1;
        self.seq.note_structural();
        match c.handle() {
            ContainerHandle::Standalone(old_hp) => {
                let head = self.mm.allocate_chained();
                let slot_a = range_start / 32;
                let mut left_c = ContainerRef::create_chain_slot(self.mm, head, slot_a, &left);
                let mut right_c = ContainerRef::create_chain_slot(self.mm, head, cut_block, &right);
                self.mm.free(old_hp);
                self.rebuild_split_halves(&mut left_c, &mut right_c);
                Some(head)
            }
            ContainerHandle::ChainSlot { head, index } => {
                let mut left_c = ContainerRef::create_chain_slot(self.mm, head, index, &left);
                let mut right_c = ContainerRef::create_chain_slot(self.mm, head, cut_block, &right);
                self.rebuild_split_halves(&mut left_c, &mut right_c);
                None
            }
        }
    }

    /// Rebuilds the container jump tables of a split's two halves.
    ///
    /// A split copies the raw node streams, dropping the source container's
    /// jump table — and under sorted input (batches, sequential keys) the
    /// left half may never be written again, so no later visit would ever
    /// rebuild it: readers would walk its T records linearly forever.
    fn rebuild_split_halves(&mut self, left: &mut ContainerRef, right: &mut ContainerRef) {
        if self.config.container_jump_table {
            self.rebuild_container_jump_table(left);
            self.rebuild_container_jump_table(right);
            // The rebuild's explicit-key conversions logged raw edits against
            // the halves; no event log spans a split, so drop them.
            self.edits.clear();
        }
        // Lanes last, after the jump tables settle the final record layout.
        // Both halves are chain slots, whose head HP survives reallocation.
        self.maybe_emit_lane(left);
        self.maybe_emit_lane(right);
    }

    /// Re-emits `c`'s key-lane block when the map is configured for the
    /// SIMD scan backend; a no-op under the scalar backend, which keeps the
    /// previous byte layout exactly.
    fn maybe_emit_lane(&mut self, c: &mut ContainerRef) {
        if self.config.scan_backend == ScanBackend::Simd {
            emit_key_lane(self.mm, c);
        }
    }

    fn abort_split(&mut self, c: &mut ContainerRef) -> Option<HyperionPointer> {
        let delay = c.split_delay();
        if delay < 3 {
            c.set_split_delay(delay + 1);
        }
        self.counters.split_aborts += 1;
        self.seq.note_structural();
        // The container survives an aborted split, so it still needs its
        // lane back (the actual-split exits lane the halves instead).
        self.maybe_emit_lane(c);
        None
    }

    // =====================================================================
    // delete
    // =====================================================================

    /// Removes the suffix of `full` past `depth` below `hp`.  The key is
    /// threaded as `(full, depth)` rather than a bare suffix so the Pointer
    /// arm knows the absolute prefix of every container it frees or moves —
    /// the shortcut entry for that prefix must die or move in the same
    /// event.  Returns `(stored HP, removed, container now empty)`.
    pub(crate) fn delete_in_pointer(
        &mut self,
        hp: HyperionPointer,
        full: &[u8],
        depth: usize,
    ) -> (HyperionPointer, bool, bool) {
        let key = &full[depth..];
        let handle = self.resolve_handle(hp, key[0]);
        let mut c = ContainerRef::open(self.mm, handle);
        c.strip_key_lane();
        let start = c.stream_start();
        let end = c.stream_end();
        let removed = self.delete_in_region(&mut c, start, end, &[], full, depth);
        self.edits.clear();
        let empty = c.stream_end() == c.stream_start()
            && matches!(c.handle(), ContainerHandle::Standalone(_));
        if !empty {
            self.maybe_emit_lane(&mut c);
        }
        (c.handle().stored_pointer(), removed, empty)
    }

    fn delete_in_region(
        &mut self,
        c: &mut ContainerRef,
        region_start: usize,
        region_end: usize,
        embed_chain: &[usize],
        full: &[u8],
        depth: usize,
    ) -> bool {
        let key = &full[depth..];
        let is_top = embed_chain.is_empty();
        let ts = t_scan(c, region_start, region_end, key[0], is_top);
        let Some(t) = ts.found else {
            return false;
        };
        let region_end_now = |c: &ContainerRef, chain: &[usize]| -> usize {
            if let Some(&outer) = chain.last() {
                outer + c.bytes()[outer] as usize
            } else {
                c.stream_end()
            }
        };
        if key.len() == 1 {
            if t.node_type != NodeType::LeafWithValue {
                return false;
            }
            let has_children = {
                let end = region_end_now(c, embed_chain);
                t.header_end < end
                    && !is_invalid(c.bytes()[t.header_end])
                    && !is_t_node(c.bytes()[t.header_end])
            };
            if has_children {
                self.shrink_stream(c, embed_chain, t.value_offset.unwrap(), VALUE_SIZE);
                let flag = c.bytes()[t.offset];
                c.bytes_mut()[t.offset] = (flag & !0b11) | NodeType::Inner as u8;
            } else {
                self.remove_t_record(c, embed_chain, &t, ts.prev_key);
            }
            return true;
        }
        let ss = s_scan(c, &t, region_end, key[1]);
        let Some(s) = ss.found else {
            return false;
        };
        if key.len() == 2 {
            if s.node_type != NodeType::LeafWithValue {
                return false;
            }
            if s.child != ChildKind::None {
                self.shrink_stream(c, embed_chain, s.value_offset.unwrap(), VALUE_SIZE);
                let flag = c.bytes()[s.offset];
                c.bytes_mut()[s.offset] = (flag & !0b11) | NodeType::Inner as u8;
            } else {
                self.remove_s_record(c, embed_chain, &t, &s, ts.prev_key, ss.prev_key);
            }
            return true;
        }
        let remaining = &key[2..];
        match s.child {
            ChildKind::None => false,
            ChildKind::PathCompressed => {
                let child_off = s.child_offset.unwrap();
                let (has_value, _, range) = parse_pc_node(c.bytes(), child_off);
                if !has_value || &c.bytes()[range] != remaining {
                    return false;
                }
                let total = (c.bytes()[child_off] & 0x7f) as usize;
                self.shrink_stream(c, embed_chain, child_off, total);
                self.set_child_kind(c, s.offset, ChildKind::None);
                self.cleanup_childless_s(c, embed_chain, &t, s.offset, ts.prev_key, ss.prev_key);
                true
            }
            ChildKind::Pointer => {
                let hp_pos = s.child_offset.unwrap();
                let child_hp = c.read_hp(hp_pos);
                let (new_hp, removed, child_empty) =
                    self.delete_in_pointer(child_hp, full, depth + 2);
                if !removed {
                    return false;
                }
                if child_empty {
                    // The allocator may reissue this pointer for an
                    // unrelated subtree — the cached entry must die with it.
                    self.mm.free(new_hp);
                    self.shortcut.invalidate(&full[..depth + 2]);
                    self.shrink_stream(c, embed_chain, hp_pos, HP_SIZE);
                    self.set_child_kind(c, s.offset, ChildKind::None);
                    self.cleanup_childless_s(
                        c,
                        embed_chain,
                        &t,
                        s.offset,
                        ts.prev_key,
                        ss.prev_key,
                    );
                } else if new_hp != child_hp {
                    c.write_hp(hp_pos, new_hp);
                    self.shortcut.publish(&full[..depth + 2], new_hp);
                }
                true
            }
            ChildKind::Embedded => {
                let child_off = s.child_offset.unwrap();
                let emb_size = c.bytes()[child_off] as usize;
                let mut chain = embed_chain.to_vec();
                chain.push(child_off);
                let removed = self.delete_in_region(
                    c,
                    child_off + 1,
                    child_off + emb_size,
                    &chain,
                    full,
                    depth + 2,
                );
                if !removed {
                    return false;
                }
                if c.bytes()[child_off] as usize <= 1 {
                    self.shrink_stream(c, embed_chain, child_off, c.bytes()[child_off] as usize);
                    self.set_child_kind(c, s.offset, ChildKind::None);
                    self.cleanup_childless_s(
                        c,
                        embed_chain,
                        &t,
                        s.offset,
                        ts.prev_key,
                        ss.prev_key,
                    );
                }
                true
            }
        }
    }

    /// Removes an S record that has become value-less and child-less; cascades
    /// to the owning T record if it, too, becomes useless.
    fn cleanup_childless_s(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        s_offset: usize,
        t_prev_key: Option<u8>,
        s_prev_key: Option<u8>,
    ) {
        let s = parse_s_node(c.bytes(), s_offset, s_prev_key.or(Some(0)))
            .expect("S record for cleanup");
        // Recompute the key from the original scan (prev may be None for the
        // first child); parse_s_node only needs prev for the key value.
        if s.node_type == NodeType::LeafWithValue || s.child != ChildKind::None {
            return;
        }
        self.remove_s_record(c, embed_chain, t, &s, t_prev_key, s_prev_key);
    }

    fn remove_s_record(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        s: &SNode,
        t_prev_key: Option<u8>,
        s_prev_key: Option<u8>,
    ) {
        // Successor S sibling (if any) needs its delta re-encoded.  The check
        // must stop at the end of the *current region*: the byte after an
        // embedded container's body belongs to the enclosing scope.
        let region_limit = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        let succ_key = if s.end < region_limit
            && !is_invalid(c.bytes()[s.end])
            && !is_t_node(c.bytes()[s.end])
        {
            parse_s_node(c.bytes(), s.end, Some(s.key)).map(|n| n.key)
        } else {
            None
        };
        self.shrink_stream(c, embed_chain, s.offset, s.end - s.offset);
        if let Some(sk) = succ_key {
            self.fix_sibling_delta(c, embed_chain, s.offset, sk, s_prev_key);
        }
        // Remove the T record if it has no children and no value left.
        let region_end = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        // Re-parse with the *true* predecessor key: a delta-encoded T record
        // parsed with `None` would report its raw delta as the key, and that
        // wrong key would cascade into the successor's delta re-encoding in
        // `remove_t_record`, corrupting the stream.
        let t = parse_t_node(c.bytes(), t.offset, t_prev_key).expect("T record for cleanup");
        let has_children = t.header_end < region_end
            && !is_invalid(c.bytes()[t.header_end])
            && !is_t_node(c.bytes()[t.header_end]);
        if !has_children && t.node_type != NodeType::LeafWithValue {
            self.remove_t_record(c, embed_chain, &t, t_prev_key);
        }
    }

    fn remove_t_record(
        &mut self,
        c: &mut ContainerRef,
        embed_chain: &[usize],
        t: &TNode,
        prev_key: Option<u8>,
    ) {
        let region_end = if let Some(&outer) = embed_chain.last() {
            outer + c.bytes()[outer] as usize
        } else {
            c.stream_end()
        };
        let succ = if t.header_end < region_end && !is_invalid(c.bytes()[t.header_end]) {
            parse_t_node(c.bytes(), t.header_end, Some(t.key))
        } else {
            None
        };
        let succ_key = succ.map(|n| n.key);
        self.shrink_stream(c, embed_chain, t.offset, t.header_end - t.offset);
        if let Some(sk) = succ_key {
            self.fix_sibling_delta(c, embed_chain, t.offset, sk, prev_key);
        }
    }
}

/// Worst-case byte cost of one entry inside a coalesced splice (flag bytes,
/// key bytes, value, path-compressed header per level).
fn splice_estimate(key: &[u8], depth: usize) -> usize {
    2 * (key.len() - depth) + 24
}

/// Counts the S records starting at `from`, stopping at the next T record,
/// invalid memory or `end`.  Used by the jump maintenance to compare a
/// T record's true child count against the acceleration thresholds.
fn count_s_children(c: &ContainerRef, from: usize, end: usize) -> usize {
    let bytes = c.bytes();
    let mut pos = from;
    let mut count = 0usize;
    while pos < end && !is_invalid(bytes[pos]) && !is_t_node(bytes[pos]) {
        let s = parse_s_node(bytes, pos, None).expect("corrupt S record");
        pos = s.end;
        count += 1;
    }
    count
}

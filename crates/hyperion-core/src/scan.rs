//! Linear scanning of a container's node stream.
//!
//! Hyperion deliberately trades SIMD comparisons and fixed offsets for a
//! compact exact-fit layout that is scanned linearly (paper Figure 2d).  The
//! helpers in this module walk the pre-order byte stream, using the optional
//! acceleration structures when they are present:
//!
//! * the *container jump table* to start the T-node walk close to the target,
//! * per-T-node *jump successor* offsets to skip over a T-node's S children,
//! * per-T-node *jump tables* to start the S-node walk close to the target.

use crate::container::{ContainerRef, CJT_ENTRY_SIZE, HEADER_SIZE};
use crate::node::{
    is_invalid, is_t_node, parse_s_node, parse_t_node, SNode, TNode, TNODE_JT_ENTRIES,
    TNODE_JT_STRIDE,
};

/// Result of scanning for a T-node with a given partial key.
#[derive(Debug)]
pub struct TScan {
    /// The matching T-node, if present.
    pub found: Option<TNode>,
    /// Offset where a new T record with the target key must be inserted to
    /// keep the siblings ordered.
    pub insert_at: usize,
    /// Key of the last T sibling smaller than the target (delta-encoding
    /// predecessor for an insertion).
    pub prev_key: Option<u8>,
    /// The first T sibling greater than the target, if any (its delta field
    /// must be re-encoded after an insertion).
    pub successor: Option<TNode>,
    /// Number of T records visited (used to decide when to grow the container
    /// jump table).
    pub scanned: usize,
}

/// Result of scanning a T-node's children for an S-node with a given key.
#[derive(Debug)]
pub struct SScan {
    /// The matching S-node, if present.
    pub found: Option<SNode>,
    /// Offset where a new S record must be inserted.
    pub insert_at: usize,
    /// Key of the last S sibling smaller than the target.
    pub prev_key: Option<u8>,
    /// The first S sibling greater than the target, if any.
    pub successor: Option<SNode>,
    /// Number of S children visited before stopping.
    pub visited: usize,
}

/// Returns the offset of the record following `t`'s children, i.e. the next T
/// sibling (or the end of the used region).  Uses the jump-successor offset
/// when present, otherwise walks the S records.
pub fn skip_t_children(c: &ContainerRef, t: &TNode, end: usize) -> usize {
    if let Some(js_off) = t.js_offset {
        let v = c.read_u16(js_off) as usize;
        if v != 0 {
            return (t.offset + v).min(end);
        }
    }
    let bytes = c.bytes();
    let mut pos = t.header_end;
    while pos < end {
        let flag = bytes[pos];
        if is_invalid(flag) || is_t_node(flag) {
            break;
        }
        let s = parse_s_node(bytes, pos, None).expect("corrupt S record");
        pos = s.end;
    }
    pos.min(end)
}

/// Best container-jump-table seed for `target`: the position of the greatest
/// entry with key `<= target`, if it lies strictly inside `(after, end)`.
/// Entries always reference explicit-key T records, so a caller resuming at
/// the returned position needs no predecessor context.
///
/// The table's live entries are ascending by key (cleared entries are zero),
/// so the scan stops at the first entry past the target instead of reading
/// every slot of every group.
pub fn cjt_seed(c: &ContainerRef, target: u8, after: usize, end: usize) -> Option<usize> {
    let groups = c.jt_groups();
    if groups == 0 {
        return None;
    }
    let bytes = c.bytes();
    let mut best: Option<u32> = None;
    for i in 0..groups * crate::container::CJT_GROUP {
        let off = HEADER_SIZE + i * CJT_ENTRY_SIZE;
        let raw = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        if raw == 0 {
            continue;
        }
        if (raw & 0xff) as u8 > target {
            // Live keys ascend: no later entry can improve on `best`.
            break;
        }
        best = Some(raw >> 8);
    }
    let candidate = c.stream_start() + best? as usize;
    (candidate > after && candidate < end).then_some(candidate)
}

/// Best T-node jump-table seed for `target` below the T record at
/// `t_offset` (jump table at `jt_off`): the position of the greatest usable
/// slot, if it lies strictly inside `(after, end)`.  Slot entries reference
/// explicit-key S records with keys no greater than
/// [`TNODE_JT_STRIDE`]` * (slot + 1)`.
pub fn tnode_jt_seed(
    c: &ContainerRef,
    t_offset: usize,
    jt_off: usize,
    target: u8,
    after: usize,
    end: usize,
) -> Option<usize> {
    if (target as usize) < TNODE_JT_STRIDE {
        return None;
    }
    let max_slot = (target as usize / TNODE_JT_STRIDE)
        .saturating_sub(1)
        .min(TNODE_JT_ENTRIES - 1);
    for slot in (0..=max_slot).rev() {
        let v = c.read_u16(jt_off + slot * 2) as usize;
        if v != 0 {
            let candidate = t_offset + v;
            return (candidate > after && candidate < end).then_some(candidate);
        }
    }
    None
}

/// Scans the region `[start, end)` for the T-node with partial key `target`.
///
/// `use_cjt` enables the container jump table (only valid when `start` is the
/// container's stream start).
pub fn t_scan(c: &ContainerRef, start: usize, end: usize, target: u8, use_cjt: bool) -> TScan {
    t_scan_from(c, start, end, None, target, use_cjt)
}

/// Like [`t_scan`], but resumes from a mid-region position: `start` is the
/// offset of some T record (or the region end) and `prev_key` the key of the
/// record preceding it.  The write engine uses this to continue a batch scan
/// from the previous key's position instead of the region start.
pub fn t_scan_from(
    c: &ContainerRef,
    start: usize,
    end: usize,
    resume_prev: Option<u8>,
    target: u8,
    use_cjt: bool,
) -> TScan {
    let bytes = c.bytes();
    let mut pos = start;
    let mut prev_key: Option<u8> = resume_prev;
    // Container jump table: start scanning at the greatest entry with
    // key <= target.  The true predecessor is unknown after a jump, which is
    // safe: inserts fall back to an explicit key byte.
    if use_cjt {
        if let Some(candidate) = cjt_seed(c, target, pos, end) {
            pos = candidate;
            prev_key = None;
        }
    }
    let mut scanned = 0usize;
    loop {
        if pos >= end || is_invalid(bytes[pos]) {
            return TScan {
                found: None,
                insert_at: pos.min(end),
                prev_key,
                successor: None,
                scanned,
            };
        }
        debug_assert!(is_t_node(bytes[pos]), "expected T record at {pos}");
        let t = parse_t_node(bytes, pos, prev_key).expect("corrupt T record");
        scanned += 1;
        if t.key == target {
            return TScan {
                found: Some(t),
                insert_at: pos,
                prev_key,
                successor: None,
                scanned,
            };
        }
        if t.key > target {
            return TScan {
                found: None,
                insert_at: pos,
                prev_key,
                successor: Some(t),
                scanned,
            };
        }
        prev_key = Some(t.key);
        pos = skip_t_children(c, &t, end);
    }
}

/// Scans the S children of `t` for the S-node with partial key `target`.
pub fn s_scan(c: &ContainerRef, t: &TNode, end: usize, target: u8) -> SScan {
    s_scan_from(
        c,
        t.header_end,
        end,
        None,
        target,
        Some((t.offset, t.jt_offset)),
    )
}

/// Like [`s_scan`], but resumes from a mid-run position: `start` is the
/// offset of some S record (or the end of the run) and `resume_prev` the key
/// of the S sibling preceding it.  `jt` carries the owning T record's offset
/// and jump-table offset for seeding the initial position.
pub fn s_scan_from(
    c: &ContainerRef,
    start: usize,
    end: usize,
    resume_prev: Option<u8>,
    target: u8,
    jt: Option<(usize, Option<usize>)>,
) -> SScan {
    let bytes = c.bytes();
    let mut pos = start;
    let mut prev_key: Option<u8> = resume_prev;
    // T-node jump table: start the child walk at the greatest usable slot.
    if let Some((t_offset, Some(jt_off))) = jt {
        if let Some(candidate) = tnode_jt_seed(c, t_offset, jt_off, target, pos, end) {
            pos = candidate;
            prev_key = None;
        }
    }
    let mut visited = 0usize;
    loop {
        if pos >= end || is_invalid(bytes[pos]) || is_t_node(bytes[pos]) {
            return SScan {
                found: None,
                insert_at: pos.min(end),
                prev_key,
                successor: None,
                visited,
            };
        }
        let s = parse_s_node(bytes, pos, prev_key).expect("corrupt S record");
        visited += 1;
        if s.key == target {
            return SScan {
                found: Some(s),
                insert_at: pos,
                prev_key,
                successor: None,
                visited,
            };
        }
        if s.key > target {
            return SScan {
                found: None,
                insert_at: pos,
                prev_key,
                successor: Some(s),
                visited,
            };
        }
        prev_key = Some(s.key);
        pos = s.end;
    }
}

/// Walks all T records of a region, returning `(offset, key, explicit)` per
/// record.  Used for structural maintenance (jump-table rebuilds, splits,
/// offset fix-ups) and for the statistics collector.
pub fn collect_t_records(c: &ContainerRef, start: usize, end: usize) -> Vec<TNode> {
    let bytes = c.bytes();
    let mut out = Vec::new();
    let mut pos = start;
    let mut prev_key = None;
    while pos < end && !is_invalid(bytes[pos]) {
        debug_assert!(is_t_node(bytes[pos]));
        let t = parse_t_node(bytes, pos, prev_key).expect("corrupt T record");
        prev_key = Some(t.key);
        pos = {
            // Do not trust jump offsets during maintenance walks: walk records.
            let mut p = t.header_end;
            while p < end && !is_invalid(bytes[p]) && !is_t_node(bytes[p]) {
                let s = parse_s_node(bytes, p, None).expect("corrupt S record");
                p = s.end;
            }
            p
        };
        out.push(t);
    }
    out
}

/// Walks all T records of a region like [`collect_t_records`], but hops over
/// each record's children via its jump successor when present.  Only valid
/// when the container is in a consistent state (no byte shift in flight):
/// the write engine's offset fix-ups keep jump successors exact, so walks
/// performed *between* edits (container-jump-table rebuilds) can trust them.
pub fn collect_t_records_trusted(c: &ContainerRef, start: usize, end: usize) -> Vec<TNode> {
    collect_t_records_trusted_bounded(c, start, end, None)
}

/// Like [`collect_t_records_trusted`], but stops before the first record
/// whose key exceeds `max_key` (when given).  The reverse cursor uses this
/// as its per-frame checkpoint pass: one forward scan of the region records
/// every sibling offset at or below the seek bound, and the walk then plays
/// the checkpoints back in descending order — siblings above the bound are
/// never even collected.
pub fn collect_t_records_trusted_bounded(
    c: &ContainerRef,
    start: usize,
    end: usize,
    max_key: Option<u8>,
) -> Vec<TNode> {
    // A key lane covers exactly the top-level region: collect straight from
    // its contiguous keys and offset sidecar, skipping every jump-successor
    // hop and S-record walk between T siblings.
    if start == c.stream_start() {
        if let Some(out) = crate::scan_kernel::lane_collect_t_bounded(c, end, max_key) {
            return out;
        }
    }
    let bytes = c.bytes();
    let mut out = Vec::new();
    let mut pos = start;
    let mut prev_key = None;
    while pos < end && !is_invalid(bytes[pos]) {
        // An S flag here means the stream is torn (optimistic reverse reader
        // racing a writer): stop collecting — the seqlock validation
        // discards whatever was gathered so far.
        if !is_t_node(bytes[pos]) {
            break;
        }
        let t = parse_t_node(bytes, pos, prev_key).expect("corrupt T record");
        if max_key.is_some_and(|m| t.key > m) {
            break;
        }
        prev_key = Some(t.key);
        pos = skip_t_children(c, &t, end);
        out.push(t);
    }
    out
}

/// Walks all S records belonging to `t`, in order.
pub fn collect_s_records(c: &ContainerRef, t: &TNode, end: usize) -> Vec<SNode> {
    collect_s_records_bounded(c, t, end, None)
}

/// Like [`collect_s_records`], but stops before the first child whose key
/// exceeds `max_key` (when given) — the S-level checkpoint pass of the
/// reverse cursor.
pub fn collect_s_records_bounded(
    c: &ContainerRef,
    t: &TNode,
    end: usize,
    max_key: Option<u8>,
) -> Vec<SNode> {
    collect_s_records_from(c, t.header_end, end, max_key)
}

/// S-record collection resuming at an arbitrary record offset `start` (the
/// first S child of a T record, or a T-node jump-table target — both start
/// explicit-key records, so no predecessor context is needed).  Stops at the
/// run's end (next T record / invalid byte / `end`) or before the first key
/// above `max_key`.
pub fn collect_s_records_from(
    c: &ContainerRef,
    start: usize,
    end: usize,
    max_key: Option<u8>,
) -> Vec<SNode> {
    let bytes = c.bytes();
    let mut out = Vec::new();
    let mut pos = start;
    let mut prev_key = None;
    while pos < end && !is_invalid(bytes[pos]) && !is_t_node(bytes[pos]) {
        let s = parse_s_node(bytes, pos, prev_key).expect("corrupt S record");
        if max_key.is_some_and(|m| s.key > m) {
            break;
        }
        prev_key = Some(s.key);
        pos = s.end;
        out.push(s);
    }
    out
}

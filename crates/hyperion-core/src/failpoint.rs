//! Fault injection for chaos testing (re-export of `hyperion_mem::failpoint`).
//!
//! Compiled only under the `failpoints` cargo feature; without it this module
//! is empty and every site in the tree compiles to nothing, so release builds
//! pay zero hot-path cost.
//!
//! # Sites
//!
//! | site                  | placed at                                            | crash semantics |
//! |-----------------------|------------------------------------------------------|-----------------|
//! | `seqlock.mutation`    | mutation-span entry ([`crate::HyperionMap`] writes)  | immediate (nothing mutated yet) |
//! | `write.splice`        | `make_room` — before every structural splice         | deferred |
//! | `write.eject`         | embedded-container ejection                          | deferred |
//! | `write.split`         | vertical container split (after the cut is chosen)   | deferred |
//! | `write.pc_rewrite`    | path-compressed node rewrite                         | deferred |
//! | `write.cjt_rebuild`   | container-jump-table rebuild after a visit           | deferred |
//! | `shortcut.publish`    | shortcut table publish                               | deferred |
//! | `shortcut.invalidate` | shortcut table invalidate                            | deferred |
//! | `mem.alloc`           | `MemoryManager::allocate` / `allocate_chained`       | deferred |
//!
//! "Deferred" crash actions fire at the next crash-consistent boundary —
//! between top-level container visits or at the end of the mutating
//! operation — so an injected crash always leaves the trie structurally
//! valid (`validate_structure` holds) while the crash *schedule* still
//! tracks real structural events.  `Sleep` actions fire inline at the site.
//! See [`hyperion_mem::failpoint`] for the full model, the [`Policy`] /
//! [`Action`] builders, and the seeded determinism contract.
//!
//! # Typed conversion at the shard boundary
//!
//! [`crate::HyperionDb`] catches the injected unwinds under the shard lock:
//! [`AllocFailure`] becomes [`crate::HyperionError::AllocFailed`] and
//! [`InjectedError`] becomes [`crate::HyperionError::Injected`] — in both
//! cases the shard is re-quiesced and stays usable.  A plain `Panic` trip is
//! *not* caught: it poisons the shard like a real writer crash, exercising
//! `lock_recover` / `MapSeq::force_quiesce` downstream.

pub use hyperion_mem::failpoint::*;

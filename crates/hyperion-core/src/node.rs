//! Bit-level encoding of the T-nodes and S-nodes that make up a container's
//! internal two-level trie (paper Figure 5).
//!
//! Every node starts with a single flag byte:
//!
//! ```text
//! bit 0-1  type   00 invalid, 01 inner, 10 leaf without value, 11 leaf with value
//! bit 2    k      0 = T-node (first 8 bits of the partial key), 1 = S-node
//! bit 3-5  delta  difference to the preceding sibling key (0 = explicit key byte follows)
//! T-node:  bit 6 js (jump successor present), bit 7 jt (jump table present)
//! S-node:  bit 6-7 child flag: 00 none, 01 Hyperion Pointer, 10 embedded container,
//!          11 path-compressed node
//! ```
//!
//! Record layout after the flag byte (fields present only when flagged):
//!
//! * T-node: `[key byte][value u64][js offset u16][jump table 15 x u16]`
//! * S-node: `[key byte][value u64][child payload]`
//!
//! All multi-byte integers are little-endian.  A flag byte of zero marks
//! invalid (unused, zero-initialised) container memory.

/// Size of an inline value in bytes.
pub const VALUE_SIZE: usize = 8;
/// Size of an encoded Hyperion Pointer in bytes.
pub const HP_SIZE: usize = 5;
/// Size of a jump-successor offset in bytes.
pub const JS_SIZE: usize = 2;
/// Key-space width of one T-node jump-table slot: slot `i` covers target
/// keys up to `TNODE_JT_STRIDE * (i + 1)`.  The paper's 16 balances seeded
/// walk length (≤ 16 records) against table size; measurements with stride
/// 8 showed no read gain for twice the table bytes.
pub const TNODE_JT_STRIDE: usize = 16;
/// Number of entries in a T-node jump table.
pub const TNODE_JT_ENTRIES: usize = 256 / TNODE_JT_STRIDE - 1;
/// Size of a T-node jump table in bytes.
pub const TNODE_JT_SIZE: usize = TNODE_JT_ENTRIES * 2;
/// Maximum encodable delta between sibling keys (3 bits).
pub const MAX_DELTA: u8 = 7;
/// Maximum total size of a path-compressed node (7-bit size field).
pub const PC_MAX_SIZE: usize = 127;

/// Node type stored in the two least significant bits of the flag byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeType {
    /// Zero-initialised / unused memory.
    Invalid = 0,
    /// Inner node: no key terminates here.
    Inner = 1,
    /// A key terminates here but carries no value.
    LeafNoValue = 2,
    /// A key terminates here and carries an 8-byte value.
    LeafWithValue = 3,
}

impl NodeType {
    /// Decodes the node type from a flag byte.
    #[inline]
    pub fn from_flag(byte: u8) -> NodeType {
        match byte & 0b11 {
            0 => NodeType::Invalid,
            1 => NodeType::Inner,
            2 => NodeType::LeafNoValue,
            _ => NodeType::LeafWithValue,
        }
    }

    /// `true` if a key terminates at this node.
    #[inline]
    pub fn is_leaf(self) -> bool {
        matches!(self, NodeType::LeafNoValue | NodeType::LeafWithValue)
    }

    /// `true` if the node stores an inline value.
    #[inline]
    pub fn has_value(self) -> bool {
        self == NodeType::LeafWithValue
    }
}

/// Child reference kind stored in bits 6-7 of an S-node flag byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildKind {
    /// No child container exists.
    None = 0,
    /// A 5-byte Hyperion Pointer to a child container follows.
    Pointer = 1,
    /// An embedded container follows (1 size byte + body).
    Embedded = 2,
    /// A path-compressed node follows (1 header byte + optional value + suffix).
    PathCompressed = 3,
}

impl ChildKind {
    /// Decodes the child kind from an S-node flag byte.
    #[inline]
    pub fn from_flag(byte: u8) -> ChildKind {
        match (byte >> 6) & 0b11 {
            0 => ChildKind::None,
            1 => ChildKind::Pointer,
            2 => ChildKind::Embedded,
            _ => ChildKind::PathCompressed,
        }
    }
}

/// Returns `true` if the flag byte denotes a T-node (k flag clear).
#[inline]
pub fn is_t_node(flag: u8) -> bool {
    flag & 0b100 == 0
}

/// Returns `true` if the flag byte marks unused memory.
#[inline]
pub fn is_invalid(flag: u8) -> bool {
    flag & 0b11 == 0
}

/// Delta field (bits 3-5) of a flag byte; 0 means an explicit key byte follows.
#[inline]
pub fn delta_of(flag: u8) -> u8 {
    (flag >> 3) & 0b111
}

/// Builds a T-node flag byte.
#[inline]
pub fn make_t_flag(node_type: NodeType, delta: u8, js: bool, jt: bool) -> u8 {
    debug_assert!(delta <= MAX_DELTA);
    (node_type as u8) | ((delta & 0b111) << 3) | ((js as u8) << 6) | ((jt as u8) << 7)
}

/// Builds an S-node flag byte.
#[inline]
pub fn make_s_flag(node_type: NodeType, delta: u8, child: ChildKind) -> u8 {
    debug_assert!(delta <= MAX_DELTA);
    (node_type as u8) | 0b100 | ((delta & 0b111) << 3) | ((child as u8) << 6)
}

/// A decoded T-node record.
#[derive(Clone, Copy, Debug)]
pub struct TNode {
    /// Offset of the flag byte within the container.
    pub offset: usize,
    /// Resolved 8-bit partial key (delta applied).
    pub key: u8,
    /// Node type.
    pub node_type: NodeType,
    /// `true` if the key byte is stored explicitly (delta field is 0).
    pub explicit_key: bool,
    /// `true` if a jump-successor offset is present.
    pub has_js: bool,
    /// `true` if a T-node jump table is present.
    pub has_jt: bool,
    /// Offset of the 8-byte value, if present.
    pub value_offset: Option<usize>,
    /// Offset of the 2-byte jump-successor field, if present.
    pub js_offset: Option<usize>,
    /// Offset of the jump table (15 x u16), if present.
    pub jt_offset: Option<usize>,
    /// Offset just past the T record header; the first S child (or the next
    /// T sibling) starts here.
    pub header_end: usize,
}

/// A decoded S-node record.
#[derive(Clone, Copy, Debug)]
pub struct SNode {
    /// Offset of the flag byte within the container.
    pub offset: usize,
    /// Resolved 8-bit partial key (delta applied).
    pub key: u8,
    /// Node type.
    pub node_type: NodeType,
    /// `true` if the key byte is stored explicitly (delta field is 0).
    pub explicit_key: bool,
    /// Child reference kind.
    pub child: ChildKind,
    /// Offset of the 8-byte value, if present.
    pub value_offset: Option<usize>,
    /// Offset of the child payload (HP bytes, embedded size byte or PC header).
    pub child_offset: Option<usize>,
    /// Offset just past the whole S record including its child payload.
    pub end: usize,
}

/// Parses the T-node record starting at `offset`.
///
/// `prev_key` is the key of the preceding T sibling, used to resolve delta
/// encoding.  Returns `None` if the byte at `offset` is not a valid T-node.
pub fn parse_t_node(bytes: &[u8], offset: usize, prev_key: Option<u8>) -> Option<TNode> {
    let flag = *bytes.get(offset)?;
    if is_invalid(flag) || !is_t_node(flag) {
        return None;
    }
    let node_type = NodeType::from_flag(flag);
    let delta = delta_of(flag);
    let has_js = flag & (1 << 6) != 0;
    let has_jt = flag & (1 << 7) != 0;
    let mut cursor = offset + 1;
    let (key, explicit_key) = if delta == 0 {
        let k = *bytes.get(cursor)?;
        cursor += 1;
        (k, true)
    } else {
        (prev_key.unwrap_or(0).wrapping_add(delta), false)
    };
    let value_offset = if node_type.has_value() {
        let off = cursor;
        cursor += VALUE_SIZE;
        Some(off)
    } else {
        None
    };
    let js_offset = if has_js {
        let off = cursor;
        cursor += JS_SIZE;
        Some(off)
    } else {
        None
    };
    let jt_offset = if has_jt {
        let off = cursor;
        cursor += TNODE_JT_SIZE;
        Some(off)
    } else {
        None
    };
    Some(TNode {
        offset,
        key,
        node_type,
        explicit_key,
        has_js,
        has_jt,
        value_offset,
        js_offset,
        jt_offset,
        header_end: cursor,
    })
}

/// Parses the S-node record starting at `offset`.
///
/// `prev_key` is the key of the preceding S sibling under the same T-node.
/// Returns `None` if the byte at `offset` is not a valid S-node.
pub fn parse_s_node(bytes: &[u8], offset: usize, prev_key: Option<u8>) -> Option<SNode> {
    let flag = *bytes.get(offset)?;
    if is_invalid(flag) || is_t_node(flag) {
        return None;
    }
    let node_type = NodeType::from_flag(flag);
    let delta = delta_of(flag);
    let child = ChildKind::from_flag(flag);
    let mut cursor = offset + 1;
    let (key, explicit_key) = if delta == 0 {
        let k = *bytes.get(cursor)?;
        cursor += 1;
        (k, true)
    } else {
        (prev_key.unwrap_or(0).wrapping_add(delta), false)
    };
    let value_offset = if node_type.has_value() {
        let off = cursor;
        cursor += VALUE_SIZE;
        Some(off)
    } else {
        None
    };
    let child_offset;
    match child {
        ChildKind::None => {
            child_offset = None;
        }
        ChildKind::Pointer => {
            child_offset = Some(cursor);
            cursor += HP_SIZE;
        }
        ChildKind::Embedded => {
            child_offset = Some(cursor);
            let size = *bytes.get(cursor)? as usize;
            cursor += size.max(1);
        }
        ChildKind::PathCompressed => {
            child_offset = Some(cursor);
            let header = *bytes.get(cursor)?;
            let size = (header & 0x7f) as usize;
            cursor += size.max(1);
        }
    }
    Some(SNode {
        offset,
        key,
        node_type,
        explicit_key,
        child,
        value_offset,
        child_offset,
        end: cursor,
    })
}

/// Decodes a path-compressed node at `offset` into `(has_value, value, suffix range)`.
pub fn parse_pc_node(bytes: &[u8], offset: usize) -> (bool, u64, std::ops::Range<usize>) {
    let header = bytes[offset];
    let has_value = header & 0x80 != 0;
    let total = (header & 0x7f) as usize;
    let mut cursor = offset + 1;
    let value = if has_value {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[cursor..cursor + VALUE_SIZE]);
        cursor += VALUE_SIZE;
        u64::from_le_bytes(buf)
    } else {
        0
    };
    (has_value, value, cursor..offset + total)
}

/// Encodes a path-compressed node for `suffix` with an optional value.
///
/// # Panics
/// Panics if the resulting node would exceed [`PC_MAX_SIZE`]; callers must
/// check [`pc_fits`] first.
pub fn encode_pc_node(suffix: &[u8], value: Option<u64>) -> Vec<u8> {
    let total = 1 + if value.is_some() { VALUE_SIZE } else { 0 } + suffix.len();
    assert!(total <= PC_MAX_SIZE, "path-compressed node too large");
    let mut out = Vec::with_capacity(total);
    out.push((total as u8) | if value.is_some() { 0x80 } else { 0 });
    if let Some(v) = value {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(suffix);
    out
}

/// Returns `true` if a suffix of the given length (with a value) fits into a
/// single path-compressed node.
#[inline]
pub fn pc_fits(suffix_len: usize) -> bool {
    1 + VALUE_SIZE + suffix_len <= PC_MAX_SIZE
}

/// Computes the delta field for a new sibling following `prev_key`: returns
/// `Some(delta)` when the difference is representable in three bits (and
/// non-zero), otherwise `None` (an explicit key byte is required).
#[inline]
pub fn delta_for(prev_key: Option<u8>, key: u8, delta_enabled: bool) -> Option<u8> {
    if !delta_enabled {
        return None;
    }
    let prev = prev_key?;
    let diff = key.wrapping_sub(prev);
    if (1..=MAX_DELTA).contains(&diff) {
        Some(diff)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_flag_roundtrip() {
        let flag = make_t_flag(NodeType::LeafWithValue, 5, true, false);
        assert!(is_t_node(flag));
        assert!(!is_invalid(flag));
        assert_eq!(NodeType::from_flag(flag), NodeType::LeafWithValue);
        assert_eq!(delta_of(flag), 5);
        assert!(flag & (1 << 6) != 0);
        assert!(flag & (1 << 7) == 0);
    }

    #[test]
    fn s_flag_roundtrip() {
        let flag = make_s_flag(NodeType::Inner, 0, ChildKind::Embedded);
        assert!(!is_t_node(flag));
        assert_eq!(NodeType::from_flag(flag), NodeType::Inner);
        assert_eq!(ChildKind::from_flag(flag), ChildKind::Embedded);
        assert_eq!(delta_of(flag), 0);
    }

    #[test]
    fn zero_byte_is_invalid() {
        assert!(is_invalid(0));
        assert!(parse_t_node(&[0u8; 4], 0, None).is_none());
        assert!(parse_s_node(&[0u8; 4], 0, None).is_none());
    }

    #[test]
    fn parse_t_node_with_explicit_key_and_value() {
        let mut bytes = vec![make_t_flag(NodeType::LeafWithValue, 0, false, false), b'a'];
        bytes.extend_from_slice(&42u64.to_le_bytes());
        let t = parse_t_node(&bytes, 0, None).unwrap();
        assert_eq!(t.key, b'a');
        assert!(t.explicit_key);
        assert_eq!(t.node_type, NodeType::LeafWithValue);
        assert_eq!(t.value_offset, Some(2));
        assert_eq!(t.header_end, 10);
    }

    #[test]
    fn parse_t_node_with_delta_key() {
        let bytes = vec![make_t_flag(NodeType::Inner, 4, false, false)];
        let t = parse_t_node(&bytes, 0, Some(b'a')).unwrap();
        assert_eq!(t.key, b'a' + 4);
        assert!(!t.explicit_key);
        assert_eq!(t.header_end, 1);
    }

    #[test]
    fn parse_s_node_with_pointer_child() {
        let mut bytes = vec![make_s_flag(NodeType::Inner, 0, ChildKind::Pointer), b'x'];
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        let s = parse_s_node(&bytes, 0, None).unwrap();
        assert_eq!(s.key, b'x');
        assert_eq!(s.child, ChildKind::Pointer);
        assert_eq!(s.child_offset, Some(2));
        assert_eq!(s.end, 7);
    }

    #[test]
    fn parse_s_node_with_embedded_child() {
        // Embedded container of total size 3 (size byte + 2 body bytes).
        let bytes = vec![
            make_s_flag(NodeType::Inner, 0, ChildKind::Embedded),
            b'x',
            3,
            0xAA,
            0xBB,
        ];
        let s = parse_s_node(&bytes, 0, None).unwrap();
        assert_eq!(s.child, ChildKind::Embedded);
        assert_eq!(s.child_offset, Some(2));
        assert_eq!(s.end, 5);
    }

    #[test]
    fn pc_node_roundtrip() {
        let enc = encode_pc_node(b"suffix", Some(7));
        let (has_value, value, range) = parse_pc_node(&enc, 0);
        assert!(has_value);
        assert_eq!(value, 7);
        assert_eq!(&enc[range], b"suffix");

        let enc = encode_pc_node(b"tail", None);
        let (has_value, _, range) = parse_pc_node(&enc, 0);
        assert!(!has_value);
        assert_eq!(&enc[range], b"tail");
    }

    #[test]
    fn delta_for_respects_three_bit_limit() {
        assert_eq!(delta_for(Some(10), 13, true), Some(3));
        assert_eq!(delta_for(Some(10), 17, true), Some(7));
        assert_eq!(delta_for(Some(10), 18, true), None);
        assert_eq!(delta_for(Some(10), 10, true), None);
        assert_eq!(delta_for(None, 13, true), None);
        assert_eq!(delta_for(Some(10), 13, false), None);
    }

    #[test]
    fn s_node_with_value_and_child() {
        // A key terminates here (with value) AND a longer key continues via HP.
        let mut bytes = vec![
            make_s_flag(NodeType::LeafWithValue, 0, ChildKind::Pointer),
            b'k',
        ];
        bytes.extend_from_slice(&99u64.to_le_bytes());
        bytes.extend_from_slice(&[9, 9, 9, 9, 9]);
        let s = parse_s_node(&bytes, 0, None).unwrap();
        assert_eq!(s.node_type, NodeType::LeafWithValue);
        assert_eq!(s.value_offset, Some(2));
        assert_eq!(s.child_offset, Some(10));
        assert_eq!(s.end, 15);
    }
}

//! Per-shard sequence lock: the version counter behind optimistic reads.
//!
//! Every [`crate::HyperionMap`] carries a [`MapSeq`] — a single `AtomicU64`
//! that is **odd while a mutation is in flight and even while the map is
//! quiescent**.  Writers (already serialised by the shard mutex in
//! [`crate::HyperionDb`]) bump it to odd on entry and back to even on exit;
//! readers sample it before running the lock-free read engine and validate
//! it afterwards, discarding any result whose version moved.  The memory
//! ordering follows the classic seqlock recipe (same as
//! `crossbeam_utils::sync::SeqLock`):
//!
//! * writer: `store(odd, Relaxed)` then `fence(Release)` before the data
//!   writes, `store(even, Release)` after them;
//! * reader: `load(Acquire)` before the data reads, `fence(Acquire)` then
//!   `load(Relaxed)` after them.
//!
//! A writer that *panics* mid-mutation leaves the counter odd on purpose:
//! every optimistic attempt then fails its begin check and readers fall
//! back to the mutex, which reports/clears the poison (see
//! `HyperionDb::lock_recover`, which calls [`MapSeq::force_quiesce`] under
//! the exclusive lock once the trie state has been re-adopted).
//!
//! Mutation spans nest (`delete_many` loops `delete`; `put` wraps
//! `try_put`): only the outermost span moves the counter, tracked by a
//! depth counter that is only ever touched under the shard mutex.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

/// The per-map seqlock word plus writer-side bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct MapSeq {
    /// The version: odd = mutation in flight, even = quiescent.
    seq: AtomicU64,
    /// Nesting depth of mutation spans.  Only the writer thread (serialised
    /// by the shard mutex) reads or writes it; atomic only so `HyperionMap`
    /// stays shareable without `Cell`.
    depth: AtomicU32,
    /// Structural events (splits, ejections, aborted splits) noted by the
    /// write engine inside mutation spans — the torn-read hazard rate the
    /// retry counters are measured against.
    structural: AtomicU64,
}

impl MapSeq {
    pub(crate) fn new() -> MapSeq {
        MapSeq::default()
    }

    /// Begins a mutation span (writer side, under the shard mutex).  The
    /// returned guard re-evens the counter when the outermost span ends —
    /// unless the thread is panicking, in which case the counter stays odd
    /// so optimistic readers keep their hands off the torn state.
    #[inline]
    pub(crate) fn mutation(&self) -> MutationSpan {
        // Immediate crash semantics are sound only here: the span has not
        // begun, so nothing is mutated yet and the counter stays even.
        #[cfg(feature = "failpoints")]
        hyperion_mem::failpoint::eval_immediate("seqlock.mutation");
        let depth = self.depth.load(Ordering::Relaxed);
        if depth == 0 {
            let seq = self.seq.load(Ordering::Relaxed);
            debug_assert_eq!(seq & 1, 0, "mutation span began while already odd");
            self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
        }
        self.depth.store(depth + 1, Ordering::Relaxed);
        MutationSpan { owner: self }
    }

    /// Samples the version for an optimistic read attempt; `None` while a
    /// mutation is in flight (odd).
    #[inline]
    pub(crate) fn read_begin(&self) -> Option<u64> {
        let seq = self.seq.load(Ordering::Acquire);
        (seq & 1 == 0).then_some(seq)
    }

    /// `true` iff no mutation started since [`MapSeq::read_begin`] returned
    /// `stamp` — the data read in between was a consistent snapshot.
    #[inline]
    pub(crate) fn read_validate(&self, stamp: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == stamp
    }

    /// Debug-asserts that a mutation span is open (write-engine entry hook).
    #[inline]
    pub(crate) fn assert_mutating(&self) {
        debug_assert_eq!(
            self.seq.load(Ordering::Relaxed) & 1,
            1,
            "write engine ran outside a mutation span"
        );
    }

    /// Notes a structural event (split / ejection) inside a mutation span.
    #[inline]
    pub(crate) fn note_structural(&self) {
        self.assert_mutating();
        self.structural.fetch_add(1, Ordering::Relaxed);
    }

    /// Structural events noted so far.
    pub(crate) fn structural_events(&self) -> u64 {
        self.structural.load(Ordering::Relaxed)
    }

    /// Re-evens a counter left odd by a panicked writer.  Must only be
    /// called while holding the shard's exclusive lock (poison recovery).
    pub(crate) fn force_quiesce(&self) {
        let seq = self.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            self.seq.store(seq.wrapping_add(1), Ordering::Release);
        }
        self.depth.store(0, Ordering::Relaxed);
    }
}

/// RAII guard of one (possibly nested) mutation span.
///
/// Holds a raw pointer instead of a borrow so the mutating method that opened
/// the span can keep calling `&mut self` helpers while the span is live (the
/// counters are atomics; the shared/exclusive aliasing is harmless).
/// Contract: the span must be dropped before the owning [`MapSeq`] moves or
/// is freed — trivially true for a guard local to one `&mut self` method.
pub(crate) struct MutationSpan {
    owner: *const MapSeq,
}

impl Drop for MutationSpan {
    #[inline]
    fn drop(&mut self) {
        let owner = unsafe { &*self.owner };
        let depth = owner.depth.load(Ordering::Relaxed);
        debug_assert!(depth > 0, "mutation span underflow");
        owner.depth.store(depth - 1, Ordering::Relaxed);
        if depth == 1 {
            if std::thread::panicking() {
                // Leave the counter odd: the mutation may have torn the trie
                // and optimistic readers must never validate against it.
                return;
            }
            let seq = owner.seq.load(Ordering::Relaxed);
            owner.seq.store(seq.wrapping_add(1), Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_moves_even_odd_even() {
        let seq = MapSeq::new();
        assert_eq!(seq.read_begin(), Some(0));
        {
            let _span = seq.mutation();
            assert_eq!(seq.read_begin(), None);
            {
                let _inner = seq.mutation();
                assert_eq!(seq.read_begin(), None);
            }
            // Inner span ended; outer still open.
            assert_eq!(seq.read_begin(), None);
        }
        assert_eq!(seq.read_begin(), Some(2));
    }

    #[test]
    fn structural_events_count_inside_spans() {
        let seq = MapSeq::new();
        assert_eq!(seq.structural_events(), 0);
        {
            let _span = seq.mutation();
            seq.note_structural();
            seq.note_structural();
        }
        assert_eq!(seq.structural_events(), 2);
    }

    #[test]
    fn validate_rejects_movement() {
        let seq = MapSeq::new();
        let stamp = seq.read_begin().unwrap();
        assert!(seq.read_validate(stamp));
        drop(seq.mutation());
        assert!(!seq.read_validate(stamp));
        let stamp = seq.read_begin().unwrap();
        assert!(seq.read_validate(stamp));
    }

    #[test]
    fn panicking_span_stays_odd_until_quiesced() {
        let seq = MapSeq::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = seq.mutation();
            panic!("writer died");
        }));
        assert!(result.is_err());
        assert_eq!(seq.read_begin(), None, "panicked span must stay odd");
        seq.force_quiesce();
        assert!(seq.read_begin().is_some());
    }
}

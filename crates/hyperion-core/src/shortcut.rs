//! Hashed shortcut layer — a Wormhole-style prefix → container cache.
//!
//! Every level of a trie descent is a dependent cache miss: resolve the
//! container, walk its T/S stream, load the child pointer, repeat.  For
//! point operations the upper levels contribute nothing but latency — the
//! same few root containers are traversed over and over just to rediscover
//! a child pointer that rarely changes.  Wormhole (PAPERS.md) replaces the
//! upper levels of an ordered index with a hash-addressed prefix map so
//! point seeks jump straight to the leaves; this module is the Hyperion
//! analogue.
//!
//! [`Shortcut`] is a compact open-addressing hash table mapping
//! fixed-length *transformed-key* prefixes (2, 4 or 6 bytes — one trie
//! level each) to the [`HyperionPointer`] of the standalone container that
//! serves that subtree.  Entries carry a generation tag so the whole table
//! can be invalidated in O(1) (the `das67333__conway` hashlife node-cache
//! idiom); individual entries are retagged or killed in place by the write
//! engine as it applies structural events (splits, ejections, container
//! reallocations, subtree deletes).
//!
//! ## Coherence contract
//!
//! A hit must be *exactly* as good as a root descent, never approximately:
//! a stale pointer silently reads the wrong subtree (the arena stays
//! mapped, so the failure mode is wrong answers, not crashes).  The write
//! engine therefore upholds one invariant: **whenever the container
//! pointer stored in a parent S-node changes or is freed, the shortcut
//! entry for that prefix is retagged or invalidated in the same event**.
//! Container *content* rewrites in place (splices, jump-table rebuilds)
//! need no hook — the pointer is unchanged.  Whole-map resets (root freed,
//! write-engine error paths) bump the generation instead, which invalidates
//! every entry at once.
//!
//! Reads are `&self`: the table is `Cell`-based so the read path can seed
//! entries and count hits without a mutable borrow (the map is not `Sync`;
//! `HyperionDb` shards are mutex-guarded, so per-shard tables need no
//! atomics).

use crate::stats::ShortcutStats;
use hyperion_mem::HyperionPointer;
use std::cell::Cell;

/// Prefix depths (in transformed-key bytes) the table may cache.  Each
/// container level consumes two key bytes, so only even depths address a
/// standalone container; depth 0 is the root (always resolved directly).
pub const SHORTCUT_DEPTHS: [usize; 3] = [2, 4, 6];

/// Longest cacheable prefix in bytes (fits the 48 tag bits left free by the
/// depth/occupancy fields).
const MAX_PREFIX: usize = 6;

/// Linear-probe window.  Past this many displaced slots an insert clobbers
/// rather than probing on — the table is a cache, not a store.
const PROBE_WINDOW: usize = 8;

/// Slots allocated on first publish; the table doubles from here up to the
/// configured capacity as entries accumulate.
const INITIAL_SLOTS: usize = 1024;

/// One cached mapping: a packed prefix tag, the raw parent-slot pointer
/// bytes, and the generation the entry was published under.
#[derive(Clone, Copy, Default)]
struct Slot {
    /// Packed `(marker, depth, prefix bytes)`; zero means the slot is empty.
    tag: u64,
    /// `HyperionPointer::to_bytes()` of the cached container.
    hp: [u8; 5],
    /// Entry is live iff this matches the table generation.
    gen: u16,
}

/// Packs a prefix into a non-zero 64-bit tag: bit 63 is an occupancy
/// marker, bits 48..51 the depth, bits 0..48 the prefix bytes.  Two
/// distinct prefixes always pack to distinct tags, and no live tag is 0.
#[inline]
fn pack_tag(prefix: &[u8]) -> u64 {
    debug_assert!(prefix.len() <= MAX_PREFIX);
    let mut tag = (1u64 << 63) | ((prefix.len() as u64) << 48);
    for (i, &b) in prefix.iter().enumerate() {
        tag |= (b as u64) << (i * 8);
    }
    tag
}

/// Fibonacci multiplicative hash of a tag onto a power-of-two table.
#[inline]
fn slot_of(tag: u64, mask: usize) -> usize {
    (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// The prefix → container cache.  One instance per [`crate::HyperionMap`]
/// (per shard under [`crate::HyperionDb`]); capacity 0 disables it entirely
/// and every operation degenerates to a no-op.
pub struct Shortcut {
    /// Power-of-two slot array; empty until the first publish.
    slots: Cell<Box<[Cell<Slot>]>>,
    /// Maximum slot count (power of two), 0 = disabled.
    capacity: usize,
    /// Current generation; bumping it invalidates every entry in O(1).
    generation: Cell<u16>,
    /// Live-entry estimate driving table growth.
    live: Cell<usize>,
    /// Bit `d/2 - 1` set while depth `d` may hold live entries, so lookups
    /// only pay probe cache misses for populated depths.
    depth_mask: Cell<u8>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidations: Cell<u64>,
}

impl Shortcut {
    /// A table bounded at `capacity` slots (rounded up to a power of two);
    /// 0 disables the shortcut.
    pub fn new(capacity: usize) -> Shortcut {
        Shortcut {
            slots: Cell::new(Box::new([])),
            capacity: if capacity == 0 {
                0
            } else {
                capacity.next_power_of_two()
            },
            generation: Cell::new(0),
            live: Cell::new(0),
            depth_mask: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
            invalidations: Cell::new(0),
        }
    }

    /// Whether the table participates at all (builder capacity > 0).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity != 0
    }

    /// Runs `f` with the slot array without moving it out of the `Cell`.
    #[inline]
    fn with_slots<R>(&self, f: impl FnOnce(&[Cell<Slot>]) -> R) -> R {
        let slots = self.slots.take();
        let r = f(&slots);
        self.slots.set(slots);
        r
    }

    /// Looks up the deepest cached prefix of `key`, deepest-first.  Only
    /// strictly-shorter prefixes apply: a key of length exactly `d`
    /// terminates in the *parent* container, not the one cached for depth
    /// `d`.  Counts one hit or one miss per call.
    #[inline]
    pub fn probe(&self, key: &[u8]) -> Option<(usize, HyperionPointer)> {
        let mask = self.depth_mask.get();
        if mask == 0 {
            return None;
        }
        let found = self.with_slots(|slots| {
            let gen = self.generation.get();
            let slot_mask = slots.len() - 1;
            for d in SHORTCUT_DEPTHS.iter().rev().copied() {
                if mask & (1 << (d / 2 - 1)) == 0 || key.len() <= d {
                    continue;
                }
                let tag = pack_tag(&key[..d]);
                let home = slot_of(tag, slot_mask);
                for i in 0..PROBE_WINDOW {
                    let s = slots[(home + i) & slot_mask].get();
                    if s.tag == tag {
                        if s.gen == gen {
                            return Some((d, HyperionPointer::from_bytes(s.hp)));
                        }
                        break;
                    }
                    if s.tag == 0 {
                        break;
                    }
                }
            }
            None
        });
        match found {
            Some(hit) => {
                self.hits.set(self.hits.get() + 1);
                Some(hit)
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Publishes (or retags) `prefix → hp`.  No-op unless enabled and
    /// `prefix` has a cacheable depth.  Used both to seed entries on
    /// descent completion and to repoint them when the write engine moves
    /// a container.
    pub fn publish(&self, prefix: &[u8], hp: HyperionPointer) {
        let d = prefix.len();
        if self.capacity == 0 || !SHORTCUT_DEPTHS.contains(&d) {
            return;
        }
        self.ensure_room();
        let gen = self.generation.get();
        let tag = pack_tag(prefix);
        let hp = hp.to_bytes();
        let inserted = self.with_slots(|slots| {
            let slot_mask = slots.len() - 1;
            let home = slot_of(tag, slot_mask);
            // First pass: retag an existing entry for this prefix in place.
            for i in 0..PROBE_WINDOW {
                let cell = &slots[(home + i) & slot_mask];
                let s = cell.get();
                if s.tag == tag {
                    let fresh = s.gen != gen;
                    cell.set(Slot { tag, hp, gen });
                    return fresh;
                }
                if s.tag == 0 {
                    break;
                }
            }
            // Second pass: claim an empty or stale slot, else clobber home.
            for i in 0..PROBE_WINDOW {
                let cell = &slots[(home + i) & slot_mask];
                let s = cell.get();
                if s.tag == 0 || s.gen != gen {
                    cell.set(Slot { tag, hp, gen });
                    return true;
                }
            }
            slots[home].set(Slot { tag, hp, gen });
            false
        });
        if inserted {
            self.live.set(self.live.get() + 1);
        }
        self.depth_mask
            .set(self.depth_mask.get() | (1 << (d / 2 - 1)));
    }

    /// Kills the entry for `prefix`, if cached.  Called when the write
    /// engine frees the container a parent slot pointed to.
    pub fn invalidate(&self, prefix: &[u8]) {
        let d = prefix.len();
        if self.capacity == 0 || !SHORTCUT_DEPTHS.contains(&d) {
            return;
        }
        let tag = pack_tag(prefix);
        let gen = self.generation.get();
        let killed = self.with_slots(|slots| {
            if slots.is_empty() {
                return false;
            }
            let slot_mask = slots.len() - 1;
            let home = slot_of(tag, slot_mask);
            for i in 0..PROBE_WINDOW {
                let cell = &slots[(home + i) & slot_mask];
                let s = cell.get();
                if s.tag == tag {
                    cell.set(Slot::default());
                    return s.gen == gen;
                }
                if s.tag == 0 {
                    break;
                }
            }
            false
        });
        if killed {
            self.invalidations.set(self.invalidations.get() + 1);
            self.live.set(self.live.get().saturating_sub(1));
        }
    }

    /// Invalidates every entry at once by bumping the generation (O(1)
    /// except on wrap, where the slots are physically zeroed so ancient
    /// entries cannot resurrect).
    pub fn clear(&self) {
        if self.capacity == 0 {
            return;
        }
        let (next, wrapped) = self.generation.get().overflowing_add(1);
        self.generation.set(next);
        if wrapped {
            self.with_slots(|slots| {
                for cell in slots {
                    cell.set(Slot::default());
                }
            });
        }
        self.live.set(0);
        self.depth_mask.set(0);
        self.invalidations.set(self.invalidations.get() + 1);
    }

    /// Allocates the table lazily and doubles it (rehashing live entries)
    /// while under capacity and more than half full.
    fn ensure_room(&self) {
        let old = self.slots.take();
        if !old.is_empty() && (old.len() >= self.capacity || self.live.get() * 2 < old.len()) {
            self.slots.set(old);
            return;
        }
        let new_len = if old.is_empty() {
            INITIAL_SLOTS.min(self.capacity)
        } else {
            (old.len() * 2).min(self.capacity)
        };
        if new_len == old.len() {
            self.slots.set(old);
            return;
        }
        let new: Box<[Cell<Slot>]> = (0..new_len).map(|_| Cell::new(Slot::default())).collect();
        let gen = self.generation.get();
        let slot_mask = new_len - 1;
        let mut live = 0usize;
        for cell in old.iter() {
            let s = cell.get();
            if s.tag == 0 || s.gen != gen {
                continue;
            }
            let home = slot_of(s.tag, slot_mask);
            for i in 0..PROBE_WINDOW {
                let target = &new[(home + i) & slot_mask];
                if target.get().tag == 0 {
                    target.set(s);
                    live += 1;
                    break;
                }
            }
        }
        self.live.set(live);
        self.slots.set(new);
    }

    /// Heap bytes held by the slot array (for `footprint_bytes`).
    pub fn footprint_bytes(&self) -> usize {
        self.with_slots(std::mem::size_of_val)
    }

    /// Counter snapshot for `stats.rs` / the server STATS opcode.
    pub fn stats(&self) -> ShortcutStats {
        ShortcutStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            entries: self.live.get() as u64,
            slots: self.with_slots(|slots| slots.len() as u64),
        }
    }
}

impl std::fmt::Debug for Shortcut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Shortcut")
            .field("capacity", &self.capacity)
            .field("slots", &s.slots)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("invalidations", &s.invalidations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(n: u8) -> HyperionPointer {
        HyperionPointer::new(1, n as u16, 0, 0)
    }

    #[test]
    fn disabled_table_is_inert() {
        let s = Shortcut::new(0);
        assert!(!s.is_enabled());
        s.publish(b"ab", hp(1));
        assert_eq!(s.probe(b"abcd"), None);
        assert_eq!(s.footprint_bytes(), 0);
        assert_eq!(s.stats().hits + s.stats().misses, 0);
    }

    #[test]
    fn publish_probe_roundtrip() {
        let s = Shortcut::new(1 << 12);
        s.publish(b"ab", hp(1));
        // Applicability is strict: a key of length exactly 2 lives in the
        // parent container, so it must not hit the depth-2 entry.
        assert_eq!(s.probe(b"ab"), None);
        assert_eq!(s.probe(b"abc"), Some((2, hp(1))));
        assert_eq!(s.probe(b"zzz"), None);
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 2, 1));
    }

    #[test]
    fn deepest_populated_depth_wins() {
        let s = Shortcut::new(1 << 12);
        s.publish(b"ab", hp(1));
        s.publish(b"abcd", hp(2));
        s.publish(b"abcdef", hp(3));
        assert_eq!(s.probe(b"abcdefg"), Some((6, hp(3))));
        assert_eq!(s.probe(b"abcdeX"), Some((4, hp(2))));
        assert_eq!(s.probe(b"abX"), Some((2, hp(1))));
    }

    #[test]
    fn retag_and_invalidate() {
        let s = Shortcut::new(1 << 12);
        s.publish(b"ab", hp(1));
        s.publish(b"ab", hp(9));
        assert_eq!(s.probe(b"abc"), Some((2, hp(9))));
        assert_eq!(s.stats().entries, 1);
        s.invalidate(b"ab");
        assert_eq!(s.probe(b"abc"), None);
        assert_eq!(s.stats().invalidations, 1);
        assert_eq!(s.stats().entries, 0);
    }

    #[test]
    fn clear_invalidates_everything() {
        let s = Shortcut::new(1 << 12);
        s.publish(b"ab", hp(1));
        s.publish(b"cdef", hp(2));
        s.clear();
        assert_eq!(s.probe(b"abc"), None);
        assert_eq!(s.probe(b"cdefg"), None);
        assert_eq!(s.stats().entries, 0);
        // Entries republished after a clear are live again.
        s.publish(b"ab", hp(3));
        assert_eq!(s.probe(b"abc"), Some((2, hp(3))));
    }

    #[test]
    fn generation_wrap_zeroes_physically() {
        let s = Shortcut::new(1 << 10);
        s.publish(b"ab", hp(1));
        for _ in 0..=u16::MAX as usize {
            s.clear();
        }
        // The generation is back to its original value; the wrap must have
        // zeroed the slot physically or the entry would resurrect.
        assert_eq!(s.probe(b"abc"), None);
    }

    #[test]
    fn grows_to_capacity_and_clobbers_beyond() {
        let s = Shortcut::new(1 << 11);
        for i in 0..(1 << 12) as u32 {
            let b = i.to_be_bytes();
            s.publish(&[b[0], b[1], b[2], b[3]], hp((i % 200) as u8));
        }
        let st = s.stats();
        assert_eq!(st.slots, 1 << 11);
        assert!(st.entries <= st.slots);
        // Some recent entries still probe back correctly.
        let probe_key = [0u8, 0, 0, 1, 0xff];
        let got = s.probe(&probe_key);
        if let Some((d, _)) = got {
            assert_eq!(d, 4);
        }
    }

    #[test]
    fn footprint_counts_slots() {
        let s = Shortcut::new(1 << 12);
        assert_eq!(s.footprint_bytes(), 0);
        s.publish(b"ab", hp(1));
        assert_eq!(
            s.footprint_bytes(),
            INITIAL_SLOTS * std::mem::size_of::<Cell<Slot>>()
        );
    }
}
